//! Offline shim for `criterion` (see `vendor/README.md`).
//!
//! Same `benchmark_group` / `bench_with_input` / `b.iter` surface, but
//! measurement is a plain two-phase wall-clock loop (calibrate, then one
//! timed batch) with no statistics, plots, or saved baselines. Results
//! print one line per benchmark. Under `cargo test` (cargo passes
//! `--test` to `harness = false` bench targets) every benchmark body
//! runs exactly once so the suite stays fast while still exercising the
//! bench code paths.

use std::time::{Duration, Instant};

/// Work units per iteration, used to report a throughput rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function_name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label a benchmark with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// One measured result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function/parameter` label.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations in the timed batch.
    pub iterations: u64,
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    quick: bool,
    /// Every result measured so far (inspectable by custom `main`s).
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Apply command-line configuration. The shim recognizes `--test`
    /// (run every benchmark once — what cargo passes bench targets
    /// during `cargo test`) and ignores everything else (`--bench`,
    /// filters, baseline flags).
    pub fn configure_from_args(mut self) -> Self {
        self.quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let quick = self.quick;
        run_one(self, None, id.to_string(), quick, f);
        self
    }

    /// Print the closing summary.
    pub fn final_summary(&self) {
        if !self.quick {
            println!("\n{} benchmarks measured", self.results.len());
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work, reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let quick = self.criterion.quick;
        let throughput = self.throughput;
        run_one_with(self.criterion, throughput, label, quick, |b| f(b, input));
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let quick = self.criterion.quick;
        let throughput = self.throughput;
        run_one_with(self.criterion, throughput, label, quick, f);
        self
    }

    /// Close the group (printing happens as benchmarks run).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    throughput: Option<Throughput>,
    label: String,
    quick: bool,
    f: F,
) {
    run_one_with(criterion, throughput, label, quick, f)
}

fn run_one_with<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    throughput: Option<Throughput>,
    label: String,
    quick: bool,
    mut f: F,
) {
    let mut bencher = Bencher {
        quick,
        ns_per_iter: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    let result = BenchResult {
        id: label.clone(),
        ns_per_iter: bencher.ns_per_iter,
        iterations: bencher.iterations,
    };
    if quick {
        println!("{label}: ok (test mode)");
    } else {
        let rate = throughput
            .map(|t| {
                let (units, suffix) = match t {
                    Throughput::Elements(n) => (n, "elem/s"),
                    Throughput::Bytes(n) => (n, "B/s"),
                };
                let per_sec = units as f64 * 1e9 / bencher.ns_per_iter.max(1e-9);
                format!("   thrpt: {} {}", human_rate(per_sec), suffix)
            })
            .unwrap_or_default();
        println!(
            "{label:<48} time: {} /iter{rate}",
            human_time(bencher.ns_per_iter)
        );
    }
    criterion.results.push(result);
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    ns_per_iter: f64,
    iterations: u64,
}

impl Bencher {
    /// Run the routine repeatedly and record mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            std::hint::black_box(routine());
            self.iterations = 1;
            return;
        }
        // Calibrate: grow the batch until it runs long enough to time.
        let mut batch = 1u64;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 28 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch = batch.saturating_mul(4);
        };
        // Measure: one batch targeting ~60 ms of work.
        let iterations = ((6e7 / per_iter_ns).ceil() as u64).clamp(1, 5_000_000);
        let start = Instant::now();
        for _ in 0..iterations {
            std::hint::black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iterations as f64;
        self.iterations = iterations;
    }
}

/// Define a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Define `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion {
            quick: true,
            results: Vec::new(),
        };
        let mut runs = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(1));
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "g/count");
    }

    #[test]
    fn measured_mode_times_the_routine() {
        let mut c = Criterion {
            quick: false,
            results: Vec::new(),
        };
        c.bench_function("spin", |b| b.iter(|| std::hint::black_box(3u64.pow(7))));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].ns_per_iter > 0.0);
        assert!(c.results[0].iterations >= 1);
    }
}
