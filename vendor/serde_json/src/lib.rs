//! Offline shim for `serde_json` (see `vendor/README.md`).
//!
//! Unlike the `serde` shim, this crate is a *real* (small) JSON library:
//! a [`Value`] tree, a recursive-descent parser, compact and pretty
//! printers, and a [`ToJson`] trait that plays the role
//! `serde::Serialize` plays for the genuine crate. Types that need to be
//! serialized implement `ToJson` by building a `Value` explicitly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Object keys are kept sorted (BTreeMap) so output is deterministic.
    Object(BTreeMap<String, Value>),
}

/// Conversion into a JSON [`Value`] — the shim's stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Value;
}

/// Parse or serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// Numeric value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * depth),
                " ".repeat(width * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `value["key"]` sugar; returns [`Value::Null`] when absent, like the
/// real serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(x) if *x == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_eq_num!(i32, i64, u32, u64, usize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

// --- ToJson impls for primitives and containers ---------------------------

macro_rules! impl_tojson_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_tojson_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Build a [`Value::Object`] from `(key, value)` pairs.
pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

// --- top-level API mirroring serde_json -----------------------------------

/// Serialize compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_compact())
}

/// Serialize with indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty())
}

/// Parse a JSON document.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing data at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {pos}", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("bad \\u code point".into()))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid utf-8".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error("invalid number".into()))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = object([
            ("name", Value::String("revsort".into())),
            ("stacks", Value::Number(3.0)),
            (
                "chips",
                Value::Array(vec![object([("pins", Value::Number(16.0))])]),
            ),
            ("ok", Value::Bool(true)),
            ("missing", Value::Null),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn index_and_compare_sugar() {
        let v = from_str(r#"{"stacks": 3, "name": "x", "flag": false}"#).unwrap();
        assert_eq!(v["stacks"], 3);
        assert_eq!(v["name"], "x");
        assert_eq!(v["flag"], false);
        assert_eq!(v["absent"], Value::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::String("a\"b\\c\nd\te\u{1}".into());
        let text = original.to_compact();
        assert_eq!(from_str(&text).unwrap(), original);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str("{} x").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn numbers_print_integers_cleanly() {
        assert_eq!(Value::Number(42.0).to_compact(), "42");
        assert_eq!(Value::Number(1.5).to_compact(), "1.5");
        assert_eq!(Value::Number(-7.0).to_compact(), "-7");
    }
}
