//! Offline shim for `rand` (see `vendor/README.md`).
//!
//! Provides the subset of the rand 0.10 API this workspace touches:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `RngExt`'s
//! `random()` / `random_bool()`. The generator is SplitMix64 — a
//! different stream than the real StdRng (ChaCha12), but every use in
//! the workspace only relies on determinism for a fixed seed, which
//! holds.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable from the standard uniform distribution.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Convenience draws, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draw a value of any [`StandardUniform`] type.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A Bernoulli(`p`) draw.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.random::<f64>() < p
    }

    /// Uniform draw in `[0, bound)`.
    fn random_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for code written against `rand::Rng`.
pub use RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng(u64);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
