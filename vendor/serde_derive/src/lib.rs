//! Offline shim for `serde_derive` (see `vendor/README.md`).
//!
//! The companion `serde` shim blanket-implements its marker traits, so
//! these derives have nothing to generate; they exist so the attribute
//! positions (`#[derive(Serialize)]`, `#[serde(...)]`) stay legal.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
