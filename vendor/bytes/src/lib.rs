//! Offline shim for `bytes` (see `vendor/README.md`).
//!
//! Only the immutable [`Bytes`] container is provided: a cheaply clonable
//! `Arc<[u8]>` that derefs to a slice. The real crate's zero-copy
//! splitting and `BytesMut` are not needed by this workspace.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static slice (copied; the real crate borrows, but the
    /// observable behavior is the same).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes(Arc::from(v.into_bytes()))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(iter.into_iter().collect())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_indexes() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b[1], 2);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
