//! Offline shim for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()`
//! returns the guard directly (lock poisoning is ignored, matching
//! parking_lot's semantics of not poisoning at all).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion backed by `std::sync::Mutex`, without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. A poisoned lock (a
    /// holder panicked) is recovered, matching parking_lot's behavior.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock backed by `std::sync::RwLock`, without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0usize);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
