//! Offline shim for `proptest` (see `vendor/README.md`).
//!
//! Implements the strategy/macro surface this workspace uses — ranges,
//! `any::<T>()`, tuples, `prop_map`, `collection::{vec, btree_set}`,
//! and the `proptest!` / `prop_assert*` macros — over a deterministic
//! SplitMix64 case generator. Failing cases panic with the case number
//! (reproducible, since generation is seeded from the test name) but
//! are **not shrunk** to minimal counterexamples.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values — the shim's `proptest::Strategy`.
    pub trait Strategy {
        /// The value produced.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every produced value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Always produce the same (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_float!(f32, f64);

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Types with a whole-domain default strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Whole-domain strategy for `bool` and the integer types.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vectors with length drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Sets with *up to* `size` elements drawn from `element` (duplicate
    /// draws collapse; the real proptest retries to hit the exact size).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let draws = self.size.clone().generate(rng);
            (0..draws).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeded from the test name and case index, so every run of a
        /// given test explores the same sequence of cases.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
            for byte in test_name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Cases per property: `PROPTEST_CASES` env override, default 64.
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over [`test_runner::cases`]
/// generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::cases();
            for case in 0..cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let run = || -> () { $body };
                run();
            }
        }
    )*};
}

/// Assert within a property body (panics; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 3usize..17,
            y in 1u8..=4,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_and_maps_compose(
            v in crate::collection::vec((0u8..4, any::<bool>()), 1..5),
            s in crate::collection::btree_set(0usize..16, 0..16),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&(k, _)| k < 4));
            prop_assert!(s.len() < 16);
            prop_assert!(s.iter().all(|&x| x < 16));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u32..1000, 5..6);
        let a = strat.generate(&mut TestRng::for_case("t", 9));
        let b = strat.generate(&mut TestRng::for_case("t", 9));
        assert_eq!(a, b);
    }

    #[test]
    fn prop_map_transforms() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let doubled = (0u32..10).prop_map(|x| x * 2);
        let v = doubled.generate(&mut TestRng::for_case("m", 0));
        assert!(v % 2 == 0 && v < 20);
    }
}
