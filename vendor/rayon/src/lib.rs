//! Offline shim for `rayon` (see `vendor/README.md`).
//!
//! `ParIter` wraps a plain sequential iterator and mirrors the adapter
//! names rayon exposes, so `into_par_iter()` call sites compile
//! unchanged and produce identical results in deterministic order. No
//! threads are spawned — callers that need real parallelism use
//! `std::thread::scope` directly (the compiled netlist engine does).

/// A "parallel" iterator: a sequential iterator behind rayon's API.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Apply `f` to every item.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep the `Some` results of `f`.
    pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Keep items satisfying the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Concatenate with another parallel iterator.
    pub fn chain<J: Iterator<Item = I::Item>>(
        self,
        other: ParIter<J>,
    ) -> ParIter<std::iter::Chain<I, J>> {
        ParIter(self.0.chain(other.0))
    }

    /// Run `f` for every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// First `Some` produced by `f`. Rayon's version returns the match
    /// earliest in the iteration order, which sequential `find_map`
    /// matches exactly.
    pub fn find_map_first<R, F: FnMut(I::Item) -> Option<R>>(self, f: F) -> Option<R> {
        let mut iter = self.0;
        let mut f = f;
        iter.find_map(&mut f)
    }

    /// First item satisfying the predicate (earliest in order).
    pub fn find_first<F: FnMut(&I::Item) -> bool>(self, f: F) -> Option<I::Item> {
        let mut iter = self.0;
        let mut f = f;
        iter.find(&mut f)
    }

    /// Whether any item satisfies the predicate.
    pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut iter = self.0;
        let mut f = f;
        iter.any(&mut f)
    }

    /// Fold with rayon's identity-producing signature.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Maximum item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Maximum item by key.
    pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.max_by_key(f)
    }
}

/// Conversion into a [`ParIter`]; blanket-implemented so everything
/// iterable gains `into_par_iter()`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Enter the parallel-iterator API.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::IntoIter;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `par_chunks_mut` / `par_iter_mut` over mutable slices.
pub trait ParallelSliceMut<T> {
    /// Mutable chunks of `size` elements (last may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;

    /// Every element mutably.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }

    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
}

/// `par_iter` over shared slices.
pub trait ParallelSlice<T> {
    /// Every element by reference.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let squares: Vec<u64> = (0u64..10).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, (0u64..10).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn find_map_first_takes_earliest() {
        let hit = (0u64..100)
            .into_par_iter()
            .find_map_first(|x| (x % 7 == 3).then_some(x));
        assert_eq!(hit, Some(3));
    }

    #[test]
    fn reduce_uses_identity() {
        let total = (1usize..=5).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 15);
    }

    #[test]
    fn chunks_mut_visits_every_chunk() {
        let mut data = vec![1u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += i as u32;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }
}
