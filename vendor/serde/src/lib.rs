//! Offline shim for `serde` (see `vendor/README.md`).
//!
//! The real serde defines a reflection-style data model; this shim only
//! needs to make `#[derive(Serialize, Deserialize)]` compile, so the two
//! traits are blanket-implemented markers and the derive macros expand to
//! nothing. Code that needs actual JSON serialization uses the vendored
//! `serde_json`'s `ToJson` trait instead.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type implements it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; every type implements it.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
