//! `simtest` — a deterministic simulation harness for the fabric.
//!
//! FoundationDB-style simulation testing for the sharded switch-serving
//! engine: the *same* [`ServiceCore`](fabric::ServiceCore) and
//! [`WorkerCore`](fabric::WorkerCore) the threaded
//! [`FabricService`](fabric::FabricService) runs are executed as
//! cooperative tasks under a [`VirtualClock`](concentrator::VirtualClock)
//! and a seeded scheduler, so every interleaving — producer parks and
//! resumes, frame timing, mid-run chip faults, quarantine flaps,
//! drain-during-campaign — is a pure function of a `u64` seed.
//!
//! * [`sim`] — the executor: [`Scenario`] + seed → [`SimRun`] with a
//!   bit-reproducible [`TraceEvent`] trace.
//! * [`oracles`] — the models every run is checked against: the
//!   message-level per-frame reference simulator, the tick-by-tick
//!   conservation ledger, and the analytic capacity bound.
//! * [`scenarios`] — the catalogue (drain under each backpressure
//!   policy, mid-run faults, quarantine flapping, seeded fault
//!   campaigns).
//! * [`shrink()`] — minimal-reproducer reduction of failing schedules.
//! * [`explore()`] — many-seed exploration with failure shrinking and
//!   JSON reporting; the engine behind `cli sim` and the CI smoke step.
//!
//! The replay contract: any reported failure names a scenario and a
//! seed, and `cli sim --scenario <name> --seed <s> --trace` reproduces
//! the identical trace bit-for-bit.

pub mod explore;
pub mod oracles;
pub mod scenarios;
pub mod shrink;
pub mod sim;
pub mod tree;

pub use explore::{check_run, explore, lossless_reference, ExploreReport, FailureCase};
pub use oracles::{
    analytic_floor, check_capacity, check_frame, check_lossless, conservation_ledger, Ledger,
    Violation,
};
pub use scenarios::{
    adversarial_trace, batched_admission, batched_shed, by_name, catalogue, reconfig_catalogue,
    resize_under_drain, scale_down_while_quarantined, shared_switch, slo_shed_burst,
    swap_during_campaign, swap_target_switch, trace_catalogue, trace_replay,
};
pub use shrink::shrink;
pub use sim::{
    run_scenario, ReconfigAction, Scenario, SimFaultEvent, SimReconfigEvent, SimRun, SloPlan,
    SubmitKind, TraceEvent, TraceWorkload,
};
pub use tree::{
    explore_tree, run_tree_scenario, tier_leaf_burst, tier_spine_quarantine_mid_drain,
    tier_spine_stall, tree_by_name, tree_catalogue, StallWindow, TreeExploreReport, TreeFaultEvent,
    TreeRun, TreeScenario,
};

/// Parse a regression-seed corpus: one `<scenario-name> <seed>` pair per
/// line, `#` comments and blank lines ignored.
///
/// # Panics
/// If a line is malformed — a silently skipped corpus entry would be a
/// regression test that stopped testing.
pub fn parse_seed_corpus(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| {
            let mut parts = line.split_whitespace();
            let name = parts.next().expect("non-empty line").to_string();
            let seed: u64 = parts
                .next()
                .unwrap_or_else(|| panic!("corpus line missing seed: {line:?}"))
                .parse()
                .unwrap_or_else(|e| panic!("corpus seed unparsable in {line:?}: {e}"));
            assert!(parts.next().is_none(), "trailing tokens in {line:?}");
            (name, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parser_accepts_comments_and_rejects_noise() {
        let parsed = parse_seed_corpus("# regression seeds\n\ndrain-block 7\nflap 42\n");
        assert_eq!(
            parsed,
            vec![("drain-block".to_string(), 7), ("flap".to_string(), 42)]
        );
    }
}
