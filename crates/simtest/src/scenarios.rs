//! The scenario catalogue: the workloads the harness explores.
//!
//! Every scenario serves the same shared 16→8 Revsort partial
//! concentrator (compiled once per process through the switch's shared
//! elaboration cache — [`shared_switch`]) and differs in configuration,
//! workload, and fault schedule:
//!
//! * [`drain_block`] — blocking backpressure over tiny queues, unlimited
//!   retries: the lossless baseline. Producers park and resume; drain
//!   must deliver every generated message bit-exactly.
//! * [`batched_admission`] / [`batched_shed`] — producers submit whole
//!   generation frames through the frame-batched admission path
//!   (`try_submit_batch`), exploring the ring's batched publications
//!   against worker consumption: losslessly under blocking backpressure,
//!   and through the whole-ring-replacement shed path under shed-oldest.
//! * [`drain_shed`] / [`drain_reject`] — the lossy backpressure policies
//!   (plus a global admission cap on the reject variant): conservation
//!   must absorb every shed and rejection at every tick.
//! * [`midrun_fault`] — a chip dies mid-run, the fault set changes shape,
//!   then the chip is repaired while the drain is already underway.
//! * [`flap`] — a flapping fault schedule kills every first-stage chip on
//!   *both* shards, repairs them, and kills them again: quarantine must
//!   engage on both shards (placement falls back to the preferred shard
//!   rather than deadlocking when nowhere is healthy) and recover with
//!   hysteresis once repaired.
//! * [`campaign`] — a seeded [`FaultCampaign`] chaos schedule sampled
//!   through the virtual clock ([`FaultCampaign::faults_at_clock`]):
//!   permanent, intermittent, and transient chip faults land as
//!   virtual-time events.
//!
//! The elastic-control-plane scenarios ([`reconfig_catalogue`]) exercise
//! live reconfiguration (see [`fabric::reconfig`]):
//!
//! * [`resize_under_drain`] — the fabric grows and shrinks (1 → 3 → 4
//!   shards with two removals) under blocking backpressure, losslessly.
//! * [`swap_during_campaign`] — a recompiled 64→16 switch
//!   ([`swap_target_switch`]) replaces the shared switch mid-fault-
//!   campaign under the two-phase epoch handoff.
//! * [`scale_down_while_quarantined`] — the quarantined shard itself is
//!   removed while its backlog cannot deliver.
//! * [`slo_shed_burst`] — an [`SloController`](fabric::SloController)
//!   governs admission against a six-producer burst on the virtual
//!   clock.
//!
//! The trace-driven scenarios ([`trace_catalogue`]) replay
//! [`fabric::trace`] workloads through the batched admission path:
//!
//! * [`trace_replay`] — a seeded MMPP trace played losslessly under
//!   blocking backpressure; every oracle runs over trace-driven load
//!   and every record must arrive bit-exactly.
//! * [`adversarial_trace`] — the `search::epsilon_attack` worst-case
//!   input subset, lowered to a sustained trace through lossy
//!   shed-oldest queues.

use std::sync::{Arc, OnceLock};

use concentrator::clock::VirtualClock;
use concentrator::faults::{CampaignSpec, ChipFault, FaultCampaign, FaultMode};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::StagedSwitch;
use fabric::{Backpressure, FabricConfig, HealthPolicy, LoadPlan, RetryBudget, SloPolicy};
use switchsim::TrafficModel;

use crate::sim::{
    ReconfigAction, Scenario, SimFaultEvent, SimReconfigEvent, SloPlan, TraceWorkload,
};

/// The switch every scenario serves: 16→8 Revsort, two-dimensional
/// layout. Process-wide so its datapath compiles exactly once no matter
/// how many seeds the harness explores.
pub fn shared_switch() -> Arc<StagedSwitch> {
    static SWITCH: OnceLock<Arc<StagedSwitch>> = OnceLock::new();
    Arc::clone(SWITCH.get_or_init(|| {
        Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        )
    }))
}

/// The replacement switch the live-swap scenarios install mid-run: a
/// 64→16 Revsort concentrator — four times the input range, so it
/// strictly covers the shared 16→8 switch. Process-wide so its datapath
/// also compiles exactly once.
pub fn swap_target_switch() -> Arc<StagedSwitch> {
    static SWITCH: OnceLock<Arc<StagedSwitch>> = OnceLock::new();
    Arc::clone(SWITCH.get_or_init(|| {
        Arc::new(
            RevsortSwitch::new(64, 16, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        )
    }))
}

/// Every first-stage chip of the shared switch, dead: traffic through the
/// shard delivers nothing until repaired.
fn dead_first_stage() -> Vec<ChipFault> {
    (0..4)
        .map(|chip| ChipFault {
            stage: 0,
            chip,
            mode: FaultMode::StuckInvalid,
        })
        .collect()
}

fn base(name: &str, workload_seed: u64, frames: usize, p: f64) -> Scenario {
    let mut config = FabricConfig::new(2);
    config.queue_capacity = 4;
    Scenario {
        name: name.to_string(),
        switch: shared_switch(),
        config,
        producers: 3,
        plan: LoadPlan {
            model: TrafficModel::Bernoulli { p },
            payload_bytes: 2,
            seed: workload_seed,
            frames,
        },
        trace: None,
        faults: Vec::new(),
        reconfig: Vec::new(),
        slo: None,
        batched: false,
        lossless: false,
        max_ticks: 50_000,
    }
}

/// Blocking backpressure, unlimited retries, no faults: the lossless
/// drain baseline. Tiny queues force producers to park and resume.
pub fn drain_block() -> Scenario {
    let mut s = base("drain-block", 101, 4, 0.6);
    s.config.queue_capacity = 2;
    s.config.backpressure = Backpressure::Block;
    s.lossless = true;
    s
}

/// Frame-batched admission over tiny queues under blocking backpressure:
/// producers submit whole generation frames through
/// [`ServiceCore::try_submit_batch`](fabric::ServiceCore), so the ring's
/// batched publications, block-reserved round-robin placement, and
/// blocked-suffix hand-backs all interleave with worker consumption.
/// Lossless: every scripted message must still arrive exactly once.
pub fn batched_admission() -> Scenario {
    let mut s = base("batched-admission", 707, 5, 0.7);
    s.config.queue_capacity = 3;
    s.config.backpressure = Backpressure::Block;
    s.batched = true;
    s.lossless = true;
    s
}

/// Frame-batched admission meeting shed-oldest backpressure: overlong
/// frames against capacity-2 rings exercise the whole-ring-replacement
/// shed path (`enqueued` and `shed` both counted in one publication)
/// under every interleaving, with conservation checked each tick.
pub fn batched_shed() -> Scenario {
    let mut s = base("batched-shed", 808, 5, 0.8);
    s.config.queue_capacity = 2;
    s.config.backpressure = Backpressure::ShedOldest;
    s.batched = true;
    s
}

/// Shed-oldest backpressure over tiny queues: heavy load sheds queued
/// messages; conservation must account for each one.
pub fn drain_shed() -> Scenario {
    let mut s = base("drain-shed", 202, 4, 0.7);
    s.config.queue_capacity = 2;
    s.config.backpressure = Backpressure::ShedOldest;
    s
}

/// Reject backpressure plus a global admission cap and a finite retry
/// budget: every refusal path exercised at once.
pub fn drain_reject() -> Scenario {
    let mut s = base("drain-reject", 303, 4, 0.7);
    s.config.queue_capacity = 2;
    s.config.backpressure = Backpressure::Reject;
    s.config.admission_limit = Some(6);
    s.config.retry = RetryBudget::limited(2);
    s
}

/// A chip dies mid-run, the fault changes shape, and the repair lands
/// while the fabric is already draining.
pub fn midrun_fault() -> Scenario {
    let mut s = base("midrun-fault", 404, 6, 0.6);
    s.config.queue_capacity = 8;
    s.config.retry = RetryBudget::limited(1);
    s.faults = vec![
        SimFaultEvent {
            at_tick: 30,
            shard: 0,
            faults: vec![ChipFault {
                stage: 0,
                chip: 0,
                mode: FaultMode::StuckInvalid,
            }],
        },
        SimFaultEvent {
            at_tick: 90,
            shard: 0,
            faults: vec![ChipFault {
                stage: 0,
                chip: 2,
                mode: FaultMode::StuckValid,
            }],
        },
        SimFaultEvent {
            at_tick: 150,
            shard: 0,
            faults: Vec::new(),
        },
    ];
    s
}

/// A flapping fault schedule on *both* shards: kill every first-stage
/// chip, repair, kill again, repair again. Both shards must quarantine
/// (steering falls back to the preferred shard when nowhere is healthy)
/// and recover with hysteresis; the deadlock oracle guards placement.
/// The health EWMA weight is raised so recovery resolves within the
/// workload for every interleaving.
pub fn flap() -> Scenario {
    let mut s = base("flap", 505, 20, 0.8);
    s.config.queue_capacity = 2;
    s.config.retry = RetryBudget::limited(0);
    s.config.health = HealthPolicy {
        alpha: 0.5,
        ..HealthPolicy::default()
    };
    let mut faults = Vec::new();
    for (at_tick, set) in [
        (0u64, dead_first_stage()),
        (140, Vec::new()),
        (280, dead_first_stage()),
        (340, Vec::new()),
    ] {
        for shard in 0..2 {
            faults.push(SimFaultEvent {
                at_tick,
                shard,
                faults: set.clone(),
            });
        }
    }
    s.faults = faults;
    s
}

/// A seeded chaos schedule from [`FaultCampaign`], sampled through the
/// virtual clock: each shard replays its own campaign (seed offset by
/// shard id), with fault-set changes landing as virtual-time events.
pub fn campaign() -> Scenario {
    const TICKS_PER_FRAME: u64 = 24;
    let mut s = base("campaign", 606, 6, 0.6);
    s.config.retry = RetryBudget::limited(1);
    let switch = shared_switch();
    let mut faults = Vec::new();
    for shard in 0..s.config.shards {
        let spec = CampaignSpec {
            seed: 9000 + shard as u64,
            frames: 8,
            permanent_rate: 0.15,
            intermittent_rate: 0.25,
            intermittent_period: 2,
            transient_rate: 0.05,
        };
        let schedule = FaultCampaign::generate(&switch, &spec);
        let mut last: Vec<ChipFault> = Vec::new();
        for frame in 0..spec.frames {
            let probe = VirtualClock::at(frame as u64 * TICKS_PER_FRAME);
            let set = schedule.faults_at_clock(&probe, TICKS_PER_FRAME).to_vec();
            if set != last {
                faults.push(SimFaultEvent {
                    at_tick: frame as u64 * TICKS_PER_FRAME,
                    shard,
                    faults: set.clone(),
                });
                last = set;
            }
        }
    }
    faults.sort_by_key(|e| e.at_tick);
    s.faults = faults;
    s
}

/// The fabric resizes 1 → 3 → 4 shards with two removals riding the
/// drain, under blocking backpressure over tiny rings — lossless: every
/// scripted message must arrive exactly once even though producers park
/// on rings that later close, removed shards drain mid-load, and the
/// conservation ledger is checked at every tick across five epoch
/// boundaries.
pub fn resize_under_drain() -> Scenario {
    let mut s = base("resize-under-drain", 111, 6, 0.6);
    s.config.shards = 1;
    s.config.max_shards = 4;
    s.config.queue_capacity = 2;
    s.config.backpressure = Backpressure::Block;
    s.lossless = true;
    s.reconfig = vec![
        SimReconfigEvent {
            at_tick: 5,
            action: ReconfigAction::AddShard,
        },
        SimReconfigEvent {
            at_tick: 12,
            action: ReconfigAction::AddShard,
        },
        SimReconfigEvent {
            at_tick: 30,
            action: ReconfigAction::RemoveShard { shard: 1 },
        },
        SimReconfigEvent {
            at_tick: 45,
            action: ReconfigAction::AddShard,
        },
        SimReconfigEvent {
            at_tick: 70,
            action: ReconfigAction::RemoveShard { shard: 2 },
        },
    ];
    s
}

/// A live switch swap in the middle of a fault campaign: a chip dies on
/// shard 0, the whole fabric is swapped onto the recompiled 64→16
/// replacement (which clears the fault overlay — the recompile *is* the
/// repair), then shard 1 takes a hit on the new switch and is repaired.
/// The per-frame oracle replays every frame against whichever switch the
/// shard had installed at execution time.
pub fn swap_during_campaign() -> Scenario {
    let mut s = base("swap-during-campaign", 222, 8, 0.6);
    s.config.queue_capacity = 8;
    s.config.retry = RetryBudget::limited(1);
    s.faults = vec![
        SimFaultEvent {
            at_tick: 30,
            shard: 0,
            faults: vec![ChipFault {
                stage: 0,
                chip: 0,
                mode: FaultMode::StuckInvalid,
            }],
        },
        SimFaultEvent {
            at_tick: 160,
            shard: 1,
            faults: vec![ChipFault {
                stage: 0,
                chip: 1,
                mode: FaultMode::StuckValid,
            }],
        },
        SimFaultEvent {
            at_tick: 220,
            shard: 1,
            faults: Vec::new(),
        },
    ];
    s.reconfig = vec![SimReconfigEvent {
        at_tick: 100,
        action: ReconfigAction::SwapSwitch {
            switch: swap_target_switch(),
        },
    }];
    s
}

/// Scale-down races quarantine: shard 1's first stage dies at tick 0 and
/// quarantine engages, a third shard joins mid-run, then the *sick* shard
/// is removed — its worker drains a backlog that mostly cannot deliver
/// (bounded retries) and retires, with every drop on the ledger.
pub fn scale_down_while_quarantined() -> Scenario {
    let mut s = base("scale-down-while-quarantined", 333, 8, 0.7);
    s.config.max_shards = 3;
    s.config.retry = RetryBudget::limited(1);
    s.config.health = HealthPolicy {
        alpha: 0.5,
        ..HealthPolicy::default()
    };
    s.faults = vec![SimFaultEvent {
        at_tick: 0,
        shard: 1,
        faults: dead_first_stage(),
    }];
    s.reconfig = vec![
        SimReconfigEvent {
            at_tick: 40,
            action: ReconfigAction::AddShard,
        },
        SimReconfigEvent {
            at_tick: 80,
            action: ReconfigAction::RemoveShard { shard: 1 },
        },
    ];
    s
}

/// A burst (six producers at p = 0.9 against two shards) governed by the
/// SLO controller: every 16 virtual ticks it reads the wait histograms
/// and AIMD-steps the admission limit toward a p99 wait of 1 frame.
/// Admission rejections absorb the overload; conservation holds at every
/// tick and the limit never leaves the policy band.
pub fn slo_shed_burst() -> Scenario {
    let mut s = base("slo-shed-burst", 444, 6, 0.9);
    s.producers = 6;
    s.config.queue_capacity = 8;
    s.config.backpressure = Backpressure::Reject;
    s.slo = Some(SloPlan {
        every_ticks: 16,
        policy: SloPolicy {
            target_p99_wait: 1,
            min_limit: 4,
            max_limit: 64,
            decrease: 0.5,
            increase: 8,
            min_samples: 4,
        },
    });
    s
}

/// Trace replay under every oracle: a seeded MMPP trace (the bursty
/// generalization from [`fabric::trace`]) is lowered to frames and
/// submitted by a single trace-producer through the batched admission
/// path, under blocking backpressure over tiny queues — lossless, so
/// every trace record's message must arrive exactly once, bit-exact,
/// in every interleaving. The same trace the CLI replays from disk.
pub fn trace_replay() -> Scenario {
    let mut s = base("trace-replay", 0, 1, 0.0);
    s.producers = 1;
    s.config.queue_capacity = 3;
    s.config.backpressure = fabric::Backpressure::Block;
    s.lossless = true;
    s.trace = Some(TraceWorkload::full(fabric::trace::generate(
        fabric::TraceModel::mmpp_from_bursty(0.6, 4.0),
        16,
        20,
        1,
        0x7ACE,
    )));
    s
}

/// The ε-attack in the serving path: `search::epsilon_attack` runs
/// against the shared switch once per process, and the discovered
/// worst-case input subset plays as a sustained trace through lossy
/// shed-oldest queues with a bounded retry budget. Conservation and the
/// capacity bound must absorb the adversarial pattern's concentrated
/// contention at every tick; the frame oracle confirms the routed sets
/// against the reference on exactly the attacked wires.
pub fn adversarial_trace() -> Scenario {
    static TRACE: OnceLock<Arc<fabric::Trace>> = OnceLock::new();
    let trace = Arc::clone(TRACE.get_or_init(|| {
        let plan = fabric::AdversarialPlan {
            restarts: 2,
            rounds: 12,
            seed: 0xA77A,
            ticks: 10,
            size_class: 1,
        };
        let (trace, _report) = fabric::adversarial_trace(&shared_switch(), &plan);
        Arc::new(trace)
    }));
    let mut s = base("adversarial-trace", 0, 1, 0.0);
    s.producers = 1;
    s.config.queue_capacity = 4;
    s.config.backpressure = fabric::Backpressure::ShedOldest;
    s.config.retry = RetryBudget::limited(1);
    let limit = trace.len();
    s.trace = Some(TraceWorkload { trace, limit });
    s
}

/// The trace-driven scenarios, in catalogue order.
pub fn trace_catalogue() -> Vec<Scenario> {
    vec![trace_replay(), adversarial_trace()]
}

/// The elastic-control-plane scenarios, in catalogue order.
pub fn reconfig_catalogue() -> Vec<Scenario> {
    vec![
        resize_under_drain(),
        swap_during_campaign(),
        scale_down_while_quarantined(),
        slo_shed_burst(),
    ]
}

/// Every scenario, in catalogue order.
pub fn catalogue() -> Vec<Scenario> {
    let mut all = vec![
        drain_block(),
        batched_admission(),
        batched_shed(),
        drain_shed(),
        drain_reject(),
        midrun_fault(),
        flap(),
        campaign(),
    ];
    all.extend(reconfig_catalogue());
    all.extend(trace_catalogue());
    all
}

/// Look a scenario up by its CLI name.
pub fn by_name(name: &str) -> Option<Scenario> {
    catalogue().into_iter().find(|s| s.name == name)
}
