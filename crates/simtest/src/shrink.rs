//! Schedule shrinking: reduce a failing scenario to a minimal
//! reproducer.
//!
//! Given a scenario, a seed, and a failure predicate, [`shrink`] greedily
//! removes whatever it can while the re-run (same seed) still fails: the
//! trace suffix first (halving the record prefix that plays — a shorter
//! workload usually subsumes schedule reductions), then individual fault
//! events, then individual reconfiguration events and the SLO plan, then
//! workload frames (halving), then producers.
//! The result is a local minimum — removing any single remaining event,
//! halving the workload again, or dropping another producer makes the
//! failure disappear — which is what a human debugging the seed actually
//! wants to stare at.
//!
//! Shrinking re-runs the simulator, so it inherits its determinism: the
//! same `(scenario, seed, predicate)` always shrinks to the same
//! reproducer.

use crate::sim::{run_scenario, Scenario, SimRun};

/// Shrink `scenario` to a minimal reproducer of `fails` under `seed`.
/// Returns the scenario unchanged if the failure does not reproduce on
/// the unshrunk run (nothing to minimize against).
pub fn shrink(scenario: &Scenario, seed: u64, fails: &dyn Fn(&SimRun) -> bool) -> Scenario {
    if !fails(&run_scenario(scenario, seed)) {
        return scenario.clone();
    }
    let mut current = scenario.clone();
    loop {
        let mut reduced = false;

        // Truncate the trace suffix while the failure survives — before
        // any schedule shrinking, so the minimal reproducer replays the
        // shortest workload prefix that still fails.
        while current.trace.as_ref().is_some_and(|w| w.records() > 1) {
            let mut candidate = current.clone();
            let workload = candidate.trace.as_mut().expect("guard checked");
            workload.limit = workload.records() / 2;
            if fails(&run_scenario(&candidate, seed)) {
                current = candidate;
                reduced = true;
            } else {
                break;
            }
        }

        // Drop fault events one at a time, keeping each removal that
        // still fails.
        let mut i = 0;
        while i < current.faults.len() {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if fails(&run_scenario(&candidate, seed)) {
                current = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }

        // Drop reconfiguration events the same way: operations the
        // control plane would refuse after an earlier removal are skipped
        // silently by the executor, so every candidate schedule is valid.
        let mut i = 0;
        while i < current.reconfig.len() {
            let mut candidate = current.clone();
            candidate.reconfig.remove(i);
            if fails(&run_scenario(&candidate, seed)) {
                current = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }

        // Drop the SLO plan if the failure survives without it.
        if current.slo.is_some() {
            let mut candidate = current.clone();
            candidate.slo = None;
            if fails(&run_scenario(&candidate, seed)) {
                current = candidate;
                reduced = true;
            }
        }

        // Halve the workload while the failure survives.
        while current.plan.frames > 1 {
            let mut candidate = current.clone();
            candidate.plan.frames /= 2;
            if fails(&run_scenario(&candidate, seed)) {
                current = candidate;
                reduced = true;
            } else {
                break;
            }
        }

        // Drop producers from the back while the failure survives.
        while current.producers > 1 {
            let mut candidate = current.clone();
            candidate.producers -= 1;
            if fails(&run_scenario(&candidate, seed)) {
                current = candidate;
                reduced = true;
            } else {
                break;
            }
        }

        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    /// Shrinking against a synthetic predicate ("the run executed at
    /// least N frames") must strip the entire fault schedule and converge
    /// on a minimal workload, without ever losing the failure.
    #[test]
    fn shrinks_to_a_local_minimum() {
        let scenario = scenarios::midrun_fault();
        let fails = |run: &SimRun| run.frames >= 4;
        assert!(fails(&run_scenario(&scenario, 11)), "predicate must fire");
        let minimal = shrink(&scenario, 11, &fails);
        assert!(fails(&run_scenario(&minimal, 11)), "shrunk run still fails");
        assert!(minimal.faults.is_empty(), "fault events are not needed");
        assert!(minimal.plan.frames < scenario.plan.frames);
        // Local minimality: halving the workload again loses the failure.
        let mut smaller = minimal.clone();
        smaller.plan.frames /= 2;
        assert!(!fails(&run_scenario(&smaller, 11)));
    }

    /// A predicate that needs a fault event must keep exactly the events
    /// it needs.
    #[test]
    fn keeps_required_fault_events() {
        let scenario = scenarios::midrun_fault();
        // Fails iff any fault was ever injected on shard 0.
        let fails = |run: &SimRun| {
            run.trace.iter().any(|e| {
                matches!(
                    e,
                    crate::sim::TraceEvent::Fault { shard: 0, faults, .. } if *faults > 0
                )
            })
        };
        let minimal = shrink(&scenario, 7, &fails);
        assert_eq!(
            minimal.faults.len(),
            1,
            "exactly one injection event survives"
        );
        assert!(!minimal.faults[0].faults.is_empty());
    }

    /// A passing run shrinks to itself.
    #[test]
    fn passing_runs_are_left_alone() {
        let scenario = scenarios::drain_block();
        let minimal = shrink(&scenario, 3, &|run| !run.passed());
        assert_eq!(minimal.plan.frames, scenario.plan.frames);
        assert_eq!(minimal.producers, scenario.producers);
    }
}
