//! Deterministic simulation of the concentrator *tree*: one seeded
//! cooperative run of a full [`tiers`] topology under the virtual clock.
//!
//! The executor is the tree-shaped sibling of [`crate::sim`]: every
//! external producer and every [`tiers::TierWorker`] in the tree is a
//! cooperative task; each scheduler step draws one ready task from a
//! [`SplitMix64`] stream seeded by the run's `u64` seed, executes
//! exactly one non-blocking step of it ([`TierCore::try_submit`] /
//! [`TierCore::retry_submit`] / [`tiers::TierWorker::step`]), and advances the
//! shared [`VirtualClock`] one tick. The complete run is a pure function
//! of `(scenario, seed)`.
//!
//! Tree-specific machinery on top of the flat executor:
//!
//! * **Stall windows** ([`StallWindow`]) — a whole tier's workers are
//!   withheld from the ready set for a span of virtual time, modelling a
//!   stalled spine (GC pause, slow host, partitioned rack). The oracle
//!   payoff: inter-tier credit exhaustion must propagate *upward* until
//!   external producers feel it at leaf admission, which the run counts
//!   in [`TreeRun::stall_backpressure`].
//! * **Tree fault events** ([`TreeFaultEvent`]) — virtual-time fault
//!   injections addressed by `(tier, fabric, shard)`, driving the
//!   spine-quarantine scenarios.
//! * **End-to-end conservation** — after every tick the whole-tree
//!   ledger ([`tiers::tree_ledger`]) must balance: external offers =
//!   spine deliveries + per-tier drops + in-flight + link holds. A
//!   violation is reported through the flat [`Ledger`] with link holds
//!   folded into `in_flight` (a held message is in flight between
//!   fabrics).
//!
//! The per-frame reference oracle and the analytic capacity bound run on
//! every frame of every tier, exactly as in the flat executor.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use concentrator::clock::{Clock, VirtualClock};
use concentrator::faults::{ChipFault, FaultMode};
use concentrator::verify::SplitMix64;
use concentrator::{FullColumnsortHyperconcentrator, StagedSwitch};
use fabric::{
    producer_script, Backpressure, Delivery, FabricConfig, HealthPolicy, LoadPlan, Message,
    RetryBudget, SubmitOutcome,
};
use serde_json::{object, ToJson, Value};
use switchsim::TrafficModel;
use tiers::{
    tree_ledger, tree_snapshot, TierCore, TierSpec, TierStep, TierSubmit, TierTopology,
    TreeSnapshot,
};

use crate::oracles::{check_capacity, check_frame, check_lossless, Ledger, Violation};
use crate::scenarios::shared_switch;

/// A fault-set change at a point in virtual time, addressed into the
/// tree: at tick `at_tick`, shard `shard` of fabric `fabric` in tier
/// `tier` gets the complete fault set `faults` (empty = repair).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeFaultEvent {
    /// Virtual tick at which the change is injected.
    pub at_tick: u64,
    /// Target tier.
    pub tier: usize,
    /// Target fabric within the tier.
    pub fabric: usize,
    /// Target shard within the fabric.
    pub shard: usize,
    /// The shard's new complete fault set.
    pub faults: Vec<ChipFault>,
}

/// A span of virtual time during which one tier's workers are withheld
/// from the scheduler entirely — no frames, no forwarding. Producers and
/// every other tier keep running, so the stalled tier's ingress rings
/// fill and the credit handshake must push the pressure up the tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallWindow {
    /// The stalled tier.
    pub tier: usize,
    /// First stalled tick (inclusive).
    pub from_tick: u64,
    /// First tick the tier runs again (exclusive end).
    pub until_tick: u64,
}

impl StallWindow {
    /// Whether the window covers virtual tick `tick`.
    pub fn active(&self, tick: u64) -> bool {
        (self.from_tick..self.until_tick).contains(&tick)
    }
}

/// Everything that defines a simulated tree run except the interleaving
/// seed: the tree analogue of [`crate::sim::Scenario`].
#[derive(Clone)]
pub struct TreeScenario {
    /// Display name (the CLI's `--scenario` key).
    pub name: String,
    /// The tree this run serves.
    pub topology: TierTopology,
    /// Concurrent external producer tasks.
    pub producers: usize,
    /// Per-producer workload (seeded off `plan.seed + producer`).
    pub plan: LoadPlan,
    /// Distinct external source ids each producer draws from; sources
    /// are hashed onto leaf fabrics by [`TierTopology::ingress`].
    pub ingress_sources: usize,
    /// Virtual-time fault schedule, sorted by `at_tick`.
    pub faults: Vec<TreeFaultEvent>,
    /// Optional tier stall window.
    pub stall: Option<StallWindow>,
    /// Whether the scenario guarantees every generated message reaches
    /// the spine (blocking backpressure everywhere, unlimited retries,
    /// no faults) — enables the delivery-set equivalence oracle.
    pub lossless: bool,
    /// Tick budget; exceeding it is a liveness violation.
    pub max_ticks: u64,
}

impl TreeScenario {
    /// # Panics
    /// If the topology is invalid, the fault schedule is unsorted or
    /// names a missing `(tier, fabric, shard)`, or the stall window
    /// names a missing tier — a malformed scenario would make
    /// violations meaningless.
    pub fn validate(&self) {
        self.topology.validate();
        assert!(self.producers > 0, "need at least one producer");
        assert!(self.ingress_sources > 0, "need at least one source");
        assert!(
            self.faults.windows(2).all(|w| w[0].at_tick <= w[1].at_tick),
            "fault schedule must be sorted by tick"
        );
        for event in &self.faults {
            let spec = self
                .topology
                .tiers
                .get(event.tier)
                .expect("fault event names a missing tier");
            assert!(
                event.fabric < spec.fabrics && event.shard < spec.config.shards,
                "fault event names a missing fabric or shard"
            );
        }
        if let Some(stall) = &self.stall {
            assert!(
                stall.tier < self.topology.depth(),
                "stall window names a missing tier"
            );
            assert!(stall.from_tick < stall.until_tick, "empty stall window");
        }
    }
}

/// The complete, deterministic record of one simulated tree run.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeRun {
    /// Scenario name.
    pub scenario: String,
    /// Interleaving seed.
    pub seed: u64,
    /// Drain-time tree snapshot (queue counters folded in once).
    pub snapshot: TreeSnapshot,
    /// Every spine delivery, in completion order.
    pub completions: Vec<Delivery>,
    /// Oracle violations observed (empty = the run passed).
    pub violations: Vec<Violation>,
    /// Virtual ticks executed.
    pub ticks: u64,
    /// Routing frames executed, across every tier.
    pub frames: u64,
    /// Leaf-admission backpressure events (parks, rejections, sheds)
    /// observed *while the stall window was active* — the witness that a
    /// stalled downstream tier propagated credit exhaustion all the way
    /// to external admission.
    pub stall_backpressure: u64,
    /// Quarantine-flag transitions to *on*, anywhere in the tree.
    pub quarantines: u64,
}

impl TreeRun {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One external producer task: the remainder of its scripted workload
/// plus its parked state (held message and its chosen leaf placement).
struct Producer {
    script: std::collections::VecDeque<Message>,
    parked: Option<(Message, usize, usize)>,
}

impl Producer {
    fn done(&self) -> bool {
        self.script.is_empty() && self.parked.is_none()
    }
}

/// A ready task the scheduler may step next.
#[derive(Clone, Copy)]
enum Task {
    Producer(usize),
    Worker(usize),
}

/// Fold the tree ledger into the flat conservation [`Ledger`] the
/// violation taxonomy reports: link holds are messages in flight
/// *between* fabrics, so they land in `in_flight`.
fn flatten(ledger: tiers::TreeLedger) -> Ledger {
    Ledger {
        offered: ledger.offered_external,
        delivered: ledger.delivered,
        rejected: ledger.rejected,
        shed: ledger.shed,
        retry_dropped: ledger.retry_dropped,
        in_flight: ledger.in_flight + ledger.held,
    }
}

/// Execute one seeded cooperative run of `scenario` over the whole
/// tree. Never panics on an oracle violation — failures land in
/// [`TreeRun::violations`] so the explorer can report them with the
/// seed.
pub fn run_tree_scenario(scenario: &TreeScenario, seed: u64) -> TreeRun {
    scenario.validate();
    let core = TierCore::new(scenario.topology.clone());
    let clock = VirtualClock::new();
    let mut rng = SplitMix64(seed);
    let mut workers = core.workers();
    let mut worker_done = vec![false; workers.len()];
    let mut quarantine_flags = vec![false; workers.len()];
    let depth = scenario.topology.depth();
    let mut closed = vec![false; depth];

    let mut expected_lossless: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut producers: Vec<Producer> = (0..scenario.producers)
        .map(|p| {
            let script = producer_script(&scenario.plan, scenario.ingress_sources, p);
            if scenario.lossless {
                for message in &script {
                    expected_lossless.insert(message.id, message.payload.as_ref().to_vec());
                }
            }
            Producer {
                script: script.into(),
                parked: None,
            }
        })
        .collect();

    let mut violations: Vec<Violation> = Vec::new();
    let mut completions: Vec<Delivery> = Vec::new();
    let mut frames = 0u64;
    let mut stall_backpressure = 0u64;
    let mut quarantines = 0u64;
    let mut next_fault = 0usize;

    loop {
        let tick = clock.now();
        if tick >= scenario.max_ticks {
            violations.push(Violation::TickLimit { tick });
            break;
        }

        // Virtual-time fault schedule: every event due by now fires,
        // deterministically, before the scheduler draws.
        while next_fault < scenario.faults.len() && scenario.faults[next_fault].at_tick <= tick {
            let event = &scenario.faults[next_fault];
            core.core(event.tier, event.fabric)
                .inject_faults(event.shard, event.faults.clone());
            next_fault += 1;
        }

        let stalled = |tier: usize| -> bool {
            scenario
                .stall
                .is_some_and(|s| s.tier == tier && s.active(tick))
        };

        // Cascaded close: tier 0 once the producers finish; tier t+1
        // once tier t is closed and its workers have all drained.
        if !closed[0] && producers.iter().all(Producer::done) {
            core.close_tier(0);
            closed[0] = true;
        }
        for tier in 1..depth {
            if closed[tier] || !closed[tier - 1] {
                continue;
            }
            let upstream_done = workers
                .iter()
                .zip(&worker_done)
                .filter(|(w, _)| w.tier() == tier - 1)
                .all(|(_, &d)| d);
            if upstream_done {
                core.close_tier(tier);
                closed[tier] = true;
            }
        }

        // Readiness, in fixed task order (determinism): producers first,
        // then every worker in `(tier, fabric, shard)` order — minus the
        // stalled tier.
        let mut ready: Vec<Task> = Vec::new();
        for (p, task) in producers.iter().enumerate() {
            let runnable = match &task.parked {
                Some((_, leaf, shard)) => core.leaf_would_accept(*leaf, *shard),
                None => !task.script.is_empty(),
            };
            if runnable {
                ready.push(Task::Producer(p));
            }
        }
        for (w, worker) in workers.iter().enumerate() {
            if !worker_done[w] && !stalled(worker.tier()) && worker.ready() {
                ready.push(Task::Worker(w));
            }
        }

        if ready.is_empty() {
            // A stall window may idle the whole tree (everything is
            // waiting on the stalled tier's credit): virtual time passes
            // until the window ends. Only a stall-free empty ready set
            // with unfinished work is a deadlock.
            let stall_holds_work = scenario.stall.is_some_and(|s| {
                s.active(tick)
                    && workers
                        .iter()
                        .zip(&worker_done)
                        .any(|(w, &d)| w.tier() == s.tier && !d && w.ready())
            });
            if stall_holds_work {
                clock.advance(1);
                continue;
            }
            let finished = producers.iter().all(Producer::done) && worker_done.iter().all(|&d| d);
            if !finished {
                violations.push(Violation::Deadlock {
                    tick,
                    parked_producers: producers.iter().filter(|t| t.parked.is_some()).count(),
                    unfinished_workers: worker_done.iter().filter(|&&d| !d).count(),
                });
            }
            break;
        }

        // The seeded draw: the single source of scheduling entropy.
        let choice = ready[(rng.next_u64() % ready.len() as u64) as usize];
        clock.advance(1);
        let in_stall_window = scenario.stall.is_some_and(|s| s.active(tick));

        match choice {
            Task::Producer(p) => {
                let producer = &mut producers[p];
                let offer = match producer.parked.take() {
                    Some((message, leaf, shard)) => core.retry_submit(message, leaf, shard),
                    None => {
                        let message = producer.script.pop_front().expect("ready producer");
                        core.try_submit(message)
                    }
                };
                match offer {
                    TierSubmit::Done(outcome) => {
                        if in_stall_window && !matches!(outcome, SubmitOutcome::Accepted) {
                            stall_backpressure += 1;
                        }
                    }
                    TierSubmit::Blocked {
                        message,
                        leaf,
                        shard,
                    } => {
                        if in_stall_window {
                            stall_backpressure += 1;
                        }
                        producer.parked = Some((message, leaf, shard));
                    }
                }
            }
            Task::Worker(w) => {
                let worker = &mut workers[w];
                match worker.step() {
                    TierStep::Frame(run) => {
                        frames += 1;
                        let switch = &scenario.topology.tiers[worker.tier()].switch;
                        let shard = worker.shard();
                        if let Some(v) = check_frame(switch, shard.active_faults(), &run, w, tick) {
                            violations.push(v);
                        }
                        if let Some(v) = check_capacity(shard, &run, tick) {
                            violations.push(v);
                        }
                        if worker.is_spine() {
                            completions.extend(run.delivered);
                        }
                        let flag = core
                            .core(worker.tier(), worker.fabric())
                            .shard_quarantined(worker.shard_id());
                        if flag != quarantine_flags[w] {
                            quarantine_flags[w] = flag;
                            if flag {
                                quarantines += 1;
                            }
                        }
                    }
                    TierStep::Forwarded | TierStep::ForwardStalled | TierStep::Idle => {}
                    TierStep::Done => worker_done[w] = true,
                }
            }
        }

        // End-to-end conservation holds at *every* tick boundary: each
        // scheduled step is atomic, so the tree-wide ledger can never be
        // caught mid-update.
        let ledger = tree_ledger(&core, &workers);
        if !ledger.holds() {
            violations.push(Violation::Conservation {
                tick,
                ledger: flatten(ledger),
            });
            break;
        }
    }

    let residual = core.in_flight() + workers.iter().map(|w| w.held()).sum::<u64>();
    if residual != 0 && violations.is_empty() {
        violations.push(Violation::ResidualInFlight {
            in_flight: residual,
        });
    }
    if scenario.lossless && violations.is_empty() {
        if let Some(v) = check_lossless(&expected_lossless, &completions) {
            violations.push(v);
        }
    }

    TreeRun {
        scenario: scenario.name.clone(),
        seed,
        snapshot: tree_snapshot(&core, &workers),
        completions,
        violations,
        ticks: clock.now(),
        frames,
        stall_backpressure,
        quarantines,
    }
}

/// One failing seed of a tree exploration.
#[derive(Debug, Clone)]
pub struct TreeFailureCase {
    /// The seed that failed — `cli sim --scenario <name> --seed <seed>`
    /// replays it.
    pub seed: u64,
    /// Every oracle violation the run produced.
    pub violations: Vec<Violation>,
}

/// The outcome of exploring one tree scenario across many seeds: the
/// tree analogue of [`crate::ExploreReport`].
#[derive(Debug, Clone)]
pub struct TreeExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Interleavings explored.
    pub runs: u64,
    /// Virtual ticks executed across all runs.
    pub ticks: u64,
    /// Routing frames executed across all runs.
    pub frames: u64,
    /// Leaf-admission backpressure events inside stall windows, summed.
    pub stall_backpressure: u64,
    /// Seeds that violated an oracle.
    pub failures: Vec<TreeFailureCase>,
}

impl TreeExploreReport {
    /// Whether every explored interleaving passed every oracle.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl ToJson for TreeExploreReport {
    fn to_json(&self) -> Value {
        object([
            ("scenario", self.scenario.to_json()),
            ("runs", self.runs.to_json()),
            ("ticks", self.ticks.to_json()),
            ("frames", self.frames.to_json()),
            ("stall_backpressure", self.stall_backpressure.to_json()),
            (
                "failures",
                Value::Array(
                    self.failures
                        .iter()
                        .map(|f| {
                            object([
                                ("seed", f.seed.to_json()),
                                (
                                    "violations",
                                    Value::Array(
                                        f.violations
                                            .iter()
                                            .map(|v| format!("{v:?}").to_json())
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Run `scenario` under every scheduler seed in `seeds` and collect
/// every failure with its seed.
pub fn explore_tree(
    scenario: &TreeScenario,
    seeds: std::ops::RangeInclusive<u64>,
) -> TreeExploreReport {
    let mut report = TreeExploreReport {
        scenario: scenario.name.clone(),
        runs: seeds.clone().count() as u64,
        ticks: 0,
        frames: 0,
        stall_backpressure: 0,
        failures: Vec::new(),
    };
    for seed in seeds {
        let run = run_tree_scenario(scenario, seed);
        report.ticks += run.ticks;
        report.frames += run.frames;
        report.stall_backpressure += run.stall_backpressure;
        if !run.passed() {
            report.failures.push(TreeFailureCase {
                seed,
                violations: run.violations,
            });
        }
    }
    report
}

/// The spine every tree scenario concentrates onto: a §6 full-Columnsort
/// hyperconcentrator (16 inputs as an 8×2 valid-bit matrix), compiled
/// once per process through the shared elaboration cache.
pub fn tree_spine_switch() -> Arc<StagedSwitch> {
    static SWITCH: OnceLock<Arc<StagedSwitch>> = OnceLock::new();
    Arc::clone(
        SWITCH
            .get_or_init(|| Arc::new(FullColumnsortHyperconcentrator::new(8, 2).staged().clone())),
    )
}

/// Every chip of the spine switch's first stage, dead.
fn dead_spine_first_stage() -> Vec<ChipFault> {
    (0..tree_spine_switch().stages[0].chip_count)
        .map(|chip| ChipFault {
            stage: 0,
            chip,
            mode: FaultMode::StuckInvalid,
        })
        .collect()
}

/// The two-tier base every tree scenario varies: two leaf fabrics on
/// the shared 16→8 Revsort concentrating onto one spine
/// hyperconcentrator, tiny rings, blocking backpressure everywhere.
fn tree_base(name: &str, workload_seed: u64, frames: usize, p: f64) -> TreeScenario {
    let mut leaf_config = FabricConfig::new(1);
    leaf_config.queue_capacity = 2;
    let mut spine_config = FabricConfig::new(1);
    spine_config.queue_capacity = 2;
    TreeScenario {
        name: name.to_string(),
        topology: TierTopology::new(vec![
            TierSpec {
                fabrics: 2,
                switch: shared_switch(),
                config: leaf_config,
            },
            TierSpec {
                fabrics: 1,
                switch: tree_spine_switch(),
                config: spine_config,
            },
        ]),
        producers: 2,
        plan: LoadPlan {
            model: TrafficModel::Bernoulli { p },
            payload_bytes: 2,
            seed: workload_seed,
            frames,
        },
        ingress_sources: 32,
        faults: Vec::new(),
        stall: None,
        lossless: false,
        max_ticks: 50_000,
    }
}

/// The spine stalls for the first 400 virtual ticks while producers keep
/// offering: leaf frames fill the uplink holds, the holds starve leaf
/// frame execution, leaf rings fill, and external producers must feel it
/// at admission ([`TreeRun::stall_backpressure`] > 0 — asserted by the
/// harness tests). Blocking backpressure everywhere: once the stall
/// lifts the drain must still be lossless.
pub fn tier_spine_stall() -> TreeScenario {
    let mut s = tree_base("tier-spine-stall", 1101, 3, 0.7);
    s.stall = Some(StallWindow {
        tier: 1,
        from_tick: 0,
        until_tick: 400,
    });
    s.lossless = true;
    s
}

/// Bursty sources against shed-oldest leaves: on/off bursts overflow the
/// capacity-2 leaf rings, every shed must land in the end-to-end ledger,
/// and the spine (still blocking) must deliver whatever survives.
pub fn tier_leaf_burst() -> TreeScenario {
    let mut s = tree_base("tier-leaf-burst", 2202, 4, 0.6);
    s.plan.model = TrafficModel::Bursty {
        p: 0.6,
        mean_burst: 4.0,
    };
    s.producers = 3;
    s.ingress_sources = 48;
    s.topology.tiers[0].config.backpressure = Backpressure::ShedOldest;
    s.topology.tiers[1].config.queue_capacity = 4;
    s
}

/// Two spine fabrics; mid-run, one spine's first sorting stage dies
/// outright and is repaired only while the tree is already draining.
/// The dead spine must quarantine (health EWMA raised so it resolves
/// within the workload), [`tiers::pick_downstream`] must steer fresh
/// uplink traffic to the healthy spine, and the finite retry budget
/// turns the dead spine's stranded messages into `retry_dropped` — all
/// absorbed by the conservation ledger at every tick.
pub fn tier_spine_quarantine_mid_drain() -> TreeScenario {
    let mut s = tree_base("tier-spine-quarantine-mid-drain", 3303, 3, 0.7);
    s.topology.tiers[1].fabrics = 2;
    s.topology.tiers[1].config.retry = RetryBudget::limited(1);
    s.topology.tiers[1].config.health = HealthPolicy {
        alpha: 0.5,
        ..HealthPolicy::default()
    };
    s.producers = 3;
    s.faults = vec![
        TreeFaultEvent {
            at_tick: 120,
            tier: 1,
            fabric: 0,
            shard: 0,
            faults: dead_spine_first_stage(),
        },
        TreeFaultEvent {
            at_tick: 600,
            tier: 1,
            fabric: 0,
            shard: 0,
            faults: Vec::new(),
        },
    ];
    s
}

/// Every tree scenario, in catalogue order.
pub fn tree_catalogue() -> Vec<TreeScenario> {
    vec![
        tier_spine_stall(),
        tier_leaf_burst(),
        tier_spine_quarantine_mid_drain(),
    ]
}

/// Look a tree scenario up by its CLI name.
pub fn tree_by_name(name: &str) -> Option<TreeScenario> {
    tree_catalogue().into_iter().find(|s| s.name == name)
}
