//! Seeded interleaving exploration: run a scenario under many scheduler
//! seeds, apply every oracle, and shrink whatever fails.
//!
//! [`explore`] is the harness entry point the tests, the CLI `sim`
//! subcommand, and the CI smoke step share. For lossless scenarios it
//! first computes the delivery reference — the synchronous
//! [`fabric::Fabric`] playing the *same* producer scripts — once,
//! then checks every seeded run's completions against it bit-for-bit.
//! Failures are shrunk to minimal reproducers ([`crate::shrink()`]) and
//! reported with their seed: `cli sim --scenario <name> --seed <s>
//! --trace` replays the identical run.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use fabric::{producer_script, Fabric, SubmitOutcome};
use serde_json::{object, ToJson, Value};
use switchsim::Message;

use crate::oracles::{check_lossless, Violation};
use crate::shrink::shrink;
use crate::sim::{run_scenario, Scenario, SimRun};

/// One failing seed, with its shrunk reproducer's dimensions.
#[derive(Debug, Clone)]
pub struct FailureCase {
    /// The seed that failed — `cli sim --seed <seed>` replays it.
    pub seed: u64,
    /// Every oracle violation the run produced.
    pub violations: Vec<Violation>,
    /// Fault events surviving the shrink (scenario had more).
    pub shrunk_faults: usize,
    /// Reconfiguration events surviving the shrink.
    pub shrunk_reconfig: usize,
    /// Workload frames surviving the shrink.
    pub shrunk_frames: usize,
    /// Producers surviving the shrink.
    pub shrunk_producers: usize,
    /// Trace records surviving the shrink (`None` when the scenario is
    /// not trace-driven).
    pub shrunk_trace_records: Option<usize>,
}

/// The outcome of exploring one scenario across many seeds.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Interleavings explored.
    pub runs: u64,
    /// Virtual ticks executed across all runs.
    pub ticks: u64,
    /// Routing frames executed across all runs.
    pub frames: u64,
    /// Seeds that violated an oracle, with shrunk reproducers.
    pub failures: Vec<FailureCase>,
}

impl ExploreReport {
    /// Whether every explored interleaving passed every oracle.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl ToJson for ExploreReport {
    fn to_json(&self) -> Value {
        object([
            ("scenario", self.scenario.to_json()),
            ("runs", self.runs.to_json()),
            ("ticks", self.ticks.to_json()),
            ("frames", self.frames.to_json()),
            (
                "failures",
                Value::Array(
                    self.failures
                        .iter()
                        .map(|f| {
                            object([
                                ("seed", f.seed.to_json()),
                                (
                                    "violations",
                                    Value::Array(
                                        f.violations
                                            .iter()
                                            .map(|v| format!("{v:?}").to_json())
                                            .collect(),
                                    ),
                                ),
                                ("shrunk_faults", f.shrunk_faults.to_json()),
                                ("shrunk_reconfig", f.shrunk_reconfig.to_json()),
                                ("shrunk_frames", f.shrunk_frames.to_json()),
                                ("shrunk_producers", f.shrunk_producers.to_json()),
                                (
                                    "shrunk_trace_records",
                                    match f.shrunk_trace_records {
                                        Some(records) => records.to_json(),
                                        None => Value::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The delivery reference for a lossless scenario: the synchronous
/// [`Fabric`] plays the same producer scripts (round-robin across
/// producers, held messages re-offered oldest-first after each tick) and
/// must deliver every message. Returns id → payload.
///
/// # Panics
/// If the scenario is not lossless, or the reference itself loses a
/// message — either is a harness bug, not a system-under-test failure.
pub fn lossless_reference(scenario: &Scenario) -> HashMap<u64, Vec<u8>> {
    assert!(
        scenario.lossless,
        "reference only defined for lossless runs"
    );
    let mut fabric = Fabric::new(Arc::clone(&scenario.switch), scenario.config);
    // Trace scenarios have one producer — the trace's frames, flattened
    // into the same closed-loop re-offer discipline.
    let mut scripts: Vec<VecDeque<Message>> = match &scenario.trace {
        Some(workload) => vec![
            fabric::trace::frames(&workload.effective(), scenario.switch.n)
                .into_iter()
                .flat_map(|(_, frame)| frame)
                .collect(),
        ],
        None => (0..scenario.producers)
            .map(|p| producer_script(&scenario.plan, scenario.switch.n, p).into())
            .collect(),
    };
    let mut generated = 0usize;
    let mut held: VecDeque<Message> = VecDeque::new();
    loop {
        let backlog = held.len();
        for _ in 0..backlog {
            let message = held.pop_front().expect("backlog counted");
            if let SubmitOutcome::Backpressured(back) = fabric.submit(message) {
                held.push_back(back);
            }
        }
        let mut fresh = false;
        for script in &mut scripts {
            if let Some(message) = script.pop_front() {
                generated += 1;
                fresh = true;
                if let SubmitOutcome::Backpressured(back) = fabric.submit(message) {
                    held.push_back(back);
                }
            }
        }
        fabric.tick();
        if !fresh && held.is_empty() && fabric.in_flight() == 0 {
            break;
        }
    }
    let completions = fabric.take_completions();
    assert_eq!(
        completions.len(),
        generated,
        "the synchronous reference must deliver every message"
    );
    completions
        .into_iter()
        .map(|d| (d.message.id, d.message.payload.as_ref().to_vec()))
        .collect()
}

/// Run `scenario` under every seed, applying all oracles (plus the
/// lossless delivery-set oracle when the scenario declares it), and
/// shrink every failure.
pub fn explore(scenario: &Scenario, seeds: impl IntoIterator<Item = u64>) -> ExploreReport {
    let reference = scenario.lossless.then(|| lossless_reference(scenario));
    let mut report = ExploreReport {
        scenario: scenario.name.clone(),
        runs: 0,
        ticks: 0,
        frames: 0,
        failures: Vec::new(),
    };
    for seed in seeds {
        let run = check_run(scenario, seed, reference.as_ref());
        report.runs += 1;
        report.ticks += run.ticks;
        report.frames += run.frames;
        if !run.passed() {
            // The lossless oracle travels inside run_scenario, so a plain
            // passed() predicate stays correct for every shrunk candidate
            // (each candidate's expected set is rebuilt from its own
            // scripts).
            let minimal = shrink(scenario, seed, &|r: &SimRun| !r.passed());
            report.failures.push(FailureCase {
                seed,
                violations: run.violations,
                shrunk_faults: minimal.faults.len(),
                shrunk_reconfig: minimal.reconfig.len(),
                shrunk_frames: minimal.plan.frames,
                shrunk_producers: minimal.producers,
                shrunk_trace_records: minimal.trace.as_ref().map(|w| w.records()),
            });
        }
    }
    report
}

/// One seeded run with every applicable oracle applied (the per-run body
/// of [`explore`], exposed for replay: the CLI and the corpus test call
/// this directly).
pub fn check_run(
    scenario: &Scenario,
    seed: u64,
    reference: Option<&HashMap<u64, Vec<u8>>>,
) -> SimRun {
    let mut run = run_scenario(scenario, seed);
    if let Some(expected) = reference {
        if let Some(v) = check_lossless(expected, &run.completions) {
            run.violations.push(v);
        }
    }
    run
}
