//! Model-based oracles: what every simulated run is checked against.
//!
//! Three independent models judge each run:
//!
//! 1. **Per-frame reference** ([`check_frame`]) — every executed frame's
//!    deliveries must match `switchsim`'s message-level bit-serial
//!    reference simulator on the same offered set, through the same
//!    (possibly faulted) switch: identical output wires and bit-exact
//!    payloads, with every dropped message drawn from the reference's
//!    unrouted set. This is the oracle that catches routing or datapath
//!    corruption the moment it happens.
//! 2. **Conservation** ([`conservation_ledger`]) — at every virtual tick,
//!    `offered = delivered + rejected + shed + retry_dropped + in_flight`
//!    across the whole fabric. Each scheduler step is atomic, so the
//!    ledger must balance *continuously*, not just at drain.
//! 3. **Analytic capacity bound** ([`check_capacity`]) — a healthy shard
//!    offered `k ≤ ⌊α·m⌋` messages in one frame must deliver all `k`
//!    (Lemma 2's capacity floor, [`Shard::capacity_bound`]), and no frame
//!    may ever deliver more than `min(k, m)`. The aggregate drop rate of
//!    a lossy run is additionally cross-checked against
//!    `switchsim::analytic`'s binomial drop model ([`analytic_floor`]).
//!
//! Oracles return [`Violation`]s instead of panicking so the explorer can
//! collect them, shrink the scenario, and print the seed.

use concentrator::faults::{ChipFault, FaultySwitch};
use concentrator::StagedSwitch;
use fabric::{FrameRun, ServiceCore, Shard, WorkerCore};
use std::collections::HashMap;
use std::sync::Arc;
use switchsim::frame::simulate_frame;

/// The fabric-wide conservation ledger at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ledger {
    /// Messages offered (queue-counted plus admission rejections).
    pub offered: u64,
    /// Messages delivered to an output wire.
    pub delivered: u64,
    /// Messages rejected (queue plus admission).
    pub rejected: u64,
    /// Messages shed at full queues.
    pub shed: u64,
    /// Messages dropped after exhausting their retry budget.
    pub retry_dropped: u64,
    /// Messages currently queued or pending in a shard.
    pub in_flight: u64,
}

impl Ledger {
    /// The conservation identity.
    pub fn holds(&self) -> bool {
        self.offered
            == self.delivered + self.rejected + self.shed + self.retry_dropped + self.in_flight
    }
}

/// Snapshot the conservation ledger from the live cores.
pub fn conservation_ledger(core: &ServiceCore, workers: &[WorkerCore]) -> Ledger {
    let mut ledger = Ledger {
        offered: 0,
        delivered: 0,
        rejected: 0,
        shed: 0,
        retry_dropped: 0,
        in_flight: core.in_flight(),
    };
    for (i, worker) in workers.iter().enumerate() {
        let (offered, rejected, shed) = core.queue(i).counters();
        let admission = core.admission_rejected(i);
        ledger.offered += offered + admission;
        ledger.rejected += rejected + admission;
        ledger.shed += shed;
        let metrics = &worker.shard().metrics;
        ledger.delivered += metrics.delivered;
        ledger.retry_dropped += metrics.retry_dropped;
        ledger.shed += metrics.shed;
    }
    ledger
}

/// A failed oracle check. Everything needed to reproduce is the scenario
/// name plus the run seed; the violation pins *where* in the run it broke.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The conservation identity broke at a tick boundary.
    Conservation {
        /// Virtual tick of the breaking step.
        tick: u64,
        /// The unbalanced ledger.
        ledger: Ledger,
    },
    /// A frame's outcome disagreed with the reference simulator.
    FrameMismatch {
        /// Virtual tick of the frame.
        tick: u64,
        /// Shard that ran it.
        shard: usize,
        /// Human-readable disagreement.
        detail: String,
    },
    /// A healthy frame under the capacity bound failed to deliver
    /// everything, or any frame over-delivered.
    CapacityBound {
        /// Virtual tick of the frame.
        tick: u64,
        /// Shard that ran it.
        shard: usize,
        /// Messages offered to the switch.
        offered: usize,
        /// Messages delivered.
        delivered: usize,
        /// The analytic bound `⌊α·m⌋`.
        bound: u64,
    },
    /// No task was ready but the run was not finished.
    Deadlock {
        /// Virtual tick of the stall.
        tick: u64,
        /// Producers holding a message with nowhere to put it.
        parked_producers: usize,
        /// Workers that had not drained.
        unfinished_workers: usize,
    },
    /// The run exceeded its tick budget (liveness failure).
    TickLimit {
        /// The budget that was exhausted.
        tick: u64,
    },
    /// A lossless scenario lost, duplicated, or corrupted a message.
    LosslessDelivery {
        /// Human-readable disagreement with the reference delivery set.
        detail: String,
    },
    /// The run ended with messages still counted in flight.
    ResidualInFlight {
        /// The stuck gauge value.
        in_flight: u64,
    },
}

/// Check one executed frame against the message-level reference
/// simulator, through the same fault set the shard routed with.
pub fn check_frame(
    switch: &Arc<StagedSwitch>,
    faults: &[ChipFault],
    run: &FrameRun,
    shard: usize,
    tick: u64,
) -> Option<Violation> {
    let reference = if faults.is_empty() {
        simulate_frame(&**switch, &run.offered)
    } else {
        let faulty = FaultySwitch::new(Arc::clone(switch), faults.to_vec());
        simulate_frame(&faulty, &run.offered)
    };
    let mismatch = |detail: String| {
        Some(Violation::FrameMismatch {
            tick,
            shard,
            detail,
        })
    };
    if reference.delivered.len() != run.delivered.len() {
        return mismatch(format!(
            "delivered {} messages, reference delivered {}",
            run.delivered.len(),
            reference.delivered.len()
        ));
    }
    let expected: HashMap<u64, (usize, &[u8])> = reference
        .delivered
        .iter()
        .map(|(out, m)| (m.id, (*out, m.payload.as_ref())))
        .collect();
    for delivery in &run.delivered {
        match expected.get(&delivery.message.id) {
            None => {
                return mismatch(format!(
                    "delivered id {} the reference did not route",
                    delivery.message.id
                ))
            }
            Some((out, payload)) => {
                if *out != delivery.output {
                    return mismatch(format!(
                        "id {} arrived on output {}, reference says {}",
                        delivery.message.id, delivery.output, out
                    ));
                }
                if *payload != delivery.message.payload.as_ref() {
                    return mismatch(format!(
                        "id {} payload corrupted in transit",
                        delivery.message.id
                    ));
                }
            }
        }
    }
    let unrouted: std::collections::HashSet<u64> =
        reference.unrouted.iter().map(|m| m.id).collect();
    for dropped in &run.dropped {
        if !unrouted.contains(&dropped.id) {
            return mismatch(format!(
                "dropped id {} which the reference routed",
                dropped.id
            ));
        }
    }
    None
}

/// Check one executed frame against the analytic capacity bound.
pub fn check_capacity(shard: &Shard, run: &FrameRun, tick: u64) -> Option<Violation> {
    let bound = shard.capacity_bound();
    let m = shard.switch().m;
    let offered = run.offered.len();
    let delivered = run.delivered.len();
    let healthy = shard.active_faults().is_empty();
    let under_bound_shortfall =
        healthy && offered as u64 <= bound && delivered != offered && offered > 0;
    let over_delivery = delivered > offered.min(m);
    if under_bound_shortfall || over_delivery {
        return Some(Violation::CapacityBound {
            tick,
            shard: shard.id(),
            offered,
            delivered,
            bound,
        });
    }
    None
}

/// The binomial drop-model floor from `switchsim::analytic`: the expected
/// number of deliveries per generation frame when each of `n` inputs
/// offers with probability `p` and the switch guarantees Lemma 2's
/// `min(k, ⌊α·m⌋)` floor. Measured lossy runs must deliver at least this
/// (minus drops the queues never forwarded); the seed-corpus test pins
/// the aggregate against it.
pub fn analytic_floor(switch: &StagedSwitch, p: f64) -> f64 {
    let bound = {
        let m = switch.m as f64;
        let alpha = match switch.kind {
            concentrator::spec::ConcentratorKind::Partial { alpha } => alpha,
            _ => 1.0,
        };
        ((alpha * m).floor() as usize).max(1)
    };
    let prediction = switchsim::analytic::predict_drop(switch.n, p, |k| k.min(bound));
    prediction.delivered_per_frame
}

/// Check a lossless run's deliveries against the reference delivery set
/// (id → payload): every expected message delivered exactly once,
/// bit-exact, and nothing else.
pub fn check_lossless(
    expected: &HashMap<u64, Vec<u8>>,
    completions: &[fabric::Delivery],
) -> Option<Violation> {
    let lost = |detail: String| Some(Violation::LosslessDelivery { detail });
    if completions.len() != expected.len() {
        return lost(format!(
            "delivered {} messages, reference delivers {}",
            completions.len(),
            expected.len()
        ));
    }
    let mut seen = std::collections::HashSet::with_capacity(completions.len());
    for delivery in completions {
        let id = delivery.message.id;
        if !seen.insert(id) {
            return lost(format!("id {id} delivered twice"));
        }
        match expected.get(&id) {
            None => return lost(format!("delivered unknown id {id}")),
            Some(payload) => {
                if payload.as_slice() != delivery.message.payload.as_ref() {
                    return lost(format!("id {id} payload corrupted"));
                }
            }
        }
    }
    None
}
