//! The simulation executor: one seeded cooperative run of the full
//! service stack under a virtual clock.
//!
//! A [`Scenario`] fixes everything about a run except the interleaving:
//! the switch, the fabric configuration, the producer workload (via
//! [`fabric::producer_script`] — the same message sequences the threaded
//! driver submits), a virtual-time fault schedule, a virtual-time
//! *reconfiguration* schedule (shard add/remove, live switch swaps,
//! admission retargeting — see [`ReconfigAction`]), an optional
//! SLO-admission plan, and a tick budget.
//! [`run_scenario`] then executes the scenario's producers and shard
//! workers as *cooperative tasks*: each scheduler step picks one ready
//! task uniformly with a [`SplitMix64`] stream seeded by the run's `u64`
//! seed, executes exactly one non-blocking step of it
//! ([`ServiceCore::try_submit`] / [`ServiceCore::retry_submit`] /
//! [`WorkerCore::step`]), and advances the shared [`VirtualClock`] by one
//! tick. Nothing else in the run consumes entropy or reads wall time, so
//! the complete trace — every submission outcome, frame, fault
//! injection, and quarantine transition — is a pure function of
//! `(scenario, seed)`. That is the property the determinism tests pin
//! bit-for-bit and the `cli sim --seed` replay workflow relies on.
//!
//! Because the cores are the *same* code the threaded
//! [`FabricService`](fabric::FabricService)
//! runs (its workers loop `step_blocking`, its `submit` is
//! `submit_blocking` — thin condvar shells over the identical step
//! logic), every interleaving this executor explores is an interleaving
//! the real service could exhibit under some OS schedule; a blocked
//! producer here is a parked task whose readiness predicate is the
//! queue's `would_accept`, exactly mirroring the condvar wait.
//!
//! Model-based oracles run *inside* the loop: the conservation ledger is
//! checked after every tick, and every executed frame is checked against
//! the message-level reference simulator and the analytic capacity bound
//! (see [`crate::oracles`]). Violations are collected, not panicked, so
//! the explorer can shrink and report them.

use std::collections::VecDeque;
use std::sync::Arc;

use concentrator::clock::{Clock, VirtualClock};
use concentrator::faults::ChipFault;
use concentrator::verify::SplitMix64;
use concentrator::StagedSwitch;
use fabric::{
    producer_script, producer_script_frames, Delivery, FabricConfig, FabricSnapshot, LoadPlan,
    ServiceCore, SloController, SloPolicy, SubmitOutcome, SubmitStep, WorkerCore, WorkerStep,
};
use switchsim::Message;

use crate::oracles::{check_capacity, check_frame, conservation_ledger, Violation};

/// A fault-set change at a point in virtual time: at tick `at_tick`,
/// shard `shard`'s fault set becomes `faults` (empty = repair). The
/// virtual-time analogue of [`fabric::FaultEvent`]'s frame schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SimFaultEvent {
    /// Virtual tick at which the change is injected.
    pub at_tick: u64,
    /// Target shard.
    pub shard: usize,
    /// The shard's new complete fault set.
    pub faults: Vec<ChipFault>,
}

/// A control-plane operation (see [`fabric::reconfig`]) the executor
/// performs on the live core. Operations the control plane refuses —
/// removing the last active shard, growing past the lane pool — are
/// skipped silently: schedules stay valid under shrinking.
#[derive(Debug, Clone)]
pub enum ReconfigAction {
    /// Activate the next unused lane and start a worker for it on the
    /// current switch (the original, or the last swapped-in one).
    AddShard,
    /// Drain and retire one shard's lane.
    RemoveShard {
        /// The lane to remove.
        shard: usize,
    },
    /// Stage a recompiled switch into every live lane (two-phase epoch
    /// handoff); later-added shards start on it.
    SwapSwitch {
        /// The replacement; its `n` must cover the current switch's.
        switch: Arc<StagedSwitch>,
    },
    /// Retarget the global admission cap (`None` = uncapped).
    SetAdmissionLimit {
        /// The new cap.
        limit: Option<usize>,
    },
}

/// A control-plane operation at a point in virtual time — the reconfig
/// analogue of [`SimFaultEvent`].
#[derive(Debug, Clone)]
pub struct SimReconfigEvent {
    /// Virtual tick at which the operation runs.
    pub at_tick: u64,
    /// What the control plane does.
    pub action: ReconfigAction,
}

/// Drive an [`SloController`] on the virtual clock: evaluate a live
/// snapshot every `every_ticks` ticks and apply the limit it hands back
/// through [`ServiceCore::set_admission_limit`]. Pure function of the
/// run, so SLO-controlled runs replay bit-for-bit like everything else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPlan {
    /// Evaluation cadence in virtual ticks.
    pub every_ticks: u64,
    /// The AIMD policy.
    pub policy: SloPolicy,
}

/// A trace-driven workload: the scenario's producer is the trace itself
/// (see [`fabric::trace`]). The trace is lowered to per-tick frames
/// over the switch's inputs and submitted through the frame-batched
/// admission path by a single producer task — the deterministic
/// analogue of the [`fabric::TraceFeeder`] ingest worker, whose pop
/// order is exactly the frame order this task submits in.
///
/// `limit` is the shrinker's knob: only the first `limit` records play.
/// Shrinking truncates the trace suffix *before* touching the fault or
/// reconfiguration schedule, so minimal reproducers carry the shortest
/// workload prefix that still fails.
#[derive(Clone)]
pub struct TraceWorkload {
    /// The trace (shared so scenario clones during shrinking are cheap).
    pub trace: Arc<fabric::Trace>,
    /// Records of the trace that play (prefix length).
    pub limit: usize,
}

impl TraceWorkload {
    /// Wrap a whole trace (no truncation).
    pub fn full(trace: fabric::Trace) -> Self {
        let limit = trace.len();
        TraceWorkload {
            trace: Arc::new(trace),
            limit,
        }
    }

    /// Records that actually play.
    pub fn records(&self) -> usize {
        self.limit.min(self.trace.len())
    }

    /// The effective (truncated) trace.
    pub fn effective(&self) -> fabric::Trace {
        self.trace.truncated(self.limit)
    }
}

/// Everything that defines a simulated run except the interleaving seed.
#[derive(Clone)]
pub struct Scenario {
    /// Display name (the CLI's `--scenario` key).
    pub name: String,
    /// The switch every shard serves.
    pub switch: Arc<StagedSwitch>,
    /// Fabric configuration.
    pub config: FabricConfig,
    /// Concurrent producer tasks.
    pub producers: usize,
    /// Per-producer workload (seeded off `plan.seed + producer`).
    /// Ignored when [`Scenario::trace`] is set.
    pub plan: LoadPlan,
    /// Trace-driven workload: when set, the inline `plan` is replaced by
    /// one producer task replaying the trace's frames through the
    /// batched admission path.
    pub trace: Option<TraceWorkload>,
    /// Virtual-time fault schedule, sorted by `at_tick`. May target any
    /// lane below `config.max_shards`, including shards added mid-run.
    pub faults: Vec<SimFaultEvent>,
    /// Virtual-time control-plane schedule, sorted by `at_tick`.
    pub reconfig: Vec<SimReconfigEvent>,
    /// SLO-driven admission control on the virtual clock, if any.
    pub slo: Option<SloPlan>,
    /// Whether producers submit whole generation frames through the
    /// frame-batched admission path ([`ServiceCore::try_submit_batch`])
    /// instead of single messages — explores the ring's batched
    /// publication interleavings.
    pub batched: bool,
    /// Whether the scenario guarantees every generated message is
    /// delivered (blocking backpressure, unlimited retries, no faults,
    /// no admission cap) — enables the delivery-set equivalence oracle.
    pub lossless: bool,
    /// Tick budget; exceeding it is a liveness violation.
    pub max_ticks: u64,
}

impl Scenario {
    /// # Panics
    /// If the fault schedule is unsorted or names a missing shard — a
    /// malformed scenario would make violations meaningless.
    pub fn validate(&self) {
        self.config.validate();
        assert!(self.producers > 0, "need at least one producer");
        assert!(
            self.faults.windows(2).all(|w| w[0].at_tick <= w[1].at_tick),
            "fault schedule must be sorted by tick"
        );
        assert!(
            self.faults.iter().all(|e| e.shard < self.config.max_shards),
            "fault event names a missing shard"
        );
        assert!(
            self.reconfig
                .windows(2)
                .all(|w| w[0].at_tick <= w[1].at_tick),
            "reconfig schedule must be sorted by tick"
        );
        assert!(
            self.reconfig.iter().all(|e| match &e.action {
                ReconfigAction::RemoveShard { shard } => *shard < self.config.max_shards,
                _ => true,
            }),
            "reconfig event names a lane outside the pool"
        );
        if let Some(plan) = &self.slo {
            assert!(plan.every_ticks > 0, "SLO cadence must be positive");
            plan.policy.validate();
        }
        if let Some(workload) = &self.trace {
            workload
                .trace
                .validate()
                .expect("scenario trace must be well-formed");
            assert_eq!(
                self.producers, 1,
                "trace scenarios have exactly one producer (the trace)"
            );
        }
    }
}

/// How a resolved submission step ended (the trace-level view of
/// [`SubmitOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitKind {
    /// Queued.
    Accepted,
    /// Queued after shedding the oldest queued message.
    AcceptedAfterShed,
    /// Refused.
    Rejected,
}

impl From<&SubmitOutcome> for SubmitKind {
    fn from(outcome: &SubmitOutcome) -> SubmitKind {
        match outcome {
            SubmitOutcome::Accepted => SubmitKind::Accepted,
            SubmitOutcome::AcceptedAfterShed => SubmitKind::AcceptedAfterShed,
            SubmitOutcome::Rejected => SubmitKind::Rejected,
            SubmitOutcome::Backpressured(_) => {
                unreachable!("the service core never hands back Backpressured")
            }
        }
    }
}

/// One scheduled step of a run. The determinism tests compare whole
/// traces with `==`; the CLI prints them line by line for replay
/// diffing.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A producer's submission resolved in one step.
    Submit {
        /// Virtual tick of the step.
        tick: u64,
        /// Producer task index.
        producer: usize,
        /// Message id (producer-tagged).
        id: u64,
        /// How the submission resolved.
        outcome: SubmitKind,
    },
    /// A producer's submission would block: the task parks on the shard's
    /// queue, holding the message.
    Parked {
        /// Virtual tick of the step.
        tick: u64,
        /// Producer task index.
        producer: usize,
        /// Message id the producer is holding.
        id: u64,
        /// Shard whose full queue it waits on.
        shard: usize,
    },
    /// A parked producer's re-offer resolved.
    Resumed {
        /// Virtual tick of the step.
        tick: u64,
        /// Producer task index.
        producer: usize,
        /// Message id re-offered.
        id: u64,
        /// How the re-offer resolved.
        outcome: SubmitKind,
    },
    /// A producer submitted a whole generation frame through the batched
    /// admission path.
    SubmitBatch {
        /// Virtual tick of the step.
        tick: u64,
        /// Producer task index.
        producer: usize,
        /// Messages in the submitted frame.
        offered: usize,
        /// Messages that landed on a ring.
        accepted: u64,
        /// Queued messages shed to make room.
        shed: u64,
        /// Messages refused outright.
        rejected: u64,
        /// Messages handed back by full queues under blocking
        /// backpressure (the producer parks and re-offers them).
        blocked: usize,
    },
    /// A worker executed one batched routing frame.
    Frame {
        /// Virtual tick of the step.
        tick: u64,
        /// Shard that ran the frame.
        shard: usize,
        /// Messages offered to the switch this frame.
        offered: usize,
        /// Deliveries completed.
        delivered: usize,
        /// Messages dropped (retry budget exhausted).
        dropped: usize,
    },
    /// A fault event fired: the shard's fault set was replaced.
    Fault {
        /// Virtual tick of the injection.
        tick: u64,
        /// Target shard.
        shard: usize,
        /// Size of the new fault set (0 = repair).
        faults: usize,
    },
    /// A shard's published quarantine flag flipped.
    Quarantine {
        /// Virtual tick observed.
        tick: u64,
        /// The shard.
        shard: usize,
        /// New flag value.
        on: bool,
    },
    /// A shard joined the placement ring ([`ReconfigAction::AddShard`]).
    ShardAdded {
        /// Virtual tick of the epoch bump.
        tick: u64,
        /// The new lane's id.
        shard: usize,
    },
    /// A shard left the placement ring and began draining
    /// ([`ReconfigAction::RemoveShard`]).
    ShardRemoved {
        /// Virtual tick of the epoch bump.
        tick: u64,
        /// The draining lane's id.
        shard: usize,
    },
    /// A replacement switch was staged into every live lane
    /// ([`ReconfigAction::SwapSwitch`]); each worker installs it once its
    /// old-epoch backlog completes.
    SwitchSwapped {
        /// Virtual tick of the epoch bump.
        tick: u64,
        /// Lanes signalled.
        lanes: usize,
    },
    /// The global admission cap was retargeted
    /// ([`ReconfigAction::SetAdmissionLimit`]).
    AdmissionLimitSet {
        /// Virtual tick of the change.
        tick: u64,
        /// The new cap (`None` = uncapped).
        limit: Option<usize>,
    },
    /// The SLO controller changed the admission limit after an
    /// evaluation.
    SloAdjust {
        /// Virtual tick of the evaluation.
        tick: u64,
        /// The interval's p99 wait (bucket floor).
        p99: u64,
        /// Deliveries in the interval.
        samples: u64,
        /// The limit the controller set.
        limit: usize,
    },
    /// All producers finished; the queues were closed (drain begins).
    Closed {
        /// Virtual tick of the close.
        tick: u64,
    },
    /// A worker drained its backlog after close and finished.
    WorkerDone {
        /// Virtual tick of the final step.
        tick: u64,
        /// The shard.
        shard: usize,
    },
}

/// The complete, deterministic record of one simulated run.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Scenario name.
    pub scenario: String,
    /// Interleaving seed.
    pub seed: u64,
    /// Every scheduled step, in order.
    pub trace: Vec<TraceEvent>,
    /// Final merged metrics (queue counters folded in).
    pub snapshot: FabricSnapshot,
    /// Every delivery, in completion order.
    pub completions: Vec<Delivery>,
    /// Oracle violations observed (empty = the run passed).
    pub violations: Vec<Violation>,
    /// Virtual ticks executed.
    pub ticks: u64,
    /// Routing frames executed.
    pub frames: u64,
}

impl SimRun {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One producer task: the remainder of its scripted workload plus its
/// parked state (held messages and the shards whose queues they wait
/// on).
enum ProducerTask {
    /// Submits one message per step ([`ServiceCore::try_submit`]); parks
    /// on at most one hand-back at a time.
    PerMessage {
        script: VecDeque<Message>,
        parked: Option<(Message, usize)>,
    },
    /// Submits one whole generation frame per step
    /// ([`ServiceCore::try_submit_batch`]); a full queue under blocking
    /// backpressure hands back a *suffix* of placed messages, which the
    /// task re-offers one per step, oldest first — exactly the order a
    /// thread blocked inside `push_batch` lands them.
    Batched {
        frames: VecDeque<Vec<Message>>,
        blocked: VecDeque<(Message, usize)>,
    },
}

impl ProducerTask {
    fn done(&self) -> bool {
        match self {
            ProducerTask::PerMessage { script, parked } => script.is_empty() && parked.is_none(),
            ProducerTask::Batched { frames, blocked } => frames.is_empty() && blocked.is_empty(),
        }
    }

    fn parked(&self) -> bool {
        match self {
            ProducerTask::PerMessage { parked, .. } => parked.is_some(),
            ProducerTask::Batched { blocked, .. } => !blocked.is_empty(),
        }
    }

    /// The shard whose queue must make room before this task can run
    /// again, if it is parked.
    fn parked_shard(&self) -> Option<usize> {
        match self {
            ProducerTask::PerMessage { parked, .. } => parked.as_ref().map(|(_, shard)| *shard),
            ProducerTask::Batched { blocked, .. } => blocked.front().map(|(_, shard)| *shard),
        }
    }
}

/// A ready task the scheduler may step next.
#[derive(Clone, Copy)]
enum Task {
    Producer(usize),
    Worker(usize),
}

/// Execute one seeded cooperative run of `scenario`. Never panics on an
/// oracle violation — failures land in [`SimRun::violations`] so the
/// caller can shrink and report them with the seed.
pub fn run_scenario(scenario: &Scenario, seed: u64) -> SimRun {
    scenario.validate();
    let core = ServiceCore::new(scenario.config);
    let clock = VirtualClock::new();
    let mut rng = SplitMix64(seed);
    let mut workers: Vec<WorkerCore> = (0..scenario.config.shards)
        .map(|id| core.worker(id, Arc::clone(&scenario.switch)))
        .collect();
    let mut worker_done = vec![false; workers.len()];
    let mut quarantine_flags = vec![false; workers.len()];
    let mut expected_lossless: std::collections::HashMap<u64, Vec<u8>> =
        std::collections::HashMap::new();
    let mut producers: Vec<ProducerTask> = if let Some(workload) = &scenario.trace {
        // The trace is the producer: its per-tick frames go through the
        // batched admission path in trace order, exactly the frames a
        // TraceFeeder ring would hand the threaded service.
        let frames = fabric::trace::frames(&workload.effective(), scenario.switch.n);
        if scenario.lossless {
            for (_, frame) in &frames {
                for message in frame {
                    expected_lossless.insert(message.id, message.payload.as_ref().to_vec());
                }
            }
        }
        vec![ProducerTask::Batched {
            frames: frames
                .into_iter()
                .map(|(_, frame)| frame)
                .filter(|f| !f.is_empty())
                .collect(),
            blocked: VecDeque::new(),
        }]
    } else {
        (0..scenario.producers)
            .map(|p| {
                if scenario.batched {
                    let frames = producer_script_frames(&scenario.plan, scenario.switch.n, p);
                    if scenario.lossless {
                        for message in frames.iter().flatten() {
                            expected_lossless.insert(message.id, message.payload.as_ref().to_vec());
                        }
                    }
                    ProducerTask::Batched {
                        frames: frames.into_iter().filter(|f| !f.is_empty()).collect(),
                        blocked: VecDeque::new(),
                    }
                } else {
                    let script = producer_script(&scenario.plan, scenario.switch.n, p);
                    if scenario.lossless {
                        for message in &script {
                            expected_lossless.insert(message.id, message.payload.as_ref().to_vec());
                        }
                    }
                    ProducerTask::PerMessage {
                        script: script.into(),
                        parked: None,
                    }
                }
            })
            .collect()
    };

    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut completions: Vec<Delivery> = Vec::new();
    let mut frames = 0u64;
    let mut next_fault = 0usize;
    let mut next_reconfig = 0usize;
    let mut closed = false;
    // The switch newly added shards start on: the scenario's, until a
    // SwapSwitch event replaces it.
    let mut current_switch = Arc::clone(&scenario.switch);
    let mut slo = scenario
        .slo
        .map(|plan| (plan, SloController::new(plan.policy)));

    loop {
        let tick = clock.now();
        if tick >= scenario.max_ticks {
            violations.push(Violation::TickLimit { tick });
            break;
        }

        // Virtual-time fault schedule: every event due by now fires,
        // deterministically, before the scheduler draws.
        while next_fault < scenario.faults.len() && scenario.faults[next_fault].at_tick <= tick {
            let event = &scenario.faults[next_fault];
            core.inject_faults(event.shard, event.faults.clone());
            trace.push(TraceEvent::Fault {
                tick,
                shard: event.shard,
                faults: event.faults.len(),
            });
            next_fault += 1;
        }

        // Virtual-time control-plane schedule: epoch-bumping operations
        // land between scheduler steps, exactly like a control thread's
        // calls land between data-plane steps. Refused operations (last
        // active shard, exhausted lane pool, drain already begun) are
        // skipped without a trace entry.
        while next_reconfig < scenario.reconfig.len()
            && scenario.reconfig[next_reconfig].at_tick <= tick
        {
            match &scenario.reconfig[next_reconfig].action {
                ReconfigAction::AddShard => {
                    if let Some(shard) = core.add_shard() {
                        workers.push(core.worker(shard, Arc::clone(&current_switch)));
                        worker_done.push(false);
                        quarantine_flags.push(false);
                        trace.push(TraceEvent::ShardAdded { tick, shard });
                    }
                }
                ReconfigAction::RemoveShard { shard } => {
                    if core.remove_shard(*shard) {
                        trace.push(TraceEvent::ShardRemoved {
                            tick,
                            shard: *shard,
                        });
                    }
                }
                ReconfigAction::SwapSwitch { switch } => {
                    current_switch = Arc::clone(switch);
                    let lanes = core.swap_switch(Arc::clone(switch));
                    trace.push(TraceEvent::SwitchSwapped { tick, lanes });
                }
                ReconfigAction::SetAdmissionLimit { limit } => {
                    core.set_admission_limit(*limit);
                    trace.push(TraceEvent::AdmissionLimitSet {
                        tick,
                        limit: *limit,
                    });
                }
            }
            next_reconfig += 1;
        }

        // SLO-driven admission on the virtual clock: evaluate a live
        // snapshot at the plan's cadence and keep the core's limit in
        // lockstep with the controller (the set is idempotent; only
        // changes bump the epoch or the trace).
        if let Some((plan, controller)) = &mut slo {
            if tick > 0 && tick.is_multiple_of(plan.every_ticks) {
                let decision = controller.evaluate(&core.snapshot());
                core.set_admission_limit(Some(decision.limit));
                if decision.changed {
                    trace.push(TraceEvent::SloAdjust {
                        tick,
                        p99: decision.interval_p99,
                        samples: decision.samples,
                        limit: decision.limit,
                    });
                }
            }
        }

        // Graceful drain starts the moment the offered load ends.
        if !closed && producers.iter().all(ProducerTask::done) {
            core.close();
            closed = true;
            trace.push(TraceEvent::Closed { tick });
        }

        // Readiness, in fixed task order (determinism): a producer is
        // ready with a fresh message, or parked on a queue that would now
        // resolve its re-offer; a worker is ready when stepping it makes
        // progress.
        let mut ready: Vec<Task> = Vec::new();
        for (p, task) in producers.iter().enumerate() {
            let runnable = match task.parked_shard() {
                Some(shard) => core.queue(shard).would_accept(scenario.config.backpressure),
                None => !task.done(),
            };
            if runnable {
                ready.push(Task::Producer(p));
            }
        }
        for (w, worker) in workers.iter().enumerate() {
            if !worker_done[w] && worker.ready() {
                ready.push(Task::Worker(w));
            }
        }

        if ready.is_empty() {
            let finished =
                producers.iter().all(ProducerTask::done) && worker_done.iter().all(|&d| d);
            if !finished {
                violations.push(Violation::Deadlock {
                    tick,
                    parked_producers: producers.iter().filter(|t| t.parked()).count(),
                    unfinished_workers: worker_done.iter().filter(|&&d| !d).count(),
                });
            }
            break;
        }

        // The seeded draw: the single source of scheduling entropy.
        let choice = ready[(rng.next_u64() % ready.len() as u64) as usize];
        clock.advance(1);

        match choice {
            Task::Producer(p) => match &mut producers[p] {
                ProducerTask::PerMessage { script, parked } => match parked.take() {
                    Some((message, shard)) => {
                        let id = message.id;
                        match core.retry_submit(message, shard) {
                            SubmitStep::Done(outcome) => trace.push(TraceEvent::Resumed {
                                tick,
                                producer: p,
                                id,
                                outcome: SubmitKind::from(&outcome),
                            }),
                            SubmitStep::Blocked { message, shard } => {
                                *parked = Some((message, shard));
                            }
                        }
                    }
                    None => {
                        let message = script.pop_front().expect("ready producer has work");
                        let id = message.id;
                        match core.try_submit(message) {
                            SubmitStep::Done(outcome) => trace.push(TraceEvent::Submit {
                                tick,
                                producer: p,
                                id,
                                outcome: SubmitKind::from(&outcome),
                            }),
                            SubmitStep::Blocked { message, shard } => {
                                trace.push(TraceEvent::Parked {
                                    tick,
                                    producer: p,
                                    id,
                                    shard,
                                });
                                *parked = Some((message, shard));
                            }
                        }
                    }
                },
                ProducerTask::Batched { frames, blocked } => {
                    if let Some((message, shard)) = blocked.pop_front() {
                        // Re-offer the oldest hand-back, one per step —
                        // the serial order a thread blocked inside
                        // `push_batch` lands its remainder.
                        let id = message.id;
                        match core.retry_submit(message, shard) {
                            SubmitStep::Done(outcome) => trace.push(TraceEvent::Resumed {
                                tick,
                                producer: p,
                                id,
                                outcome: SubmitKind::from(&outcome),
                            }),
                            SubmitStep::Blocked { message, shard } => {
                                blocked.push_front((message, shard));
                            }
                        }
                    } else {
                        let frame = frames.pop_front().expect("ready producer has work");
                        let offered = frame.len();
                        let batch = core.try_submit_batch(frame);
                        trace.push(TraceEvent::SubmitBatch {
                            tick,
                            producer: p,
                            offered,
                            accepted: batch.accepted,
                            shed: batch.shed,
                            rejected: batch.rejected,
                            blocked: batch.blocked.len(),
                        });
                        blocked.extend(batch.blocked);
                    }
                }
            },
            Task::Worker(w) => match workers[w].step() {
                WorkerStep::Frame(run) => {
                    frames += 1;
                    trace.push(TraceEvent::Frame {
                        tick,
                        shard: w,
                        offered: run.offered.len(),
                        delivered: run.delivered.len(),
                        dropped: run.dropped.len(),
                    });
                    let shard = workers[w].shard();
                    // The frame oracle replays against the shard's
                    // *installed* switch — after a live swap that is the
                    // replacement, not the scenario's original.
                    if let Some(v) =
                        check_frame(shard.switch(), shard.active_faults(), &run, w, tick)
                    {
                        violations.push(v);
                    }
                    if let Some(v) = check_capacity(shard, &run, tick) {
                        violations.push(v);
                    }
                    completions.extend(run.delivered);
                    let flag = core.shard_quarantined(w);
                    if flag != quarantine_flags[w] {
                        quarantine_flags[w] = flag;
                        trace.push(TraceEvent::Quarantine {
                            tick,
                            shard: w,
                            on: flag,
                        });
                    }
                }
                WorkerStep::Idle => {}
                WorkerStep::Done => {
                    worker_done[w] = true;
                    trace.push(TraceEvent::WorkerDone { tick, shard: w });
                }
            },
        }

        // The conservation oracle holds at *every* tick boundary: each
        // scheduled step is atomic, so the ledger can never be caught
        // mid-update.
        let ledger = conservation_ledger(&core, &workers);
        if !ledger.holds() {
            violations.push(Violation::Conservation { tick, ledger });
            break;
        }
    }

    let residual = core.in_flight();
    if residual != 0 && violations.is_empty() {
        violations.push(Violation::ResidualInFlight {
            in_flight: residual,
        });
    }
    // Lossless scenarios carry their delivery oracle with them: every
    // scripted message must arrive exactly once, bit-exact.
    if scenario.lossless && violations.is_empty() {
        if let Some(v) = crate::oracles::check_lossless(&expected_lossless, &completions) {
            violations.push(v);
        }
    }

    let mut shards = Vec::with_capacity(workers.len());
    for (i, worker) in workers.iter().enumerate() {
        let mut metrics = worker.shard().metrics.clone();
        core.fold_queue_counters(i, &mut metrics);
        shards.push(metrics);
    }
    SimRun {
        scenario: scenario.name.clone(),
        seed,
        trace,
        snapshot: FabricSnapshot {
            shards,
            in_flight: residual,
        },
        completions,
        violations,
        ticks: clock.now(),
        frames,
    }
}
