//! Graceful-drain properties: under every backpressure policy, closing
//! the queues after the offered load ends leaves `in_flight = 0` with the
//! conservation ledger balanced at every tick along the way — across 100
//! seeded interleavings per policy.
//!
//! `ExploreReport::passed()` covers the whole oracle set: per-frame
//! reference equivalence, tick-by-tick conservation, the capacity bound,
//! deadlock/tick-limit liveness, residual in-flight, and (for the
//! blocking policy) bit-exact lossless delivery against the synchronous
//! `Fabric` reference.

use simtest::scenarios::{batched_admission, batched_shed, drain_block, drain_reject, drain_shed};
use simtest::{analytic_floor, explore, shared_switch};

const SEEDS: std::ops::RangeInclusive<u64> = 1..=100;

#[test]
fn drain_under_blocking_backpressure_is_lossless() {
    let report = explore(&drain_block(), SEEDS);
    assert_eq!(report.runs, 100);
    assert!(
        report.passed(),
        "failing seeds: {:?}",
        report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
    );
    assert!(report.frames > 0, "drain ran no frames");
}

#[test]
fn drain_under_shed_oldest_conserves_every_message() {
    let report = explore(&drain_shed(), SEEDS);
    assert_eq!(report.runs, 100);
    assert!(
        report.passed(),
        "failing seeds: {:?}",
        report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
    );
}

#[test]
fn drain_under_reject_with_admission_cap_conserves_every_message() {
    let report = explore(&drain_reject(), SEEDS);
    assert_eq!(report.runs, 100);
    assert!(
        report.passed(),
        "failing seeds: {:?}",
        report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
    );
}

#[test]
fn batched_admission_is_lossless_across_interleavings() {
    let report = explore(&batched_admission(), SEEDS);
    assert_eq!(report.runs, 100);
    assert!(
        report.passed(),
        "failing seeds: {:?}",
        report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
    );
    // The scenario must actually exercise the batched path: whole-frame
    // submissions, and (with capacity-3 rings under blocking
    // backpressure) blocked-suffix hand-backs that later resume.
    let run = simtest::run_scenario(&batched_admission(), 1);
    assert!(run.passed(), "{:?}", run.violations);
    let batches = run
        .trace
        .iter()
        .filter(|e| matches!(e, simtest::TraceEvent::SubmitBatch { .. }))
        .count();
    assert!(batches > 0, "no frame-batched submissions in the trace");
    let handed_back: usize = run
        .trace
        .iter()
        .filter_map(|e| match e {
            simtest::TraceEvent::SubmitBatch { blocked, .. } => Some(*blocked),
            _ => None,
        })
        .sum();
    assert!(
        handed_back > 0,
        "tiny rings never handed back a blocked suffix"
    );
}

#[test]
fn batched_frames_through_shed_rings_conserve_every_message() {
    let report = explore(&batched_shed(), SEEDS);
    assert_eq!(report.runs, 100);
    assert!(
        report.passed(),
        "failing seeds: {:?}",
        report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
    );
    // Overlong frames against capacity-2 rings must actually shed.
    let run = simtest::run_scenario(&batched_shed(), 1);
    assert!(run.passed(), "{:?}", run.violations);
    assert!(
        run.snapshot.totals().shed > 0,
        "batched shed scenario never shed a message"
    );
}

#[test]
fn lossless_throughput_clears_the_analytic_capacity_floor() {
    // The binomial drop model caps per-frame delivery at ⌊α·m⌋; a
    // lossless run delivers *everything* each producer generated, so its
    // per-generation-frame delivery average must sit at or above that
    // floor. A fabric that silently stopped delivering would fall
    // through it.
    let scenario = drain_block();
    let floor = analytic_floor(&shared_switch(), 0.6);
    assert!(
        floor > 0.0 && floor <= 16.0 * 0.6,
        "floor {floor} implausible"
    );
    for seed in [1u64, 17, 99] {
        let run = simtest::run_scenario(&scenario, seed);
        assert!(run.passed(), "seed {seed}: {:?}", run.violations);
        let generation_frames = (scenario.plan.frames * scenario.producers) as f64;
        let per_frame = run.completions.len() as f64 / generation_frames;
        assert!(
            per_frame >= floor,
            "seed {seed}: delivered {per_frame:.2}/frame, analytic floor {floor:.2}"
        );
    }
}
