//! Quarantine hysteresis under a flapping fault schedule, across 100
//! seeded interleavings: every first-stage chip on *both* shards dies,
//! recovers, dies again, recovers again.
//!
//! What must hold on every seed:
//! * all oracles pass — in particular the deadlock oracle: even with
//!   every shard quarantined, placement falls back to the preferred
//!   shard instead of wedging, and parked producers always resume;
//! * both shards engage quarantine (the EWMA health tracker notices
//!   total delivery collapse);
//! * at least one shard recovers — its quarantine flag clears with
//!   hysteresis and it then *serves a delivering frame*, i.e. the
//!   recovered shard rejoined placement.
//!
//! Which shard recovers is interleaving-dependent: the first to clear
//! its flag absorbs steered traffic, which can starve the other's EWMA
//! of the frames it needs to climb. The aggregate assertions pin that
//! both orders actually occur across the seed set.

use simtest::scenarios::flap;
use simtest::{run_scenario, SimRun, TraceEvent};

/// Whether `shard`'s final quarantine transition is a recovery that is
/// followed by a frame that delivered traffic.
fn rejoined(run: &SimRun, shard: usize) -> bool {
    let last_off = run.trace.iter().rposition(
        |e| matches!(e, TraceEvent::Quarantine { shard: s, on: false, .. } if *s == shard),
    );
    last_off.is_some_and(|off| {
        run.trace[off..].iter().any(|e| {
            matches!(e, TraceEvent::Frame { shard: s, delivered, .. } if *s == shard && *delivered > 0)
        })
    })
}

#[test]
fn flapping_faults_quarantine_both_shards_and_never_deadlock() {
    let scenario = flap();
    let shards = scenario.config.shards;
    let mut rejoin_counts = vec![0u32; shards];
    for seed in 1..=100u64 {
        let run = run_scenario(&scenario, seed);
        assert!(run.passed(), "seed {seed}: {:?}", run.violations);
        for shard in 0..shards {
            assert!(
                run.trace.iter().any(|e| matches!(
                    e,
                    TraceEvent::Quarantine { shard: s, on: true, .. } if *s == shard
                )),
                "seed {seed}: shard {shard} never quarantined under a dead first stage"
            );
        }
        let rejoins: Vec<bool> = (0..shards).map(|s| rejoined(&run, s)).collect();
        assert!(
            rejoins.iter().any(|&r| r),
            "seed {seed}: no shard ever recovered and rejoined placement"
        );
        for (shard, &r) in rejoins.iter().enumerate() {
            if r {
                rejoin_counts[shard] += 1;
            }
        }
    }
    // Recovery order is seed-dependent, but each shard must demonstrably
    // rejoin placement in the overwhelming majority of interleavings —
    // a shard that *never* recovers means hysteresis is wedged.
    for (shard, &count) in rejoin_counts.iter().enumerate() {
        assert!(
            count >= 90,
            "shard {shard} rejoined placement in only {count}/100 interleavings"
        );
    }
}
