//! Trace-driven scenarios under the full oracle set: replay coverage
//! for the `trace-replay` and `adversarial-trace` catalogue entries,
//! plus shrinker support for the trace dimension (truncate the suffix
//! before touching the schedule).

use simtest::{
    adversarial_trace, explore, lossless_reference, run_scenario, shrink, trace_replay, SimRun,
};

#[test]
fn trace_replay_passes_every_oracle_across_seeds() {
    let scenario = trace_replay();
    assert!(scenario.lossless);
    let report = explore(&scenario, 0..24);
    assert!(
        report.passed(),
        "trace-replay failures: {:?}",
        report.failures
    );
    assert!(report.frames > 0, "the trace produced no routing frames");
}

#[test]
fn adversarial_trace_passes_every_oracle_across_seeds() {
    let scenario = adversarial_trace();
    let records = scenario.trace.as_ref().expect("trace-driven").records();
    assert!(records > 0, "the attack found no pattern to lower");
    let report = explore(&scenario, 0..24);
    assert!(
        report.passed(),
        "adversarial-trace failures: {:?}",
        report.failures
    );
}

#[test]
fn trace_replay_is_bit_identical_and_lossless() {
    let scenario = trace_replay();
    let reference = lossless_reference(&scenario);
    let a = run_scenario(&scenario, 13);
    let b = run_scenario(&scenario, 13);
    assert_eq!(a.trace, b.trace, "trace replay diverged under seed 13");
    assert_eq!(a.completions, b.completions);
    // Every trace record's message arrives with the payload the trace
    // codec regenerates for its id.
    assert_eq!(a.completions.len(), reference.len());
    for delivery in &a.completions {
        assert_eq!(
            reference.get(&delivery.message.id).map(|p| p.as_slice()),
            Some(delivery.message.payload.as_ref()),
            "payload mismatch for id {}",
            delivery.message.id
        );
    }
}

/// The shrinker reduces the trace dimension first: against a synthetic
/// predicate that only needs a short prefix, the minimal reproducer
/// truncates the trace suffix and converges to a local minimum.
#[test]
fn shrinker_truncates_the_trace_suffix() {
    let scenario = trace_replay();
    let original = scenario.trace.as_ref().unwrap().records();
    let fails = |run: &SimRun| run.frames >= 2;
    assert!(fails(&run_scenario(&scenario, 5)), "predicate must fire");
    let minimal = shrink(&scenario, 5, &fails);
    assert!(fails(&run_scenario(&minimal, 5)), "shrunk run still fails");
    let shrunk = minimal.trace.as_ref().unwrap().records();
    assert!(
        shrunk < original,
        "trace not truncated: {shrunk} of {original} records remain"
    );
    // Local minimality in the trace dimension: halving again loses it.
    let mut smaller = minimal.clone();
    smaller.trace.as_mut().unwrap().limit = shrunk / 2;
    assert!(!fails(&run_scenario(&smaller, 5)));
    // The truncated workload replays exactly like any other scenario.
    let a = run_scenario(&minimal, 5);
    let b = run_scenario(&minimal, 5);
    assert_eq!(a.trace, b.trace, "shrunk trace scenario must replay");
}
