//! The tree executor under its oracles: determinism, stall-window
//! backpressure propagation, quarantine steering, and catalogue-wide
//! conservation across seeds.

use simtest::{
    run_tree_scenario, tier_spine_quarantine_mid_drain, tier_spine_stall, tree_catalogue,
};

/// Same scenario, same seed ⇒ bit-identical run: snapshot, completions,
/// tick count, frame count, and the stall counter all compare equal.
#[test]
fn tree_runs_are_deterministic() {
    for scenario in tree_catalogue() {
        let a = run_tree_scenario(&scenario, 17);
        let b = run_tree_scenario(&scenario, 17);
        assert_eq!(a, b, "{} replay diverged", scenario.name);
    }
}

/// The load-bearing assertion of the stall scenario: while the spine is
/// withheld from the scheduler, credit exhaustion must climb the tree —
/// uplink holds starve leaf frames, leaf rings fill, and external
/// producers get parked (or shed/rejected) *at leaf admission*. Every
/// interleaving must both pass every oracle (the stall ends, the drain
/// is lossless) and witness that admission-level backpressure.
#[test]
fn spine_stall_propagates_backpressure_to_leaf_admission() {
    let scenario = tier_spine_stall();
    for seed in 0..8u64 {
        let run = run_tree_scenario(&scenario, seed);
        assert!(run.passed(), "seed {seed}: {:?}", run.violations);
        assert!(
            run.stall_backpressure > 0,
            "seed {seed}: spine stall never reached leaf admission \
             (ticks {}, frames {})",
            run.ticks,
            run.frames
        );
        // The stall only delays delivery; blocking backpressure plus
        // unlimited retries keep the run lossless (checked by the
        // lossless oracle inside the run, re-asserted here on the
        // ledger).
        let ledger = run.snapshot.ledger();
        assert_eq!(ledger.delivered, ledger.offered_external, "seed {seed}");
    }
}

/// Killing one spine fabric's first sorting stage mid-run must flip its
/// quarantine flag, and the finite retry budget must surface the dead
/// spine's stranded messages as `retry_dropped` — while conservation
/// holds at every tick (checked inside the run).
#[test]
fn spine_quarantine_engages_and_sheds_through_the_retry_budget() {
    let scenario = tier_spine_quarantine_mid_drain();
    let mut quarantined_seeds = 0u64;
    for seed in 0..8u64 {
        let run = run_tree_scenario(&scenario, seed);
        assert!(run.passed(), "seed {seed}: {:?}", run.violations);
        quarantined_seeds += u64::from(run.quarantines > 0);
    }
    assert!(
        quarantined_seeds > 0,
        "no interleaving ever quarantined the dead spine"
    );
}

/// Every catalogue scenario passes every oracle over a spread of seeds
/// (the CI smoke widens this to 32 per scenario).
#[test]
fn tree_catalogue_passes_oracles_across_seeds() {
    for scenario in tree_catalogue() {
        for seed in 0..4u64 {
            let run = run_tree_scenario(&scenario, seed);
            assert!(
                run.passed(),
                "{} seed {seed}: {:?}",
                scenario.name,
                run.violations
            );
            assert_eq!(
                run.completions.len() as u64,
                run.snapshot.ledger().delivered,
                "{} seed {seed}",
                scenario.name
            );
        }
    }
}
