//! Mid-run fault injection under seeded interleavings: chips die, change
//! failure mode, and get repaired while producers are still submitting
//! and while the drain is underway. Every frame routed through a faulted
//! shard is checked against the reference simulator *with the same fault
//! set*, and conservation must absorb every retry-exhausted drop.

use simtest::scenarios::{campaign, midrun_fault};
use simtest::{explore, run_scenario, TraceEvent};

#[test]
fn midrun_faults_hold_all_oracles_across_100_interleavings() {
    let report = explore(&midrun_fault(), 1..=100);
    assert_eq!(report.runs, 100);
    assert!(
        report.passed(),
        "failing seeds: {:?}",
        report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
    );
}

#[test]
fn fault_campaign_holds_all_oracles_across_64_interleavings() {
    let scenario = campaign();
    assert!(
        !scenario.faults.is_empty(),
        "the seeded campaign generated no fault events — nothing tested"
    );
    let report = explore(&scenario, 1..=64);
    assert_eq!(report.runs, 64);
    assert!(
        report.passed(),
        "failing seeds: {:?}",
        report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
    );
}

#[test]
fn fault_events_actually_land_mid_run() {
    // Guard against a schedule that silently fires before any traffic or
    // after the drain: the injection, the degraded frames, and the
    // post-repair recovery must all be visible in one trace.
    let run = run_scenario(&midrun_fault(), 7);
    assert!(run.passed(), "{:?}", run.violations);
    let inject = run
        .trace
        .iter()
        .position(|e| matches!(e, TraceEvent::Fault { faults, .. } if *faults > 0))
        .expect("fault injection in trace");
    let repair = run
        .trace
        .iter()
        .rposition(|e| matches!(e, TraceEvent::Fault { faults: 0, .. }))
        .expect("repair in trace");
    assert!(inject < repair, "repair must follow injection");
    let frames_before_inject = run.trace[..inject]
        .iter()
        .any(|e| matches!(e, TraceEvent::Frame { .. }));
    let frames_after_repair = run.trace[repair..]
        .iter()
        .any(|e| matches!(e, TraceEvent::Frame { .. }));
    assert!(
        frames_before_inject && frames_after_repair,
        "faults must land mid-run, not before traffic or after drain"
    );
}
