//! Elastic-control-plane properties: live resize, switch swap, and
//! SLO-driven admission under 100 seeded interleavings per scenario, all
//! checked by the full oracle set (per-frame reference equivalence
//! against whichever switch the shard had installed, tick-by-tick
//! conservation across every epoch boundary, capacity, liveness,
//! residual in-flight, and — for blocking scenarios — bit-exact lossless
//! delivery against the synchronous `Fabric` reference).
//!
//! The property test at the bottom goes further: arbitrary seeded
//! control-plane schedules (add / remove / swap / retarget) under every
//! backpressure policy, with conservation and liveness holding for each.

use concentrator::verify::SplitMix64;
use fabric::Backpressure;
use simtest::{
    explore, resize_under_drain, run_scenario, scale_down_while_quarantined, slo_shed_burst,
    swap_during_campaign, swap_target_switch, ReconfigAction, Scenario, SimReconfigEvent,
    TraceEvent,
};

const SEEDS: std::ops::RangeInclusive<u64> = 1..=100;

fn assert_all_pass(report: &simtest::ExploreReport) {
    assert_eq!(report.runs, 100);
    assert!(
        report.passed(),
        "failing seeds: {:?}",
        report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
    );
    assert!(report.frames > 0, "scenario ran no frames");
}

#[test]
fn resize_under_drain_is_lossless_across_interleavings() {
    assert_all_pass(&explore(&resize_under_drain(), SEEDS));
    // The schedule must actually exercise the elastic path: every add
    // and remove lands (the pool is never exhausted, no remove targets
    // the last active lane), and each one bumps the epoch.
    let run = run_scenario(&resize_under_drain(), 8);
    assert!(run.passed(), "{:?}", run.violations);
    let adds = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::ShardAdded { .. }))
        .count();
    let removes = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::ShardRemoved { .. }))
        .count();
    assert_eq!(adds, 3, "all three grow events land");
    assert_eq!(removes, 2, "both shrink events land");
    // Zero loss by construction: messages parked on or queued behind a
    // removed lane re-place under the new epoch; the lossless oracle in
    // the explore pass above checked delivery bit-for-bit.
    assert_eq!(run.snapshot.in_flight, 0);
}

#[test]
fn swap_during_campaign_reroutes_epoch_plus_one_frames() {
    assert_all_pass(&explore(&swap_during_campaign(), SEEDS));
    let run = run_scenario(&swap_during_campaign(), 9);
    assert!(run.passed(), "{:?}", run.violations);
    let swap_tick = run
        .trace
        .iter()
        .find_map(|e| match e {
            TraceEvent::SwitchSwapped { tick, lanes } => {
                assert_eq!(*lanes, 2, "both live lanes are signalled");
                Some(*tick)
            }
            _ => None,
        })
        .expect("the swap fires");
    // Epoch-(e+1) traffic completes on the replacement: frames keep
    // running after the handoff, and the per-frame oracle (inside
    // passed()) replayed them against the installed 64-to-16 switch.
    let frames_after = run
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Frame { tick, .. } if *tick > swap_tick))
        .count();
    assert!(
        frames_after > 0,
        "no frames ran after the swap at {swap_tick}"
    );
}

#[test]
fn scale_down_removes_the_quarantined_shard_cleanly() {
    assert_all_pass(&explore(&scale_down_while_quarantined(), SEEDS));
    let run = run_scenario(&scale_down_while_quarantined(), 10);
    assert!(run.passed(), "{:?}", run.violations);
    let quarantined_at = run
        .trace
        .iter()
        .find_map(|e| match e {
            TraceEvent::Quarantine {
                tick,
                shard: 1,
                on: true,
            } => Some(*tick),
            _ => None,
        })
        .expect("the dead shard quarantines");
    let removed_at = run
        .trace
        .iter()
        .find_map(|e| match e {
            TraceEvent::ShardRemoved { tick, shard: 1 } => Some(*tick),
            _ => None,
        })
        .expect("the sick shard is removed");
    assert!(
        quarantined_at < removed_at,
        "removal races quarantine the right way round"
    );
    assert_eq!(run.snapshot.in_flight, 0, "the drain completes");
}

#[test]
fn slo_controller_holds_the_limit_inside_the_policy_band() {
    assert_all_pass(&explore(&slo_shed_burst(), SEEDS));
    let run = run_scenario(&slo_shed_burst(), 12);
    assert!(run.passed(), "{:?}", run.violations);
    let limits: Vec<usize> = run
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SloAdjust { limit, .. } => Some(*limit),
            _ => None,
        })
        .collect();
    assert!(!limits.is_empty(), "the controller never adjusted");
    assert!(
        limits.iter().all(|&l| (4..=64).contains(&l)),
        "limit left the policy band: {limits:?}"
    );
    // The burst overloads two capacity-8 rings under Reject: shedding
    // (admission cap or full ring) absorbs the overload, and the ledger
    // still balances — conservation was checked every tick above.
    assert!(run.snapshot.totals().rejected > 0, "nothing was shed");
}

#[test]
fn reconfig_runs_replay_bit_for_bit() {
    for scenario in simtest::reconfig_catalogue() {
        let a = run_scenario(&scenario, 42);
        let b = run_scenario(&scenario, 42);
        assert_eq!(a.trace, b.trace, "{} diverged under seed 42", scenario.name);
    }
}

/// An arbitrary seeded control-plane schedule: 3–6 events drawn from
/// add / remove / swap (plus admission retargets when the scenario is
/// not lossless), at strictly increasing ticks. Operations the control
/// plane refuses are skipped silently, so every draw is a valid
/// schedule.
fn random_reconfig_scenario(seed: u64, backpressure: Backpressure) -> Scenario {
    let mut s = resize_under_drain();
    s.name = format!("random-reconfig-{seed}");
    s.config.backpressure = backpressure;
    s.lossless = backpressure == Backpressure::Block;
    let mut rng = SplitMix64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let events = 3 + (rng.next_u64() % 4) as usize;
    let mut tick = 0u64;
    s.reconfig = (0..events)
        .map(|_| {
            tick += 3 + rng.next_u64() % 18;
            let choices = if s.lossless { 3 } else { 4 };
            let action = match rng.next_u64() % choices {
                0 => ReconfigAction::AddShard,
                1 => ReconfigAction::RemoveShard {
                    shard: (rng.next_u64() % s.config.max_shards as u64) as usize,
                },
                2 => ReconfigAction::SwapSwitch {
                    switch: swap_target_switch(),
                },
                // Admission retargets reject messages, so they are only
                // drawn for scenarios without the lossless oracle.
                _ => ReconfigAction::SetAdmissionLimit {
                    limit: match rng.next_u64() % 3 {
                        0 => None,
                        _ => Some(4 + (rng.next_u64() % 61) as usize),
                    },
                },
            };
            SimReconfigEvent {
                at_tick: tick,
                action,
            }
        })
        .collect();
    s
}

/// Conservation + liveness over arbitrary reconfig schedules: 100 seeds
/// x 3 backpressure policies, each run through the full oracle set (and
/// the lossless delivery oracle under blocking backpressure — elastic
/// resizing loses nothing no matter the schedule).
#[test]
fn arbitrary_reconfig_schedules_conserve_under_every_policy() {
    for policy in [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ] {
        for seed in 1..=100u64 {
            let scenario = random_reconfig_scenario(seed, policy);
            let report = explore(&scenario, [seed]);
            assert!(
                report.passed(),
                "{policy:?} seed {seed} failed: {:?}",
                report.failures[0].violations
            );
        }
    }
}
