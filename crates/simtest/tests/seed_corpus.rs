//! Replay the committed regression-seed corpus (`seeds.txt`): every
//! `<scenario> <seed>` line is one interleaving that must keep passing
//! every oracle. Seeds that once exposed a bug are appended to the
//! corpus when the bug is fixed, so the exact schedule stays covered.

use std::collections::{HashMap, HashSet};

use simtest::{
    by_name, catalogue, check_run, lossless_reference, parse_seed_corpus, run_tree_scenario,
    tree_by_name, tree_catalogue,
};

const CORPUS: &str = include_str!("../seeds.txt");

#[test]
fn corpus_covers_every_scenario() {
    let named: HashSet<String> = parse_seed_corpus(CORPUS)
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    for scenario in catalogue() {
        assert!(
            named.contains(&scenario.name),
            "seeds.txt has no regression seed for scenario `{}`",
            scenario.name
        );
    }
    for scenario in tree_catalogue() {
        assert!(
            named.contains(&scenario.name),
            "seeds.txt has no regression seed for tree scenario `{}`",
            scenario.name
        );
    }
}

#[test]
fn every_corpus_seed_passes_every_oracle() {
    let mut references: HashMap<String, HashMap<u64, Vec<u8>>> = HashMap::new();
    for (name, seed) in parse_seed_corpus(CORPUS) {
        let Some(scenario) = by_name(&name) else {
            // Tree scenarios replay through the tree executor; every
            // oracle (conservation, per-frame reference, capacity,
            // lossless where declared) runs inside it.
            let tree = tree_by_name(&name)
                .unwrap_or_else(|| panic!("seeds.txt names unknown scenario `{name}`"));
            let run = run_tree_scenario(&tree, seed);
            assert!(
                run.passed(),
                "tree regression seed regressed — replay with \
                 `cli sim --scenario {name} --seed {seed}`: {:?}",
                run.violations
            );
            continue;
        };
        let reference = scenario.lossless.then(|| {
            references
                .entry(name.clone())
                .or_insert_with(|| lossless_reference(&scenario))
                .clone()
        });
        let run = check_run(&scenario, seed, reference.as_ref());
        assert!(
            run.passed(),
            "regression seed regressed — replay with \
             `cli sim --scenario {name} --seed {seed} --trace`: {:?}",
            run.violations
        );
    }
}
