//! The replay contract: a run is a pure function of `(scenario, seed)`.
//!
//! Every reported failure names a seed, and `cli sim --scenario <name>
//! --seed <s> --trace` must reproduce the identical run. These tests pin
//! that property bit-for-bit: same seed → identical trace, identical
//! deliveries (ids, outputs, payload bytes, wait times), identical
//! metrics; different seeds → different interleavings.

use simtest::{catalogue, run_scenario};

#[test]
fn same_seed_replays_bit_for_bit_across_the_catalogue() {
    for scenario in catalogue() {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let first = run_scenario(&scenario, seed);
            let second = run_scenario(&scenario, seed);
            assert_eq!(
                first.trace, second.trace,
                "{} seed {seed}: trace diverged between identical runs",
                scenario.name
            );
            assert_eq!(
                first.completions, second.completions,
                "{} seed {seed}: deliveries diverged",
                scenario.name
            );
            assert_eq!(first.ticks, second.ticks, "{} seed {seed}", scenario.name);
            assert_eq!(first.frames, second.frames, "{} seed {seed}", scenario.name);
            assert_eq!(
                format!("{:?}", first.snapshot),
                format!("{:?}", second.snapshot),
                "{} seed {seed}: metrics diverged",
                scenario.name
            );
            assert_eq!(
                first.violations, second.violations,
                "{} seed {seed}: oracle verdicts diverged",
                scenario.name
            );
        }
    }
}

#[test]
fn different_seeds_explore_different_interleavings() {
    // Not a universal truth (two seeds *could* draw the same schedule),
    // but for these fixed scenarios and seeds the traces must differ —
    // if they ever collapse, the scheduler has stopped consuming the
    // seed and the whole harness is exploring one interleaving.
    for scenario in catalogue() {
        let a = run_scenario(&scenario, 1);
        let b = run_scenario(&scenario, 2);
        assert_ne!(
            a.trace, b.trace,
            "{}: seeds 1 and 2 produced the same interleaving",
            scenario.name
        );
    }
}
