//! Comparator networks and the 0–1 principle.
//!
//! Every sorting phase in this crate (row sorts, column sorts, the full
//! Revsort/Columnsort/Shearsort pipelines) is *oblivious*: the sequence of
//! compare-exchange operations never depends on the data. Such a
//! computation is a **comparator network**, and Knuth's 0–1 principle
//! applies: a network that sorts every 0/1 input sorts every input.
//!
//! That principle is the license behind this library's verification
//! strategy — the switches are tested exhaustively on valid *bits* and the
//! conclusion transfers to arbitrary keys. This module makes the license
//! explicit: it can express the mesh pipelines as flat comparator
//! networks, check 0/1-sortedness exhaustively, and certify equivalence
//! with the `Grid` implementations.

use serde::{Deserialize, Serialize};

use crate::grid::SortOrder;

/// One compare-exchange: after application, position `hi_to` holds the
/// larger of the two values under the network's fixed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Comparator {
    /// Position receiving the element that sorts *first*.
    pub first: usize,
    /// Position receiving the element that sorts *second*.
    pub second: usize,
}

/// An oblivious sorting (or partial-sorting) computation on `width` wires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComparatorNetwork {
    width: usize,
    comparators: Vec<Comparator>,
}

impl ComparatorNetwork {
    /// An empty network on `width` wires.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "network needs at least one wire");
        ComparatorNetwork {
            width,
            comparators: Vec::new(),
        }
    }

    /// Number of wires.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of comparators.
    pub fn size(&self) -> usize {
        self.comparators.len()
    }

    /// The comparator list in application order.
    pub fn comparators(&self) -> &[Comparator] {
        &self.comparators
    }

    /// Append a compare-exchange.
    ///
    /// # Panics
    /// If either index is out of range or they coincide.
    pub fn push(&mut self, first: usize, second: usize) {
        assert!(
            first < self.width && second < self.width,
            "comparator out of range"
        );
        assert_ne!(first, second, "degenerate comparator");
        self.comparators.push(Comparator { first, second });
    }

    /// Append another network's comparators (same width).
    pub fn extend(&mut self, other: &ComparatorNetwork) {
        assert_eq!(self.width, other.width, "network width mismatch");
        self.comparators.extend_from_slice(&other.comparators);
    }

    /// Apply the network to a value vector in place, ordering each
    /// comparator's pair by `order`.
    pub fn apply<T: Ord>(&self, values: &mut [T], order: SortOrder) {
        assert_eq!(values.len(), self.width, "value vector width mismatch");
        for c in &self.comparators {
            let out_of_order = match order {
                SortOrder::Ascending => values[c.first] > values[c.second],
                SortOrder::Descending => values[c.first] < values[c.second],
            };
            if out_of_order {
                values.swap(c.first, c.second);
            }
        }
    }

    /// Exhaustively check the 0–1 principle's hypothesis: the network
    /// sorts every 0/1 input (into `order` read left to right). Only for
    /// widths ≤ ~24.
    pub fn sorts_all_bit_inputs(&self, order: SortOrder) -> bool {
        assert!(
            self.width <= 24,
            "exhaustive 0/1 check infeasible at this width"
        );
        for pattern in 0u64..(1u64 << self.width) {
            let mut bits: Vec<bool> = (0..self.width).map(|i| (pattern >> i) & 1 == 1).collect();
            self.apply(&mut bits, order);
            if !order.is_sorted(&bits) {
                return false;
            }
        }
        true
    }

    /// The number of parallel layers a greedy schedule needs (comparators
    /// touching disjoint wires share a layer) — the network's depth.
    pub fn depth(&self) -> usize {
        let mut busy_until = vec![0usize; self.width];
        let mut depth = 0usize;
        for c in &self.comparators {
            let layer = busy_until[c.first].max(busy_until[c.second]) + 1;
            busy_until[c.first] = layer;
            busy_until[c.second] = layer;
            depth = depth.max(layer);
        }
        depth
    }

    /// Insertion-style full sorter on a contiguous wire range (the
    /// "fully sort the column" primitive as a network): odd–even
    /// transposition over the range, `len` passes.
    pub fn odd_even_transposition(width: usize, range: std::ops::Range<usize>) -> Self {
        let mut network = ComparatorNetwork::new(width);
        let len = range.len();
        for pass in 0..len {
            let mut i = range.start + (pass % 2);
            while i + 1 < range.start + len {
                network.push(i, i + 1);
                i += 2;
            }
        }
        network
    }

    /// Batcher's odd–even mergesort on a contiguous power-of-two range:
    /// `O(len lg² len)` comparators, depth `O(lg² len)`.
    pub fn batcher(width: usize, range: std::ops::Range<usize>) -> Self {
        let len = range.len();
        assert!(len.is_power_of_two(), "Batcher needs a power-of-two range");
        let mut network = ComparatorNetwork::new(width);
        batcher_sort(&mut network, range.start, len);
        network
    }
}

impl ComparatorNetwork {
    /// Full sorter on an arithmetic progression of wires
    /// (`start, start+stride, …`, `count` wires) — the "sort one column of
    /// the mesh" primitive when the mesh is stored row-major.
    pub fn strided_sorter(width: usize, start: usize, stride: usize, count: usize) -> Self {
        assert!(stride > 0 && count > 0);
        assert!(
            start + (count - 1) * stride < width,
            "progression out of range"
        );
        let mut network = ComparatorNetwork::new(width);
        for pass in 0..count {
            let mut k = pass % 2;
            while k + 1 < count {
                network.push(start + k * stride, start + (k + 1) * stride);
                k += 2;
            }
        }
        network
    }
}

/// The Columnsort steps-1–3 pipeline as a flat comparator network over the
/// `r·s` wires, plus the read order that accounts for the step-2 wiring
/// (the network never physically moves elements; the permutation is
/// conjugated into wire indices).
///
/// `apply` the network, then read wire `read_order[q]` as logical
/// (row-major) position `q`: the result equals
/// [`crate::columnsort_steps123`] on the same input.
pub fn columnsort_steps123_network(rows: usize, cols: usize) -> (ComparatorNetwork, Vec<usize>) {
    let n = rows * cols;
    let mut network = ComparatorNetwork::new(n);
    // Step 1: sort each column; matrix is row-major, so column c is the
    // progression c, c+s, c+2s, ...
    for c in 0..cols {
        network.extend(&ComparatorNetwork::strided_sorter(n, c, cols, rows));
    }
    // Step 2: the CM→RM wiring, conjugated: logical position q is now on
    // wire inv[q] where perm moves i → perm[i].
    let perm = crate::perm::cm_to_rm_permutation(rows, cols);
    let inv = crate::perm::invert(&perm);
    // Step 3: sort the columns of the post-wiring matrix, addressing
    // physical wires through the conjugation.
    for c in 0..cols {
        for pass in 0..rows {
            let mut k = pass % 2;
            while k + 1 < rows {
                let logical_a = (k) * cols + c;
                let logical_b = (k + 1) * cols + c;
                network.push(inv[logical_a], inv[logical_b]);
                k += 2;
            }
        }
    }
    (network, inv)
}

fn batcher_sort(network: &mut ComparatorNetwork, base: usize, len: usize) {
    if len <= 1 {
        return;
    }
    let half = len / 2;
    batcher_sort(network, base, half);
    batcher_sort(network, base + half, half);
    batcher_merge(network, base, len, 1);
}

fn batcher_merge(network: &mut ComparatorNetwork, base: usize, len: usize, stride: usize) {
    let step = stride * 2;
    if step < len {
        batcher_merge(network, base, len, step);
        batcher_merge(network, base + stride, len, step);
        let mut i = base + stride;
        while i + stride < base + len {
            network.push(i, i + stride);
            i += step;
        }
    } else {
        network.push(base, base + stride);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_even_transposition_sorts_bits_and_integers() {
        for width in [2usize, 5, 8] {
            let network = ComparatorNetwork::odd_even_transposition(width, 0..width);
            assert!(network.sorts_all_bit_inputs(SortOrder::Descending));
            assert!(network.sorts_all_bit_inputs(SortOrder::Ascending));
            // 0-1 principle in action: integers sort too.
            let mut values: Vec<u32> = (0..width as u32).map(|i| (i * 7) % 5).collect();
            let mut expected = values.clone();
            expected.sort_unstable();
            network.apply(&mut values, SortOrder::Ascending);
            assert_eq!(values, expected);
        }
    }

    #[test]
    fn batcher_sorts_with_logsquared_depth() {
        for width in [2usize, 4, 8, 16] {
            let network = ComparatorNetwork::batcher(width, 0..width);
            assert!(network.sorts_all_bit_inputs(SortOrder::Descending));
            let lg = width.trailing_zeros() as usize;
            assert_eq!(network.depth(), lg * (lg + 1) / 2, "width {width}");
            // Batcher beats odd-even transposition on depth beyond tiny
            // widths.
            let oet = ComparatorNetwork::odd_even_transposition(width, 0..width);
            if width >= 8 {
                assert!(network.depth() < oet.depth());
            }
        }
    }

    #[test]
    fn networks_on_subranges_leave_other_wires_alone() {
        let network = ComparatorNetwork::batcher(8, 2..6);
        let mut values = vec![9u32, 8, 4, 3, 2, 1, 7, 6];
        network.apply(&mut values, SortOrder::Ascending);
        assert_eq!(values, vec![9, 8, 1, 2, 3, 4, 7, 6]);
    }

    #[test]
    fn a_non_sorting_network_is_caught() {
        let mut network = ComparatorNetwork::new(3);
        network.push(0, 1); // never compares wire 2
        assert!(!network.sorts_all_bit_inputs(SortOrder::Ascending));
    }

    #[test]
    fn depth_schedules_disjoint_pairs_together() {
        let mut network = ComparatorNetwork::new(4);
        network.push(0, 1);
        network.push(2, 3); // disjoint: same layer
        network.push(1, 2); // depends on both: next layer
        assert_eq!(network.depth(), 2);
        assert_eq!(network.size(), 3);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_self_comparison() {
        ComparatorNetwork::new(2).push(1, 1);
    }

    #[test]
    fn strided_sorter_sorts_its_progression_only() {
        let network = ComparatorNetwork::strided_sorter(9, 1, 3, 3); // wires 1,4,7
        let mut values = vec![0u32, 9, 0, 0, 5, 0, 0, 7, 0];
        network.apply(&mut values, SortOrder::Ascending);
        assert_eq!(values, vec![0, 5, 0, 0, 7, 0, 0, 9, 0]);
    }

    #[test]
    fn columnsort_network_matches_grid_pipeline_exhaustively() {
        use crate::columnsort::columnsort_steps123;
        use crate::grid::Grid;
        let (rows, cols) = (4usize, 4usize);
        let n = rows * cols;
        let (network, read_order) = columnsort_steps123_network(rows, cols);
        for pattern in (0u64..(1 << 16)).step_by(7) {
            let bits: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let mut wires = bits.clone();
            network.apply(&mut wires, SortOrder::Descending);
            let via_network: Vec<bool> = (0..n).map(|q| wires[read_order[q]]).collect();
            let mut grid = Grid::from_row_major(rows, cols, bits);
            columnsort_steps123(&mut grid, SortOrder::Descending);
            assert_eq!(&via_network, grid.as_row_major(), "pattern {pattern:#x}");
        }
    }

    #[test]
    fn columnsort_network_size_and_depth_accounting() {
        let (network, _) = columnsort_steps123_network(8, 4);
        // Two rounds of 4 column sorts, each ~r²/2·... just pin the
        // concrete numbers as a regression reference.
        assert!(network.size() > 0);
        assert!(network.depth() >= 8, "two full 8-element sorts in sequence");
    }
}
