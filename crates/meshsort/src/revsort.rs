//! Revsort (Schnorr–Shamir) on a √n×√n mesh: Algorithm 1 of the paper and
//! the full sort of §6.

use serde::{Deserialize, Serialize};

use crate::grid::{Grid, SortOrder};
use crate::metrics::dirty_row_band;
use crate::perm::rev_bits;
use crate::shearsort::{shearsort, ShearsortSchedule};

/// Outcome of a (partial) Revsort run, used by the experiment harness to
/// check the dirty-row bounds of Theorem 3 and §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevsortReport {
    /// Clean all-1 rows on top after the run.
    pub clean_top: usize,
    /// Dirty rows in the middle.
    pub dirty_rows: usize,
    /// Clean all-0 rows at the bottom.
    pub clean_bottom: usize,
}

fn assert_square_pow2<T>(grid: &Grid<T>) {
    assert_eq!(grid.rows(), grid.cols(), "Revsort requires a square mesh");
    assert!(grid.rows().is_power_of_two(), "Revsort requires √n = 2^q");
}

/// Steps 1–3 of Algorithm 1 — one "iteration" of the Revsort loop:
/// sort columns, sort rows, rotate row `i` right by `rev(i)`.
///
/// All sorts run in direction `order`; the paper's valid-bit convention is
/// [`SortOrder::Descending`] (1s to the top / left).
pub fn revsort_steps123<T: Ord + Clone>(grid: &mut Grid<T>, order: SortOrder) {
    assert_square_pow2(grid);
    let side = grid.rows();
    let q = side.trailing_zeros();
    grid.sort_columns(order);
    grid.sort_rows(order);
    for i in 0..side {
        grid.rotate_row_right(i, rev_bits(i, q));
    }
}

/// Algorithm 1: the first 1½ Revsort iterations (steps 1–3 plus a final
/// column sort). This is what the three-stage switch of §4 simulates.
pub fn revsort_algorithm1<T: Ord + Clone>(grid: &mut Grid<T>, order: SortOrder) {
    revsort_steps123(grid, order);
    grid.sort_columns(order);
}

/// Full Revsort-based sort of a 0/1 grid per §6: repeat steps 1–3
/// ⌈lg lg √n⌉ times (leaving at most eight dirty rows), then finish with
/// Shearsort. Returns the schedule actually used so circuit constructions
/// can mirror it exactly.
///
/// The result is fully sorted in row-major order, direction `order`.
pub fn revsort_full<T: Ord + Clone>(grid: &mut Grid<T>, order: SortOrder) -> ShearsortSchedule {
    assert_square_pow2(grid);
    for _ in 0..revsort_repetitions(grid.rows()) {
        revsort_steps123(grid, order);
    }
    let schedule = ShearsortSchedule::paper_finish();
    shearsort(grid, order, schedule);
    schedule
}

/// Number of steps-1–3 repetitions §6 prescribes: ⌈lg lg √n⌉ (at least 1).
pub fn revsort_repetitions(side: usize) -> usize {
    assert!(side.is_power_of_two() && side >= 2);
    let lg_side = side.trailing_zeros(); // lg √n
    let mut reps = 0usize;
    let mut v = lg_side;
    while v > 1 {
        // ceil(lg v)
        v = v.div_ceil(2);
        reps += 1;
    }
    reps.max(1)
}

/// Run Algorithm 1 on a 0/1 grid and report the clean/dirty row structure.
pub fn algorithm1_report(grid: &mut Grid<bool>) -> RevsortReport {
    revsort_algorithm1(grid, SortOrder::Descending);
    let (clean_top, dirty_rows, clean_bottom) = dirty_row_band(grid);
    RevsortReport {
        clean_top,
        dirty_rows,
        clean_bottom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bit_grid_from_u64(side: usize, mut pattern: u64) -> Grid<bool> {
        let mut data = Vec::with_capacity(side * side);
        for _ in 0..side * side {
            data.push(pattern & 1 == 1);
            pattern >>= 1;
        }
        Grid::from_row_major(side, side, data)
    }

    #[test]
    fn algorithm1_exhaustive_4x4_dirty_row_bound() {
        // Theorem 3's ingredient: at most 2⌈n^{1/4}⌉ − 1 dirty rows.
        // n = 16, bound = 2*2 - 1 = 3.
        let side = 4;
        let bound = 2 * ((side * side) as f64).powf(0.25).ceil() as usize - 1;
        for pattern in 0u64..(1 << 16) {
            let mut g = bit_grid_from_u64(side, pattern);
            let report = algorithm1_report(&mut g);
            assert!(
                report.dirty_rows <= bound,
                "pattern {pattern:#06x}: {} dirty rows > bound {bound}",
                report.dirty_rows
            );
        }
    }

    #[test]
    fn algorithm1_preserves_multiset() {
        let mut g = bit_grid_from_u64(4, 0xDEAD);
        let ones_before = g.count_ones();
        revsort_algorithm1(&mut g, SortOrder::Descending);
        assert_eq!(g.count_ones(), ones_before);
    }

    #[test]
    fn revsort_full_sorts_bits_exhaustively_4x4() {
        for pattern in 0u64..(1 << 16) {
            let mut g = bit_grid_from_u64(4, pattern);
            revsort_full(&mut g, SortOrder::Descending);
            assert!(
                SortOrder::Descending.is_sorted(g.as_row_major()),
                "pattern {pattern:#06x} not fully sorted:\n{}",
                g.render_bits()
            );
        }
    }

    #[test]
    fn revsort_full_sorts_integers() {
        // Generic values, 8×8.
        let side = 8;
        let data: Vec<u32> = (0..(side * side) as u32).map(|i| (i * 37) % 61).collect();
        let mut g = Grid::from_row_major(side, side, data.clone());
        revsort_full(&mut g, SortOrder::Descending);
        let mut expected = data;
        expected.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(g.as_row_major(), &expected[..]);
    }

    #[test]
    fn repetitions_grow_like_lg_lg() {
        assert_eq!(revsort_repetitions(2), 1); // lg √n = 1
        assert_eq!(revsort_repetitions(4), 1); // lg √n = 2, ceil lg 2 = 1
        assert_eq!(revsort_repetitions(16), 2); // lg √n = 4 -> 2 -> 1
        assert_eq!(revsort_repetitions(256), 3); // 8 -> 4 -> 2 -> 1
        assert_eq!(revsort_repetitions(1 << 16), 4); // 16 -> 2 halvings... 16->8->4->2->1
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let mut g: Grid<u8> = Grid::filled(2, 4, 0);
        revsort_algorithm1(&mut g, SortOrder::Descending);
    }

    #[test]
    #[should_panic(expected = "2^q")]
    fn rejects_non_power_of_two() {
        let mut g: Grid<u8> = Grid::filled(3, 3, 0);
        revsort_algorithm1(&mut g, SortOrder::Descending);
    }
}
