//! The r×s mesh the sorting algorithms and switch wirings operate on.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Direction of a full sort.
///
/// The paper sorts valid bits into *nonincreasing* order (1s first), which
/// corresponds to [`SortOrder::Descending`]; the generic algorithms accept
/// either direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    /// Nondecreasing order.
    Ascending,
    /// Nonincreasing order — the paper's convention for valid bits.
    Descending,
}

impl SortOrder {
    /// The opposite direction (used by Shearsort's snake rows).
    #[inline]
    pub fn reversed(self) -> SortOrder {
        match self {
            SortOrder::Ascending => SortOrder::Descending,
            SortOrder::Descending => SortOrder::Ascending,
        }
    }

    /// Sort a slice in this direction.
    pub fn sort<T: Ord>(self, values: &mut [T]) {
        match self {
            SortOrder::Ascending => values.sort_unstable(),
            SortOrder::Descending => values.sort_unstable_by(|a, b| b.cmp(a)),
        }
    }

    /// Whether a slice is sorted in this direction.
    pub fn is_sorted<T: Ord>(self, values: &[T]) -> bool {
        match self {
            SortOrder::Ascending => values.windows(2).all(|w| w[0] <= w[1]),
            SortOrder::Descending => values.windows(2).all(|w| w[0] >= w[1]),
        }
    }
}

/// A dense r×s matrix stored in row-major order.
///
/// Rows are numbered `0..rows` top to bottom and columns `0..cols` left to
/// right, matching §4 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T> Grid<T> {
    /// Build a grid from a row-major element sequence.
    ///
    /// # Panics
    /// If `data.len() != rows * cols` or either dimension is zero.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Grid { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid is empty (never true: dimensions are positive).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major position of the element at `(row, col)` — `RM(i,j) = si+j`
    /// in the paper's notation (`s` = number of columns).
    #[inline]
    pub fn rm_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Column-major position of the element at `(row, col)` —
    /// `CM(i,j) = rj+i` (`r` = number of rows).
    #[inline]
    pub fn cm_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        col * self.rows + row
    }

    /// Inverse of [`Grid::rm_index`]: `RM⁻¹(x) = (⌊x/s⌋, x mod s)`.
    #[inline]
    pub fn rm_position(&self, x: usize) -> (usize, usize) {
        debug_assert!(x < self.len());
        (x / self.cols, x % self.cols)
    }

    /// Inverse of [`Grid::cm_index`].
    #[inline]
    pub fn cm_position(&self, x: usize) -> (usize, usize) {
        debug_assert!(x < self.len());
        (x % self.rows, x / self.rows)
    }

    /// Borrow the element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &T {
        &self.data[self.rm_index(row, col)]
    }

    /// Mutably borrow the element at `(row, col)`.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut T {
        let idx = self.rm_index(row, col);
        &mut self.data[idx]
    }

    /// Borrow a whole row.
    #[inline]
    pub fn row(&self, row: usize) -> &[T] {
        let start = row * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrow a whole row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        let start = row * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// The underlying row-major element sequence.
    #[inline]
    pub fn as_row_major(&self) -> &[T] {
        &self.data
    }

    /// Mutable access for the parallel phase implementations.
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the grid, yielding the row-major element sequence.
    #[inline]
    pub fn into_row_major(self) -> Vec<T> {
        self.data
    }
}

impl<T: Clone> Grid<T> {
    /// Build a grid with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Grid::from_row_major(rows, cols, vec![value; rows * cols])
    }

    /// Build a grid from a column-major element sequence.
    pub fn from_column_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        let mut rm = Vec::with_capacity(data.len());
        for row in 0..rows {
            for col in 0..cols {
                rm.push(data[col * rows + row].clone());
            }
        }
        Grid::from_row_major(rows, cols, rm)
    }

    /// The element sequence in column-major order.
    pub fn to_column_major(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for col in 0..self.cols {
            for row in 0..self.rows {
                out.push(self.get(row, col).clone());
            }
        }
        out
    }

    /// Copy out a column.
    pub fn column(&self, col: usize) -> Vec<T> {
        (0..self.rows)
            .map(|row| self.get(row, col).clone())
            .collect()
    }

    /// Overwrite a column.
    pub fn set_column(&mut self, col: usize, values: &[T]) {
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (row, v) in values.iter().enumerate() {
            *self.get_mut(row, col) = v.clone();
        }
    }

    /// The transposed grid (cols × rows).
    pub fn transposed(&self) -> Grid<T> {
        let mut data = Vec::with_capacity(self.len());
        for col in 0..self.cols {
            for row in 0..self.rows {
                data.push(self.get(row, col).clone());
            }
        }
        Grid::from_row_major(self.cols, self.rows, data)
    }

    /// Cyclically rotate row `row` right by `amount` places: the element in
    /// column `j` moves to column `(amount + j) mod cols` (§4's row
    /// rotation).
    pub fn rotate_row_right(&mut self, row: usize, amount: usize) {
        let cols = self.cols;
        let amount = amount % cols;
        // Right rotation by `amount` == slice::rotate_right(amount).
        self.row_mut(row).rotate_right(amount);
        let _ = cols;
    }

    /// Apply an element permutation: the element at position `i` (row-major)
    /// moves to position `perm[i]`. Used to realize inter-stage wiring.
    pub fn permuted(&self, perm: &[usize]) -> Grid<T> {
        assert_eq!(perm.len(), self.len(), "permutation length mismatch");
        let mut out: Vec<Option<T>> = vec![None; self.len()];
        for (i, &p) in perm.iter().enumerate() {
            assert!(out[p].is_none(), "not a permutation: duplicate target {p}");
            out[p] = Some(self.data[i].clone());
        }
        Grid::from_row_major(
            self.rows,
            self.cols,
            out.into_iter()
                .map(|v| v.expect("not a permutation: hole"))
                .collect(),
        )
    }
}

impl<T: Ord> Grid<T> {
    /// Fully sort one row in the given direction.
    pub fn sort_row(&mut self, row: usize, order: SortOrder) {
        order.sort(self.row_mut(row));
    }

    /// Fully sort every row in the given direction.
    pub fn sort_rows(&mut self, order: SortOrder) {
        for row in 0..self.rows {
            self.sort_row(row, order);
        }
    }

    /// Fully sort every row in snake fashion: row 0 in `order`, row 1 in the
    /// reversed direction, and so on (Shearsort's row phase).
    pub fn sort_rows_snake(&mut self, order: SortOrder) {
        for row in 0..self.rows {
            let dir = if row % 2 == 0 {
                order
            } else {
                order.reversed()
            };
            self.sort_row(row, dir);
        }
    }
}

impl<T: Ord + Clone> Grid<T> {
    /// Fully sort one column in the given direction.
    pub fn sort_column(&mut self, col: usize, order: SortOrder) {
        let mut column = self.column(col);
        order.sort(&mut column);
        self.set_column(col, &column);
    }

    /// Fully sort every column in the given direction.
    pub fn sort_columns(&mut self, order: SortOrder) {
        for col in 0..self.cols {
            self.sort_column(col, order);
        }
    }
}

impl Grid<bool> {
    /// Render a 0/1 grid for debugging/figures: `#` for 1, `.` for 0.
    pub fn render_bits(&self) -> String {
        let mut out = String::with_capacity(self.rows * (self.cols + 1));
        for row in 0..self.rows {
            for col in 0..self.cols {
                out.push(if *self.get(row, col) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }

    /// Number of `true` entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }
}

impl<T: fmt::Display> fmt::Display for Grid<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in 0..self.rows {
            for col in 0..self.cols {
                if col > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>3}", self.get(row, col))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_6x3() -> Grid<u32> {
        Grid::from_row_major(6, 3, (0..18).collect())
    }

    #[test]
    fn rm_cm_indices_match_paper_fig5() {
        // Figure 5: row-major and column-major positions in a 6×3 matrix.
        let g = grid_6x3();
        assert_eq!(g.rm_index(0, 0), 0);
        assert_eq!(g.rm_index(0, 2), 2);
        assert_eq!(g.rm_index(1, 0), 3);
        assert_eq!(g.rm_index(5, 2), 17);
        assert_eq!(g.cm_index(0, 0), 0);
        assert_eq!(g.cm_index(1, 0), 1);
        assert_eq!(g.cm_index(0, 1), 6);
        assert_eq!(g.cm_index(5, 2), 17);
        assert_eq!(g.cm_index(2, 2), 14);
    }

    #[test]
    fn rm_position_inverts_rm_index() {
        let g = grid_6x3();
        for row in 0..6 {
            for col in 0..3 {
                assert_eq!(g.rm_position(g.rm_index(row, col)), (row, col));
                assert_eq!(g.cm_position(g.cm_index(row, col)), (row, col));
            }
        }
    }

    #[test]
    fn column_major_round_trip() {
        let g = grid_6x3();
        let cm = g.to_column_major();
        assert_eq!(cm[0], 0);
        assert_eq!(cm[1], 3);
        assert_eq!(cm[6], 1);
        let back = Grid::from_column_major(6, 3, cm);
        assert_eq!(back, g);
    }

    #[test]
    fn transpose_swaps_dims_and_entries() {
        let g = grid_6x3();
        let t = g.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 6);
        for row in 0..6 {
            for col in 0..3 {
                assert_eq!(g.get(row, col), t.get(col, row));
            }
        }
        assert_eq!(t.transposed(), g);
    }

    #[test]
    fn rotate_row_right_matches_definition() {
        // Element in column j moves to column (amount + j) mod cols.
        let mut g = Grid::from_row_major(1, 4, vec![10, 11, 12, 13]);
        g.rotate_row_right(0, 1);
        assert_eq!(g.as_row_major(), &[13, 10, 11, 12]);
        let mut g = Grid::from_row_major(1, 4, vec![10, 11, 12, 13]);
        g.rotate_row_right(0, 6); // 6 mod 4 == 2
        assert_eq!(g.as_row_major(), &[12, 13, 10, 11]);
    }

    #[test]
    fn sort_rows_and_columns() {
        let mut g = Grid::from_row_major(2, 3, vec![3, 1, 2, 0, 5, 4]);
        g.sort_rows(SortOrder::Descending);
        assert_eq!(g.as_row_major(), &[3, 2, 1, 5, 4, 0]);
        g.sort_columns(SortOrder::Descending);
        assert_eq!(g.as_row_major(), &[5, 4, 1, 3, 2, 0]);
    }

    #[test]
    fn snake_rows_alternate_direction() {
        let mut g = Grid::from_row_major(2, 3, vec![3, 1, 2, 0, 5, 4]);
        g.sort_rows_snake(SortOrder::Descending);
        assert_eq!(g.row(0), &[3, 2, 1]);
        assert_eq!(g.row(1), &[0, 4, 5]);
    }

    #[test]
    fn permuted_applies_wiring_map() {
        let g = Grid::from_row_major(1, 4, vec![10, 11, 12, 13]);
        // Reverse the elements.
        let p = vec![3, 2, 1, 0];
        assert_eq!(g.permuted(&p).as_row_major(), &[13, 12, 11, 10]);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn permuted_rejects_non_permutation() {
        let g = Grid::from_row_major(1, 3, vec![1, 2, 3]);
        g.permuted(&[0, 0, 1]);
    }

    #[test]
    fn sort_order_helpers() {
        assert!(SortOrder::Descending.is_sorted(&[3, 3, 2, 0]));
        assert!(!SortOrder::Descending.is_sorted(&[1, 2]));
        assert!(SortOrder::Ascending.is_sorted(&[0, 0, 1]));
        assert_eq!(SortOrder::Ascending.reversed(), SortOrder::Descending);
    }

    #[test]
    fn bit_render_and_count() {
        let g = Grid::from_row_major(2, 2, vec![true, false, false, true]);
        assert_eq!(g.render_bits(), "#.\n.#\n");
        assert_eq!(g.count_ones(), 2);
    }
}
