//! Index permutations realizing the fixed inter-stage wiring of the
//! multichip switches.
//!
//! Convention: a permutation is a `Vec<usize>` where `perm[i]` is the
//! *destination* position of the element at source position `i` (positions
//! are row-major flat indices). This matches how crossbar wiring between
//! chip stages is described in §§4–5: "connect output wire Y to input
//! wire X".

/// Reverse the low `bits` bits of `i` — the `rev(i)` function of §4.
///
/// ```
/// use meshsort::rev_bits;
/// // "when √n = 16, rev(3) is 12" (§4).
/// assert_eq!(rev_bits(3, 4), 12);
/// ```
///
/// # Panics
/// If `i >= 2^bits`.
pub fn rev_bits(i: usize, bits: u32) -> usize {
    assert!(bits <= usize::BITS, "bit width too large");
    assert!(
        bits == usize::BITS || i < (1usize << bits),
        "value {i} does not fit in {bits} bits"
    );
    let mut out = 0usize;
    for b in 0..bits {
        if (i >> b) & 1 == 1 {
            out |= 1 << (bits - 1 - b);
        }
    }
    out
}

/// The identity permutation on `n` positions.
pub fn identity_permutation(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Whether `perm` is a permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[usize]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Inverse permutation: if `perm` sends `i` to `perm[i]`, the result sends
/// `perm[i]` back to `i`.
pub fn invert(perm: &[usize]) -> Vec<usize> {
    debug_assert!(is_permutation(perm));
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Composition "apply `first`, then `then`": the result sends `i` to
/// `then[first[i]]`.
pub fn compose(first: &[usize], then: &[usize]) -> Vec<usize> {
    assert_eq!(first.len(), then.len(), "permutation size mismatch");
    first.iter().map(|&f| then[f]).collect()
}

/// Matrix transposition as a flat permutation: the element of an r×s grid at
/// `(i, j)` (row-major position `si + j`) moves to row-major position
/// `rj + i` of the transposed s×r grid.
///
/// This is the wiring between stages 1 and 2 of the Revsort switch.
pub fn transpose_permutation(rows: usize, cols: usize) -> Vec<usize> {
    let mut perm = vec![0usize; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            perm[i * cols + j] = j * rows + i;
        }
    }
    perm
}

/// The column-major → row-major conversion of Columnsort step 2: "move the
/// element in row i and column j to row ⌊(rj+i)/s⌋ and column (rj+i) mod s"
/// — i.e. destination row-major position = source *column-major* position.
///
/// As a flat permutation on an r×s grid this coincides with
/// [`transpose_permutation`]; it is named separately because the grid keeps
/// its r×s shape (the paper's `RM⁻¹ ∘ CM`). This is the wiring between the
/// two stages of the Columnsort switch.
pub fn cm_to_rm_permutation(rows: usize, cols: usize) -> Vec<usize> {
    transpose_permutation(rows, cols)
}

/// Inverse of [`cm_to_rm_permutation`] (Columnsort step 4).
pub fn rm_to_cm_permutation(rows: usize, cols: usize) -> Vec<usize> {
    invert(&cm_to_rm_permutation(rows, cols))
}

/// The wiring between stages 2 and 3 of the Revsort switch (§4): first
/// cyclically rotate row `i` right by `rev(i)` places, then transpose.
///
/// `side` must be a power of two (the paper assumes `√n = 2^q`).
pub fn revsort_interstage_permutation(side: usize) -> Vec<usize> {
    assert!(
        side.is_power_of_two(),
        "Revsort requires a power-of-two side"
    );
    let q = side.trailing_zeros();
    let mut perm = vec![0usize; side * side];
    for i in 0..side {
        let r = rev_bits(i, q);
        for j in 0..side {
            let rotated_col = (r + j) % side;
            // Transpose: (i, rotated_col) -> flat position rotated_col*side + i.
            perm[i * side + j] = rotated_col * side + i;
        }
    }
    perm
}

/// Reversal of every odd row of an r×s grid — the fixed wiring that turns a
/// uniform-direction row sorter into Shearsort's snake row phase.
pub fn row_reversal_permutation(rows: usize, cols: usize) -> Vec<usize> {
    let mut perm = vec![0usize; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            let jj = if i % 2 == 1 { cols - 1 - j } else { j };
            perm[i * cols + j] = i * cols + jj;
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rev_bits_known_values() {
        assert_eq!(rev_bits(0, 4), 0);
        assert_eq!(rev_bits(1, 4), 8);
        assert_eq!(rev_bits(3, 4), 12);
        assert_eq!(rev_bits(0b1011, 4), 0b1101);
        assert_eq!(rev_bits(5, 3), 5); // 101 reversed is 101
    }

    #[test]
    fn rev_bits_is_involutive() {
        for q in 1..8u32 {
            for i in 0..(1usize << q) {
                assert_eq!(rev_bits(rev_bits(i, q), q), i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rev_bits_checks_range() {
        rev_bits(16, 4);
    }

    #[test]
    fn transpose_permutation_is_valid_and_involutive_for_square() {
        let p = transpose_permutation(4, 4);
        assert!(is_permutation(&p));
        assert_eq!(compose(&p, &p), identity_permutation(16));
    }

    #[test]
    fn transpose_permutation_rect_inverse() {
        let p = transpose_permutation(6, 3);
        let q = transpose_permutation(3, 6);
        assert!(is_permutation(&p));
        assert_eq!(compose(&p, &q), identity_permutation(18));
    }

    #[test]
    fn cm_to_rm_matches_paper_formula() {
        // r=6, s=3: element at (i,j) goes to row-major position rj+i.
        let rows = 6;
        let cols = 3;
        let p = cm_to_rm_permutation(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                assert_eq!(p[i * cols + j], rows * j + i);
            }
        }
        assert_eq!(
            compose(&p, &rm_to_cm_permutation(rows, cols)),
            identity_permutation(18)
        );
    }

    #[test]
    fn revsort_interstage_matches_paper_formula() {
        // Output Y_{2,i,j} connects to input X_{3,(rev(i)+j) mod √n, i}.
        let side = 8;
        let q = 3;
        let p = revsort_interstage_permutation(side);
        assert!(is_permutation(&p));
        for i in 0..side {
            for j in 0..side {
                let dest_chip = (rev_bits(i, q) + j) % side; // stage-3 chip (column)
                let dest_pin = i;
                assert_eq!(p[i * side + j], dest_chip * side + dest_pin);
            }
        }
    }

    #[test]
    fn row_reversal_reverses_only_odd_rows() {
        let p = row_reversal_permutation(3, 4);
        assert!(is_permutation(&p));
        for j in 0..4 {
            // Row 0 fixed, row 1 reversed, row 2 fixed.
            assert_eq!(p[j], j);
            assert_eq!(p[4 + j], 4 + 3 - j);
            assert_eq!(p[8 + j], 8 + j);
        }
    }

    #[test]
    fn invert_and_compose_laws() {
        let p = revsort_interstage_permutation(4);
        let inv = invert(&p);
        assert_eq!(compose(&p, &inv), identity_permutation(16));
        assert_eq!(compose(&inv, &p), identity_permutation(16));
    }

    #[test]
    fn is_permutation_rejects_bad_maps() {
        assert!(!is_permutation(&[0, 0]));
        assert!(!is_permutation(&[2, 0]));
        assert!(is_permutation(&[1, 0]));
        assert!(is_permutation(&[]));
    }
}
