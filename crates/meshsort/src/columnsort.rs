//! Columnsort (Leighton 1985) on an r×s mesh.
//!
//! The two-stage switch of §5 simulates the first three steps (Algorithm 2
//! of the paper), which `(s−1)²`-nearsort the elements *in row-major
//! order*. The full eight steps sort completely — in *column-major* order —
//! whenever `s` divides `r` and `r ≥ 2(s−1)²`; §6 uses them for a multichip
//! hyperconcentrator.

use serde::{Deserialize, Serialize};

use crate::grid::{Grid, SortOrder};
use crate::perm::{cm_to_rm_permutation, rm_to_cm_permutation};

/// An r×s Columnsort mesh shape with the paper's side conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnsortShape {
    /// Rows (`r`); chips in the switch are r-by-r hyperconcentrators.
    pub rows: usize,
    /// Columns (`s`); the switch uses `s` chips per stage.
    pub cols: usize,
}

impl ColumnsortShape {
    /// Build a shape, enforcing `s | r` as §5 requires.
    ///
    /// # Panics
    /// If either dimension is zero or `cols` does not divide `rows`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "shape dimensions must be positive");
        assert_eq!(rows % cols, 0, "Columnsort requires s to divide r");
        ColumnsortShape { rows, cols }
    }

    /// Number of elements `n = rs`.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Never true (dimensions are positive).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The nearsortedness guarantee of steps 1–3: `(s−1)²`.
    pub fn nearsort_bound(&self) -> usize {
        (self.cols - 1) * (self.cols - 1)
    }

    /// Whether the full eight steps are guaranteed to sort:
    /// `r ≥ 2(s−1)²`.
    pub fn supports_full_sort(&self) -> bool {
        self.rows >= 2 * self.nearsort_bound()
    }
}

fn assert_shape<T>(grid: &Grid<T>) -> ColumnsortShape {
    ColumnsortShape::new(grid.rows(), grid.cols())
}

/// Steps 1–3 of Columnsort — Algorithm 2 of the paper: sort columns,
/// convert column-major to row-major, sort columns.
///
/// Afterwards the elements taken in **row-major order** are
/// `(s−1)²`-nearsorted (Theorem 4's ingredient).
pub fn columnsort_steps123<T: Ord + Clone>(grid: &mut Grid<T>, order: SortOrder) {
    let shape = assert_shape(grid);
    grid.sort_columns(order);
    *grid = grid.permuted(&cm_to_rm_permutation(shape.rows, shape.cols));
    grid.sort_columns(order);
}

/// Padding wrapper for steps 6–8: `First` sorts before every value in the
/// chosen direction, `Last` after.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pad<T> {
    First,
    Val(T),
    Last,
}

fn sort_padded<T: Ord>(column: &mut [Pad<T>], order: SortOrder) {
    column.sort_by(|a, b| {
        use std::cmp::Ordering;
        let rank = |p: &Pad<T>| match p {
            Pad::First => 0u8,
            Pad::Val(_) => 1,
            Pad::Last => 2,
        };
        match rank(a).cmp(&rank(b)) {
            Ordering::Equal => match (a, b) {
                (Pad::Val(x), Pad::Val(y)) => match order {
                    SortOrder::Ascending => x.cmp(y),
                    SortOrder::Descending => y.cmp(x),
                },
                _ => Ordering::Equal,
            },
            other => other,
        }
    });
}

/// All eight Columnsort steps. The result is fully sorted in
/// **column-major order** (direction `order`) whenever
/// [`ColumnsortShape::supports_full_sort`] holds; the shape conditions are
/// checked and violations panic.
pub fn columnsort_full<T: Ord + Clone>(grid: &mut Grid<T>, order: SortOrder) {
    let shape = assert_shape(grid);
    assert!(
        shape.supports_full_sort(),
        "Columnsort full sort requires r >= 2(s-1)^2; got r={}, s={}",
        shape.rows,
        shape.cols
    );
    let (r, s) = (shape.rows, shape.cols);
    let n = r * s;
    let half = r / 2;

    // Steps 1-3.
    columnsort_steps123(grid, order);
    // Step 4: convert row-major back to column-major.
    *grid = grid.permuted(&rm_to_cm_permutation(r, s));
    // Step 5: sort columns.
    grid.sort_columns(order);

    // Step 6: shift the column-major sequence down by ⌊r/2⌋ into an
    // r×(s+1) mesh, padding the head with sort-first and the tail with
    // sort-last values.
    let cm: Vec<T> = grid.to_column_major();
    let mut padded: Vec<Pad<T>> = Vec::with_capacity(n + r);
    padded.extend((0..half).map(|_| Pad::First));
    padded.extend(cm.into_iter().map(Pad::Val));
    padded.extend((0..r - half).map(|_| Pad::Last));
    debug_assert_eq!(padded.len(), n + r);

    // Step 7: sort each column of the padded r×(s+1) mesh (columns are
    // contiguous runs of the column-major sequence).
    for col in padded.chunks_mut(r) {
        sort_padded(col, order);
    }

    // Step 8: unshift.
    let values: Vec<T> = padded
        .into_iter()
        .skip(half)
        .take(n)
        .map(|p| match p {
            Pad::Val(v) => v,
            Pad::First | Pad::Last => {
                unreachable!("padding escaped its half-column during step 7")
            }
        })
        .collect();
    *grid = Grid::from_column_major(r, s, values);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::nearsort_epsilon;

    fn bit_grid_from_u64(rows: usize, cols: usize, mut pattern: u64) -> Grid<bool> {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(pattern & 1 == 1);
            pattern >>= 1;
        }
        Grid::from_row_major(rows, cols, data)
    }

    #[test]
    fn steps123_nearsort_bound_exhaustive_8x2() {
        // (s-1)^2 = 1 for s = 2.
        let shape = ColumnsortShape::new(8, 2);
        for pattern in 0u64..(1 << 16) {
            let mut g = bit_grid_from_u64(8, 2, pattern);
            columnsort_steps123(&mut g, SortOrder::Descending);
            let eps = nearsort_epsilon(g.as_row_major(), SortOrder::Descending);
            assert!(
                eps <= shape.nearsort_bound(),
                "pattern {pattern:#06x}: eps {eps} > bound {}",
                shape.nearsort_bound()
            );
        }
    }

    #[test]
    fn steps123_nearsort_bound_exhaustive_4x4() {
        // (s-1)^2 = 9 for s = 4 — loose but must hold.
        let shape = ColumnsortShape::new(4, 4);
        for pattern in 0u64..(1 << 16) {
            let mut g = bit_grid_from_u64(4, 4, pattern);
            columnsort_steps123(&mut g, SortOrder::Descending);
            let eps = nearsort_epsilon(g.as_row_major(), SortOrder::Descending);
            assert!(
                eps <= shape.nearsort_bound(),
                "pattern {pattern:#06x}: eps {eps}"
            );
        }
    }

    #[test]
    fn steps123_preserves_multiset() {
        let mut g = bit_grid_from_u64(8, 4, 0xDEAD_BEEF);
        let before = g.count_ones();
        columnsort_steps123(&mut g, SortOrder::Descending);
        assert_eq!(g.count_ones(), before);
    }

    #[test]
    fn full_sorts_all_8x2_bit_matrices() {
        // r = 8 >= 2(s-1)^2 = 2.
        for pattern in 0u64..(1 << 16) {
            let mut g = bit_grid_from_u64(8, 2, pattern);
            columnsort_full(&mut g, SortOrder::Descending);
            let cm = g.to_column_major();
            assert!(
                SortOrder::Descending.is_sorted(&cm),
                "pattern {pattern:#06x} not sorted in column-major order:\n{}",
                g.render_bits()
            );
        }
    }

    #[test]
    fn full_sorts_random_9x3_bit_matrices() {
        // r = 9 >= 2(s-1)^2 = 8.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mut g = bit_grid_from_u64(9, 3, state & ((1 << 27) - 1));
            columnsort_full(&mut g, SortOrder::Descending);
            let cm = g.to_column_major();
            assert!(SortOrder::Descending.is_sorted(&cm), "state {state:#x}");
        }
    }

    #[test]
    fn full_sorts_integers_both_directions() {
        let data: Vec<u32> = (0..36u32).map(|i| (i * 31) % 36).collect();
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            // 12×3: 12 >= 2*4 = 8, 3 | 12.
            let mut g = Grid::from_row_major(12, 3, data.clone());
            columnsort_full(&mut g, order);
            let cm = g.to_column_major();
            assert!(order.is_sorted(&cm), "{order:?}: {cm:?}");
        }
    }

    #[test]
    fn shape_validation() {
        let shape = ColumnsortShape::new(8, 4);
        assert_eq!(shape.nearsort_bound(), 9);
        assert!(!shape.supports_full_sort()); // 8 < 18
        assert!(ColumnsortShape::new(18, 3).supports_full_sort());
        assert_eq!(ColumnsortShape::new(8, 4).len(), 32);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn shape_rejects_non_dividing_cols() {
        ColumnsortShape::new(8, 3);
    }

    #[test]
    #[should_panic(expected = "r >= 2(s-1)^2")]
    fn full_rejects_undersized_rows() {
        let mut g: Grid<u8> = Grid::filled(8, 4, 0);
        columnsort_full(&mut g, SortOrder::Descending);
    }

    #[test]
    fn single_column_is_trivially_sorted() {
        let mut g = Grid::from_row_major(4, 1, vec![1u8, 3, 0, 2]);
        columnsort_full(&mut g, SortOrder::Descending);
        assert_eq!(g.as_row_major(), &[3, 2, 1, 0]);
    }
}
