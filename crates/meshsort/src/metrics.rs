//! Sortedness and nearsortedness metrics (§3 of the paper).
//!
//! A sequence is *ε-nearsorted* if each element is within ε positions of
//! where it belongs in the fully sorted sequence; for sequences with
//! duplicates we take the assignment of equal elements that minimizes the
//! maximum displacement, which a stable sort realizes.

use serde::{Deserialize, Serialize};

use crate::grid::{Grid, SortOrder};

/// The minimal ε such that `values` is ε-nearsorted with respect to the
/// fully sorted sequence in direction `order`.
///
/// A fully sorted sequence yields 0. The example of §3 —
/// "5, 3, 6, 1, 4, 2 is 2-nearsorted" — yields 2:
///
/// ```
/// use meshsort::{nearsort_epsilon, SortOrder};
/// assert_eq!(nearsort_epsilon(&[5, 3, 6, 1, 4, 2], SortOrder::Descending), 2);
/// assert_eq!(nearsort_epsilon(&[6, 5, 4, 3, 2, 1], SortOrder::Descending), 0);
/// ```
pub fn nearsort_epsilon<T: Ord>(values: &[T], order: SortOrder) -> usize {
    // Stable-sort the source positions by value; position t of that ranking
    // is where the element belongs in the fully sorted sequence, and stable
    // matching of duplicates minimizes the max displacement.
    let mut ranked: Vec<usize> = (0..values.len()).collect();
    match order {
        SortOrder::Ascending => ranked.sort_by(|&a, &b| values[a].cmp(&values[b])),
        SortOrder::Descending => ranked.sort_by(|&a, &b| values[b].cmp(&values[a])),
    }
    ranked
        .iter()
        .enumerate()
        .map(|(target, &source)| target.abs_diff(source))
        .max()
        .unwrap_or(0)
}

/// Decomposition of a 0/1 sequence per Lemma 1 / Figure 1: a clean prefix of
/// 1s, a dirty window, and a clean suffix of 0s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanDirtySplit {
    /// Length of the leading run of 1s.
    pub clean_ones: usize,
    /// Start index of the dirty window (== `clean_ones`).
    pub dirty_start: usize,
    /// Length of the dirty window (0 when fully sorted).
    pub dirty_len: usize,
    /// Length of the trailing run of 0s.
    pub clean_zeros: usize,
    /// Total number of 1s in the sequence (`k` in the paper).
    pub ones: usize,
}

impl CleanDirtySplit {
    /// Check Lemma 1's characterization for a claimed ε: clean prefix
    /// ≥ k − ε, dirty window ≤ 2ε, clean suffix ≥ n − k − ε.
    pub fn satisfies_lemma1(&self, n: usize, epsilon: usize) -> bool {
        self.clean_ones + epsilon >= self.ones
            && self.dirty_len <= 2 * epsilon
            && self.clean_zeros + self.ones + epsilon >= n
    }
}

/// Compute the clean/dirty decomposition of a 0/1 sequence.
pub fn clean_dirty_split(bits: &[bool]) -> CleanDirtySplit {
    let n = bits.len();
    let ones = bits.iter().filter(|&&b| b).count();
    let clean_ones = bits.iter().take_while(|&&b| b).count();
    let clean_zeros = bits.iter().rev().take_while(|&&b| !b).count();
    let dirty_len = n.saturating_sub(clean_ones + clean_zeros);
    CleanDirtySplit {
        clean_ones,
        dirty_start: clean_ones,
        dirty_len,
        clean_zeros,
        ones,
    }
}

/// Clean/dirty row structure of a 0/1 grid: `(clean 1-rows on top,
/// dirty rows, clean 0-rows at the bottom)`.
///
/// This is the quantity bounded by Theorem 3's proof: after Algorithm 1 the
/// matrix has "only clean rows of 1's at the top, clean rows of 0's at the
/// bottom, and at most 2⌈n^{1/4}⌉ − 1 dirty rows in the middle".
pub fn dirty_row_band(grid: &Grid<bool>) -> (usize, usize, usize) {
    let all_ones = |row: &[bool]| row.iter().all(|&b| b);
    let all_zeros = |row: &[bool]| row.iter().all(|&b| !b);
    let mut top = 0usize;
    while top < grid.rows() && all_ones(grid.row(top)) {
        top += 1;
    }
    let mut bottom = 0usize;
    while bottom < grid.rows() - top && all_zeros(grid.row(grid.rows() - 1 - bottom)) {
        bottom += 1;
    }
    let dirty = grid.rows() - top - bottom;
    (top, dirty, bottom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_zero_for_sorted() {
        assert_eq!(nearsort_epsilon(&[9, 7, 7, 1], SortOrder::Descending), 0);
        assert_eq!(nearsort_epsilon(&[1, 2, 3], SortOrder::Ascending), 0);
        assert_eq!(nearsort_epsilon::<u32>(&[], SortOrder::Descending), 0);
    }

    #[test]
    fn epsilon_paper_example() {
        // §3: "5, 3, 6, 1, 4, 2 is 2-nearsorted".
        assert_eq!(
            nearsort_epsilon(&[5, 3, 6, 1, 4, 2], SortOrder::Descending),
            2
        );
    }

    #[test]
    fn epsilon_reversed_sequence_is_maximal() {
        assert_eq!(nearsort_epsilon(&[1, 2, 3, 4], SortOrder::Descending), 3);
    }

    #[test]
    fn epsilon_duplicates_use_stable_matching() {
        // [1, 1, 0, 1]: ones at 0,1,3 belong at 0,1,2; zero at 2 belongs
        // at 3. Max displacement 1.
        let bits = [true, true, false, true];
        assert_eq!(nearsort_epsilon(&bits, SortOrder::Descending), 1);
    }

    #[test]
    fn clean_dirty_split_cases() {
        let s = clean_dirty_split(&[true, true, false, true, false, false]);
        assert_eq!(s.clean_ones, 2);
        assert_eq!(s.dirty_start, 2);
        assert_eq!(s.dirty_len, 2);
        assert_eq!(s.clean_zeros, 2);
        assert_eq!(s.ones, 3);

        let sorted = clean_dirty_split(&[true, false, false]);
        assert_eq!(sorted.dirty_len, 0);

        let all_ones = clean_dirty_split(&[true, true]);
        assert_eq!(all_ones.clean_ones, 2);
        assert_eq!(all_ones.dirty_len, 0);
        assert_eq!(all_ones.clean_zeros, 0);

        let all_zeros = clean_dirty_split(&[false, false]);
        assert_eq!(all_zeros.clean_zeros, 2);
        assert_eq!(all_zeros.dirty_len, 0);
    }

    #[test]
    fn lemma1_forward_direction() {
        // An ε-nearsorted 0/1 sequence satisfies the decomposition bounds.
        let bits = [true, true, false, true, false, false];
        let eps = nearsort_epsilon(&bits, SortOrder::Descending);
        let split = clean_dirty_split(&bits);
        assert!(split.satisfies_lemma1(bits.len(), eps));
    }

    #[test]
    fn dirty_row_band_structure() {
        let g = Grid::from_row_major(
            4,
            2,
            vec![true, true, true, false, false, true, false, false],
        );
        assert_eq!(dirty_row_band(&g), (1, 2, 1));

        let clean = Grid::from_row_major(2, 2, vec![true, true, false, false]);
        assert_eq!(dirty_row_band(&clean), (1, 0, 1));

        let all1 = Grid::filled(3, 2, true);
        assert_eq!(dirty_row_band(&all1), (3, 0, 0));

        let all0 = Grid::filled(3, 2, false);
        assert_eq!(dirty_row_band(&all0), (0, 0, 3));
    }
}
