//! Mesh sorting algorithms underpinning the 1987 multichip partial
//! concentrator switch designs.
//!
//! Cormen's switches (MIT-LCS-TM-322) are hardware simulations of the first
//! steps of two mesh sorting algorithms applied to the *valid bits* of
//! bit-serial messages:
//!
//! * **Revsort** (Schnorr–Shamir 1986) — the three-stage switch of §4
//!   simulates Algorithm 1 (the first 1½ Revsort iterations) on a √n×√n
//!   mesh, leaving at most `2⌈n^{1/4}⌉ − 1` dirty rows;
//! * **Columnsort** (Leighton 1985) — the two-stage switch of §5 simulates
//!   the first three Columnsort steps on an r×s mesh, which
//!   `(s−1)²`-nearsort the elements in row-major order;
//! * **Shearsort** (Scherson–Sen–Shamir 1986) — finishes the full-Revsort
//!   multichip *hyper*concentrator of §6.
//!
//! This crate implements the algorithms generically over ordered values (the
//! switches use them on `bool` valid bits, tests exercise richer types),
//! the mesh/permutation machinery the switch wiring is derived from, and the
//! sortedness/nearsortedness metrics of Lemma 1.

mod columnsort;
mod comparator;
mod grid;
mod metrics;
mod parallel;
mod perm;
mod revsort;
mod shearsort;

pub use columnsort::{columnsort_full, columnsort_steps123, ColumnsortShape};
pub use comparator::{columnsort_steps123_network, Comparator, ComparatorNetwork};
pub use grid::{Grid, SortOrder};
pub use metrics::{clean_dirty_split, dirty_row_band, nearsort_epsilon, CleanDirtySplit};
pub use parallel::par_revsort_steps123;
pub use perm::{
    cm_to_rm_permutation, compose, identity_permutation, invert, is_permutation, rev_bits,
    revsort_interstage_permutation, rm_to_cm_permutation, row_reversal_permutation,
    transpose_permutation,
};
pub use revsort::{
    algorithm1_report, revsort_algorithm1, revsort_full, revsort_repetitions, revsort_steps123,
    RevsortReport,
};
pub use shearsort::{shearsort, shearsort_pair, ShearsortSchedule};
