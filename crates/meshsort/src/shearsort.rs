//! Shearsort (Scherson–Sen–Shamir) — the finishing phase of the
//! full-Revsort multichip hyperconcentrator (§6).
//!
//! A Shearsort *pair* is a snake row phase (row `i` sorted in the base
//! direction when `i` is even, reversed when odd) followed by a column
//! phase. Each pair at least halves the dirty row band of a 0/1 matrix.
//! §6 finishes full Revsort, which leaves at most eight dirty rows, with
//! "three iterations of the Shearsort algorithm"; a last *uniform* row
//! phase (a wiring choice, not an extra algorithm) converts the snake-
//! ordered result into row-major order. The measured stack count is
//! reported against the paper's in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use crate::grid::{Grid, SortOrder};

/// A Shearsort run plan: `pairs` (snake row + column) phases, optionally
/// followed by one uniform-direction row phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShearsortSchedule {
    /// Number of (snake row phase, column phase) pairs.
    pub pairs: usize,
    /// Whether to finish with a uniform-direction row phase, which turns a
    /// snake-sorted matrix into a row-major-sorted one.
    pub final_uniform_row: bool,
}

impl ShearsortSchedule {
    /// The finishing schedule used after full Revsort's repetitions (§6):
    /// three pairs plus the direction-fixing uniform row phase.
    pub fn paper_finish() -> Self {
        ShearsortSchedule {
            pairs: 3,
            final_uniform_row: true,
        }
    }

    /// A schedule that fully sorts an arbitrary r×s matrix from scratch:
    /// ⌈lg r⌉ + 1 pairs plus the uniform row phase (one extra pair over the
    /// classic ⌈lg r⌉ bound buys the band down to a single dirty row for
    /// every input, which the uniform row phase then fixes).
    pub fn full_sort(rows: usize) -> Self {
        let lg = rows.next_power_of_two().trailing_zeros() as usize;
        ShearsortSchedule {
            pairs: lg + 1,
            final_uniform_row: true,
        }
    }

    /// Number of chip stacks (row/column sorting stages) this schedule
    /// costs in the multichip realization of §6.
    pub fn stacks(&self) -> usize {
        2 * self.pairs + usize::from(self.final_uniform_row)
    }
}

/// One Shearsort pair: snake row phase then column phase.
pub fn shearsort_pair<T: Ord + Clone>(grid: &mut Grid<T>, order: SortOrder) {
    grid.sort_rows_snake(order);
    grid.sort_columns(order);
}

/// Run a full Shearsort schedule.
pub fn shearsort<T: Ord + Clone>(
    grid: &mut Grid<T>,
    order: SortOrder,
    schedule: ShearsortSchedule,
) {
    for _ in 0..schedule.pairs {
        shearsort_pair(grid, order);
    }
    if schedule.final_uniform_row {
        grid.sort_rows(order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::dirty_row_band;

    fn bit_grid_from_u64(rows: usize, cols: usize, mut pattern: u64) -> Grid<bool> {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(pattern & 1 == 1);
            pattern >>= 1;
        }
        Grid::from_row_major(rows, cols, data)
    }

    #[test]
    fn full_schedule_sorts_all_4x4_bit_matrices() {
        let schedule = ShearsortSchedule::full_sort(4);
        for pattern in 0u64..(1 << 16) {
            let mut g = bit_grid_from_u64(4, 4, pattern);
            shearsort(&mut g, SortOrder::Descending, schedule);
            assert!(
                SortOrder::Descending.is_sorted(g.as_row_major()),
                "pattern {pattern:#06x}:\n{}",
                g.render_bits()
            );
        }
    }

    #[test]
    fn full_schedule_sorts_integers_via_zero_one_principle_spot_check() {
        let schedule = ShearsortSchedule::full_sort(8);
        let data: Vec<u32> = (0..64u32).map(|i| (i * 23) % 64).collect();
        let mut g = Grid::from_row_major(8, 8, data.clone());
        shearsort(&mut g, SortOrder::Descending, schedule);
        let mut expected = data;
        expected.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(g.as_row_major(), &expected[..]);
    }

    #[test]
    fn each_pair_roughly_halves_dirty_band() {
        // Worst-ish case: alternating rows of 1s and 0s, 8×8.
        let mut data = Vec::new();
        for row in 0..8 {
            for _ in 0..8 {
                data.push(row % 2 == 0);
            }
        }
        let mut g = Grid::from_row_major(8, 8, data);
        // Rows 0 and 7 are clean (all-1 and all-0), so the band is 6 rows.
        let (_, d0, _) = dirty_row_band(&g);
        assert_eq!(d0, 6);
        shearsort_pair(&mut g, SortOrder::Descending);
        let (_, d1, _) = dirty_row_band(&g);
        assert!(d1 <= d0 / 2 + 1, "dirty rows {d0} -> {d1}");
    }

    #[test]
    fn paper_finish_handles_eight_dirty_rows() {
        // Adversarial 16×16 inputs whose dirty band is at most 8 rows, the
        // §6 precondition.
        let rows = 16;
        let cols = 16;
        for seed in 0u64..2000 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let clean_top = (next() % 5) as usize;
            let dirty = (next() % 9) as usize; // 0..=8 dirty rows
            let clean_top = clean_top.min(rows - dirty);
            let mut data = Vec::with_capacity(rows * cols);
            for row in 0..rows {
                for _ in 0..cols {
                    if row < clean_top {
                        data.push(true);
                    } else if row < clean_top + dirty {
                        data.push(next() % 2 == 0);
                    } else {
                        data.push(false);
                    }
                }
            }
            let mut g = Grid::from_row_major(rows, cols, data);
            shearsort(
                &mut g,
                SortOrder::Descending,
                ShearsortSchedule::paper_finish(),
            );
            assert!(
                SortOrder::Descending.is_sorted(g.as_row_major()),
                "seed {seed}:\n{}",
                g.render_bits()
            );
        }
    }

    #[test]
    fn stacks_counts_stages() {
        assert_eq!(ShearsortSchedule::paper_finish().stacks(), 7);
        assert_eq!(
            ShearsortSchedule {
                pairs: 2,
                final_uniform_row: false
            }
            .stacks(),
            4
        );
    }
}
