//! Data-parallel row/column phases with rayon.
//!
//! The mesh phases are embarrassingly parallel — every row (or column) is
//! sorted independently, exactly like the chips of one switch stage
//! operating concurrently. These variants split the work across threads
//! and are bit-for-bit equivalent to the sequential phases; the
//! `mesh_sorts` Criterion bench measures where the crossover lies.

use rayon::prelude::*;

use crate::grid::{Grid, SortOrder};

impl<T: Ord + Send> Grid<T> {
    /// Parallel [`Grid::sort_rows`]: each row sorted on its own rayon
    /// task.
    pub fn par_sort_rows(&mut self, order: SortOrder) {
        let cols = self.cols();
        self.data_mut()
            .par_chunks_mut(cols)
            .for_each(|row| order.sort(row));
    }

    /// Parallel snake row phase (Shearsort's row step).
    pub fn par_sort_rows_snake(&mut self, order: SortOrder) {
        let cols = self.cols();
        self.data_mut()
            .par_chunks_mut(cols)
            .enumerate()
            .for_each(|(i, row)| {
                let dir = if i % 2 == 0 { order } else { order.reversed() };
                dir.sort(row);
            });
    }
}

impl<T: Ord + Clone + Send + Sync> Grid<T> {
    /// Parallel [`Grid::sort_columns`]: gather-sort-scatter per column,
    /// each column on its own rayon task.
    pub fn par_sort_columns(&mut self, order: SortOrder) {
        let (rows, cols) = (self.rows(), self.cols());
        // Gather columns in parallel (reads only), then scatter back.
        let sorted: Vec<Vec<T>> = (0..cols)
            .into_par_iter()
            .map(|c| {
                let mut column: Vec<T> = (0..rows).map(|r| self.get(r, c).clone()).collect();
                order.sort(&mut column);
                column
            })
            .collect();
        for (c, column) in sorted.into_iter().enumerate() {
            self.set_column(c, &column);
        }
    }
}

/// Parallel Revsort steps 1–3 (Algorithm 1's loop body).
pub fn par_revsort_steps123<T: Ord + Clone + Send + Sync>(grid: &mut Grid<T>, order: SortOrder) {
    assert_eq!(grid.rows(), grid.cols(), "Revsort requires a square mesh");
    assert!(grid.rows().is_power_of_two(), "Revsort requires √n = 2^q");
    let side = grid.rows();
    let q = side.trailing_zeros();
    grid.par_sort_columns(order);
    grid.par_sort_rows(order);
    for i in 0..side {
        grid.rotate_row_right(i, crate::perm::rev_bits(i, q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revsort::revsort_steps123;

    fn bit_grid(rows: usize, cols: usize, seed: u64) -> Grid<bool> {
        let mut state = seed | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 1 == 1
            })
            .collect();
        Grid::from_row_major(rows, cols, data)
    }

    #[test]
    fn par_row_sort_matches_sequential() {
        for seed in 0..20u64 {
            let mut a = bit_grid(16, 32, seed);
            let mut b = a.clone();
            a.sort_rows(SortOrder::Descending);
            b.par_sort_rows(SortOrder::Descending);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn par_snake_matches_sequential() {
        for seed in 0..20u64 {
            let mut a = bit_grid(9, 11, seed * 3 + 1);
            let mut b = a.clone();
            a.sort_rows_snake(SortOrder::Descending);
            b.par_sort_rows_snake(SortOrder::Descending);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn par_column_sort_matches_sequential() {
        for seed in 0..20u64 {
            let mut a = bit_grid(32, 16, seed * 7 + 5);
            let mut b = a.clone();
            a.sort_columns(SortOrder::Ascending);
            b.par_sort_columns(SortOrder::Ascending);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn par_revsort_steps_match_sequential() {
        for seed in 0..10u64 {
            let mut a = bit_grid(16, 16, seed * 11 + 3);
            let mut b = a.clone();
            revsort_steps123(&mut a, SortOrder::Descending);
            par_revsort_steps123(&mut b, SortOrder::Descending);
            assert_eq!(a, b);
        }
    }
}
