//! Property-based tests for the mesh sorting algorithms and permutation
//! machinery.

use meshsort::{
    clean_dirty_split, cm_to_rm_permutation, columnsort_full, columnsort_steps123, compose,
    dirty_row_band, identity_permutation, invert, is_permutation, nearsort_epsilon, rev_bits,
    revsort_algorithm1, revsort_full, rm_to_cm_permutation, row_reversal_permutation, shearsort,
    ColumnsortShape, Grid, ShearsortSchedule, SortOrder,
};
use proptest::prelude::*;

fn bit_grid(rows: usize, cols: usize, seed: u64) -> Grid<bool> {
    let mut state = seed | 1;
    let data = (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        })
        .collect();
    Grid::from_row_major(rows, cols, data)
}

proptest! {
    /// Revsort Algorithm 1 preserves the multiset and meets the dirty-row
    /// bound on power-of-two square grids.
    #[test]
    fn algorithm1_dirty_row_bound(side_exp in 1u32..5, seed in any::<u64>()) {
        let side = 1usize << side_exp;
        let n = side * side;
        let mut grid = bit_grid(side, side, seed);
        let ones = grid.count_ones();
        revsort_algorithm1(&mut grid, SortOrder::Descending);
        prop_assert_eq!(grid.count_ones(), ones);
        let bound = 2 * (n as f64).powf(0.25).ceil() as usize - 1;
        let (_, dirty, _) = dirty_row_band(&grid);
        prop_assert!(dirty <= bound, "dirty {dirty} > bound {bound} at n={n}");
    }

    /// Full Revsort sorts completely in row-major order.
    #[test]
    fn revsort_full_sorts(side_exp in 1u32..5, seed in any::<u64>()) {
        let side = 1usize << side_exp;
        let mut grid = bit_grid(side, side, seed);
        let ones = grid.count_ones();
        revsort_full(&mut grid, SortOrder::Descending);
        prop_assert!(SortOrder::Descending.is_sorted(grid.as_row_major()));
        prop_assert_eq!(grid.count_ones(), ones);
    }

    /// Columnsort steps 1-3 meet the (s−1)² bound on row-major reading.
    #[test]
    fn columnsort_nearsort_bound(
        shape_idx in 0usize..5,
        seed in any::<u64>(),
    ) {
        let (r, s) = [(8usize, 2usize), (8, 4), (16, 4), (12, 3), (32, 8)][shape_idx];
        let shape = ColumnsortShape::new(r, s);
        let mut grid = bit_grid(r, s, seed);
        columnsort_steps123(&mut grid, SortOrder::Descending);
        let eps = nearsort_epsilon(grid.as_row_major(), SortOrder::Descending);
        prop_assert!(eps <= shape.nearsort_bound());
    }

    /// Full Columnsort sorts in column-major order whenever the shape
    /// conditions hold; both directions.
    #[test]
    fn columnsort_full_sorts(
        shape_idx in 0usize..4,
        seed in any::<u64>(),
        descending in any::<bool>(),
    ) {
        let (r, s) = [(8usize, 2usize), (9, 3), (32, 4), (18, 3)][shape_idx];
        let order = if descending { SortOrder::Descending } else { SortOrder::Ascending };
        let mut grid = bit_grid(r, s, seed);
        columnsort_full(&mut grid, order);
        prop_assert!(order.is_sorted(&grid.to_column_major()));
    }

    /// Shearsort's full schedule sorts any 0/1 grid (and hence, by the 0-1
    /// principle, any grid) in row-major order.
    #[test]
    fn shearsort_full_schedule_sorts(
        rows in 2usize..10,
        cols in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut grid = bit_grid(rows, cols, seed);
        shearsort(&mut grid, SortOrder::Descending, ShearsortSchedule::full_sort(rows));
        prop_assert!(SortOrder::Descending.is_sorted(grid.as_row_major()));
    }

    /// ε = 0 iff the sequence is fully sorted; ε < n always.
    #[test]
    fn epsilon_extremes(values in proptest::collection::vec(0u8..4, 1..60)) {
        let eps = nearsort_epsilon(&values, SortOrder::Descending);
        prop_assert!(values.is_empty() || eps < values.len());
        let sorted = SortOrder::Descending.is_sorted(&values);
        prop_assert_eq!(eps == 0, sorted);
    }

    /// Lemma 1 decomposition bounds hold for the measured ε.
    #[test]
    fn lemma1_holds(bits in proptest::collection::vec(any::<bool>(), 1..120)) {
        let eps = nearsort_epsilon(&bits, SortOrder::Descending);
        let split = clean_dirty_split(&bits);
        prop_assert!(split.satisfies_lemma1(bits.len(), eps));
    }

    /// Permutation algebra: compose(p, invert(p)) is the identity, and all
    /// the wiring constructors produce genuine permutations.
    #[test]
    fn wiring_permutation_laws(rows in 1usize..9, cols in 1usize..9) {
        let n = rows * cols;
        for p in [
            cm_to_rm_permutation(rows, cols),
            rm_to_cm_permutation(rows, cols),
            row_reversal_permutation(rows, cols),
        ] {
            prop_assert!(is_permutation(&p));
            prop_assert_eq!(compose(&p, &invert(&p)), identity_permutation(n));
        }
        // Row reversal is an involution.
        let rr = row_reversal_permutation(rows, cols);
        prop_assert_eq!(compose(&rr, &rr), identity_permutation(n));
    }

    /// rev_bits is an involution and preserves range.
    #[test]
    fn rev_bits_involution(q in 1u32..10, frac in 0.0f64..1.0) {
        let max = 1usize << q;
        let i = ((frac * max as f64) as usize).min(max - 1);
        let r = rev_bits(i, q);
        prop_assert!(r < max);
        prop_assert_eq!(rev_bits(r, q), i);
    }

    /// Sorting a grid's rows then columns never un-sorts the columns
    /// (the classic exercise underpinning all these algorithms): after a
    /// row sort followed by a column sort, columns are sorted AND rows
    /// remain sorted.
    #[test]
    fn row_then_column_sort_keeps_rows_sorted(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut grid = bit_grid(rows, cols, seed);
        grid.sort_rows(SortOrder::Descending);
        grid.sort_columns(SortOrder::Descending);
        for row in 0..rows {
            prop_assert!(SortOrder::Descending.is_sorted(grid.row(row)));
        }
    }
}
