//! **Theorem 4**: the Columnsort-based construction yields an
//! `(n, m, 1 − (s−1)²/m)` partial concentrator switch.
//!
//! Verified by (1) exhaustive checks of the `(s−1)²`-nearsort property at
//! small shapes, (2) Monte Carlo + adversarial concentration checks across
//! the β sweep, and (3) the `4β lg n + O(1)` delay / `Θ(n^β)` pin /
//! `Θ(n^{1−β})` chip claims.

use bench::grids::beta_grids;
use bench::{banner, lg, TextTable};
use concentrator::packaging::{Dim, PackagingReport};
use concentrator::search::epsilon_attack;
use concentrator::verify::{
    exhaustive_check_compiled, measure_epsilon, monte_carlo_check_compiled,
};
use concentrator::ColumnsortSwitch;

fn main() {
    banner(
        "Theorem 4: the Columnsort switch is an (n, m, 1 - (s-1)^2/m) partial concentrator",
        "MIT-LCS-TM-322 Theorem 4 (§5)",
    );

    // 1. Exhaustive nearsort/concentration checks at small shapes.
    println!("\n-- exhaustive checks --");
    for (r, s) in [(8usize, 2usize), (4, 4), (8, 4)] {
        let n = r * s;
        if n > 20 {
            continue;
        }
        let switch = ColumnsortSwitch::new(r, s, n);
        exhaustive_check_compiled(switch.staged()).expect("exhaustive concentration");
        let eps = measure_epsilon(switch.staged(), 0, 0);
        println!(
            "r = {r}, s = {s}: all {} patterns concentrate; worst adversarial ε = {} \
             (bound (s−1)² = {})",
            1u64 << n,
            eps.worst_epsilon,
            switch.epsilon_bound()
        );
        assert!(eps.worst_epsilon <= switch.epsilon_bound());
    }

    // 2. β sweep: Monte Carlo + adversarial; measured ε vs bound.
    println!("\n-- β sweep --");
    let mut t = TextTable::new([
        "β",
        "n",
        "r",
        "s",
        "eps bound",
        "measured eps",
        "delay",
        "4β lg n + 4",
        "pins",
        "chips",
    ]);
    for (num, den, beta) in [(1u32, 2u32, 0.5f64), (5, 8, 0.625), (3, 4, 0.75)] {
        for grid in beta_grids(num, den).into_iter().filter(|g| g.n <= 4096) {
            let m = grid.n;
            let switch = ColumnsortSwitch::new(grid.r, grid.s, m);
            let mc = monte_carlo_check_compiled(switch.staged(), 1500, 0xC5);
            assert!(mc.failures.is_empty(), "violation at {grid:?}");
            let eps = measure_epsilon(switch.staged(), 1500, 0xE5);
            assert!(eps.worst_epsilon <= switch.epsilon_bound(), "{grid:?}");
            let pack = PackagingReport::columnsort(&switch, Dim::ThreeDee);
            t.row([
                format!("{beta}"),
                grid.n.to_string(),
                grid.r.to_string(),
                grid.s.to_string(),
                switch.epsilon_bound().to_string(),
                eps.worst_epsilon.to_string(),
                switch.delay().to_string(),
                format!("{:.0}", 4.0 * beta * lg(grid.n) + 4.0),
                pack.max_pins_per_chip().to_string(),
                pack.total_chips().to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nevery measured ε is within the (s−1)² bound and every delay matches\n\
         4β lg n + 4 exactly; pins = 2r = 2n^β, chips = 2s = 2n^(1−β)."
    );

    // 3. Directed attack on the tightest small shapes: 64 candidates per
    // compiled netlist sweep.
    println!("\n-- directed attack (batched hill climb on ε) --");
    for (r, s) in [(8usize, 4usize), (16, 4), (16, 8)] {
        let switch = ColumnsortSwitch::new(r, s, r * s);
        let report = epsilon_attack(switch.staged(), 8, 100, 0x5EE4u64);
        assert!(report.best_score <= switch.epsilon_bound());
        println!(
            "{r}x{s}: attacked ε = {} of bound {} ({} evaluations) — {}",
            report.best_score,
            switch.epsilon_bound(),
            report.evaluations,
            if report.best_score == switch.epsilon_bound() {
                "bound is TIGHT"
            } else {
                "holds"
            }
        );
    }
}
