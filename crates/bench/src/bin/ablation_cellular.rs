//! **Ablation**: why the hyperconcentrator's merge network earns its
//! wiring — against the maximally regular alternative, a cellular
//! bubble-compaction lattice (identical nearest-neighbor cells only).
//!
//! Same function, same Θ(n²) cell count; the lattice pays Θ(n) gate
//! delays against the merge network's 2 lg n. At n = 256 that is the
//! difference between a 16-level and a 256-level critical path — the gap
//! that justifies the 1986 chip the paper builds on.

use bench::{banner, TextTable};
use concentrator::{CellularCompactor, Hyperconcentrator};

fn main() {
    banner(
        "Ablation: merge-network hyperconcentrator vs cellular compaction lattice",
        "design justification for the Cormen-Leiserson chip (§1 [1][2])",
    );
    let mut t = TextTable::new([
        "n",
        "merge depth (2 lg n)",
        "lattice depth",
        "ratio",
        "merge gates",
        "lattice gates",
    ]);
    for n in [8usize, 16, 32, 64, 128, 256] {
        let merge = Hyperconcentrator::new(n).build_netlist(false);
        let lattice = CellularCompactor::new(n).build_netlist();
        // Cross-check equivalence on a few patterns before comparing cost.
        for pattern in [0u64, 0x5A5A_5A5A, u64::MAX] {
            let valid: Vec<bool> = (0..n).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
            assert_eq!(merge.eval(&valid), lattice.eval(&valid), "n={n}");
        }
        t.row([
            n.to_string(),
            merge.depth().to_string(),
            lattice.depth().to_string(),
            format!("{:.1}x", lattice.depth() as f64 / merge.depth() as f64),
            merge.area_report().gates.to_string(),
            lattice.area_report().gates.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nthe lattice's only virtue is nearest-neighbor wiring; the merge\n\
         network exchanges that for exponentially shorter critical paths at\n\
         comparable gate count — the premise of every delay bound in the paper."
    );
}
