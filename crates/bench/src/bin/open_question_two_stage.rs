//! **§6 open questions**: "for what functions f(p) can we build an
//! (Ω(f(p)), m, 1 − o(p/m)) partial concentrator switch, given chips with
//! p pins and using only two stages of chips? The Columnsort-based
//! construction, for example, gives us f(p) = p^{2−ε} for any 0 < ε ≤ 1.
//! Can we achieve f(p) = Ω(p²)? In general, how large a function f(p) can
//! we achieve with k stages?"
//!
//! This experiment maps what the paper's own constructions achieve: for a
//! pin budget p and a dirty-bits target ε_load = o(p), the largest n each
//! design supports. It cannot settle the open question (that needs new
//! mathematics), but it makes the frontier concrete.

use bench::{banner, fit_exponent, TextTable};

/// Largest Columnsort (r, s) with 2r ≤ p and (s−1)² ≤ eps_cap, s | r.
fn best_two_stage(p: usize, eps_cap: usize) -> Option<(usize, usize)> {
    let r_max = p / 2;
    let mut best: Option<(usize, usize)> = None;
    // r is a power of two up to r_max; s likewise up to r.
    let mut r = 1usize;
    while r <= r_max {
        let mut s = 1usize;
        while s <= r {
            if r.is_multiple_of(s) && (s - 1) * (s - 1) <= eps_cap {
                let n = r * s;
                if best.is_none_or(|(br, bs)| n > br * bs) {
                    best = Some((r, s));
                }
            }
            s *= 2;
        }
        r *= 2;
    }
    best
}

fn main() {
    banner(
        "Open question: two-stage f(p) frontier",
        "MIT-LCS-TM-322 §6 concluding questions",
    );

    println!("\n-- two stages (Columnsort), requiring ε = (s−1)² ≤ √p (one o(p) choice) --");
    let mut t = TextTable::new([
        "p (pins)",
        "best r",
        "best s",
        "n = f(p)",
        "ε",
        "lg n / lg p",
    ]);
    let mut ps = Vec::new();
    let mut ns = Vec::new();
    for p_exp in 5..=14u32 {
        let p = 1usize << p_exp;
        let eps_cap = (p as f64).sqrt() as usize;
        let Some((r, s)) = best_two_stage(p, eps_cap) else {
            continue;
        };
        let n = r * s;
        ps.push(p as f64);
        ns.push(n as f64);
        t.row([
            p.to_string(),
            r.to_string(),
            s.to_string(),
            n.to_string(),
            ((s - 1) * (s - 1)).to_string(),
            format!("{:.3}", (n as f64).log2() / (p as f64).log2()),
        ]);
    }
    t.print();
    let e = fit_exponent(&ps, &ns);
    println!(
        "achieved exponent with ε ≤ √p: f(p) ~ p^{e:.3} — inside the paper's\n\
         p^(2−ε) family (here ε ≈ {:.2}); Ω(p²) at two stages remains open.",
        2.0 - e
    );

    println!("\n-- trade-off: relaxing the dirty-bits cap buys n --");
    let p = 4096;
    let mut t = TextTable::new(["ε cap", "best r", "best s", "n = f(p)", "exponent vs p"]);
    for cap_exp in [0.25f64, 0.5, 0.75, 1.0] {
        let eps_cap = (p as f64).powf(cap_exp) as usize;
        if let Some((r, s)) = best_two_stage(p, eps_cap) {
            let n = r * s;
            t.row([
                format!("p^{cap_exp}"),
                r.to_string(),
                s.to_string(),
                n.to_string(),
                format!("{:.3}", (n as f64).log2() / (p as f64).log2()),
            ]);
        }
    }
    t.print();

    println!(
        "\n-- three stages (Revsort) for contrast --\n\
         the Revsort switch reaches n = (p/2)² = Θ(p²) inputs from p-pin chips,\n\
         but its dirty window is Θ(n^(3/4)) = Θ(p^(3/2)) — *not* o(p) — so it\n\
         answers a different point of the design space than the open question\n\
         asks about: more stages buy input count, not (directly) load ratio."
    );
}
