//! **Harness throughput**: how many seeded interleavings per second the
//! deterministic simulation harness explores, per scenario, with every
//! model-based oracle enabled.
//!
//! This is the number that prices the CI smoke budget (64 seeds × the
//! scenario catalogue) and the nightly deep-exploration budget: the
//! harness only earns its keep if a full oracle-checked interleaving is
//! cheap. The catalogue includes the elastic-control-plane scenarios
//! (live resize, switch swap, SLO-driven admission), so their extra
//! oracle work — per-frame replay against whichever switch each shard
//! had installed — is priced here too. Wall time is measured with the
//! real clock *around* the runs — inside them, time is purely virtual.

use std::time::Instant;

use bench::{banner, TextTable};
use simtest::{catalogue, explore};

fn main() {
    banner(
        "Simulation harness throughput: oracle-checked interleavings/sec",
        "deterministic virtual-time exploration of the serving fabric (DESIGN.md §10)",
    );
    const SEEDS: u64 = 48;
    let mut t = TextTable::new([
        "scenario",
        "seeds",
        "virtual ticks",
        "frames",
        "wall ms",
        "interleavings/s",
        "ticks/s",
    ]);
    let mut total_runs = 0u64;
    let mut total_wall = 0.0f64;
    let scenarios = catalogue();
    assert!(
        scenarios.iter().any(|s| s.name == "resize-under-drain"),
        "the reconfig scenarios must be priced with the rest of the catalogue"
    );
    for scenario in scenarios {
        let start = Instant::now();
        let report = explore(&scenario, 1..=SEEDS);
        let wall = start.elapsed().as_secs_f64();
        assert!(
            report.passed(),
            "{}: failing seeds {:?}",
            report.scenario,
            report.failures.iter().map(|f| f.seed).collect::<Vec<_>>()
        );
        total_runs += report.runs;
        total_wall += wall;
        t.row([
            report.scenario.clone(),
            report.runs.to_string(),
            report.ticks.to_string(),
            report.frames.to_string(),
            format!("{:.1}", wall * 1e3),
            format!("{:.0}", report.runs as f64 / wall),
            format!("{:.2e}", report.ticks as f64 / wall),
        ]);
    }
    t.print();
    println!(
        "\ntotal: {total_runs} oracle-checked interleavings in {:.2} s ({:.0}/s)",
        total_wall,
        total_runs as f64 / total_wall
    );
}
