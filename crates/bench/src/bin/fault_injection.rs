//! **Extension experiment**: chip-failure degradation of the multichip
//! switches.
//!
//! Not in the paper — but the question its packaging raises: with 3√n
//! chips instead of one, what does a single dead chip cost? We inject
//! stuck-invalid (silent) and stuck-valid (phantom-flooding) failures into
//! each stage and measure delivered fraction at moderate load.

use bench::{banner, TextTable};
use concentrator::faults::{degradation, ChipFault, FaultMode, FaultySwitch};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};

fn main() {
    banner(
        "Chip-failure degradation of the Revsort switch (n = 256, m = 192)",
        "extension: availability of the multichip designs (not in the paper)",
    );
    let switch = RevsortSwitch::new(256, 192, RevsortLayout::TwoDee);
    let healthy = degradation(&switch, 0.5, 400, 0x0F0F);
    println!("healthy delivery at 50% load: {:.1}%\n", healthy * 100.0);

    let mut t = TextTable::new(["fault location", "mode", "delivery", "loss vs healthy"]);
    for stage in 0..3 {
        for mode in [FaultMode::StuckInvalid, FaultMode::StuckValid] {
            let faulty = FaultySwitch::new(
                switch.staged(),
                vec![ChipFault {
                    stage,
                    chip: 2,
                    mode,
                }],
            );
            let rate = degradation(&faulty, 0.5, 400, 0x0F0F);
            t.row([
                format!("stage {} chip 2", stage + 1),
                format!("{mode:?}"),
                format!("{:.1}%", rate * 100.0),
                format!("{:.1} pts", (healthy - rate) * 100.0),
            ]);
            assert!(rate < healthy, "a dead chip must cost something");
            assert!(
                rate > 0.3,
                "a single dead chip must not collapse the switch"
            );
        }
    }
    t.print();

    println!("\nmulti-fault scaling (stuck-invalid chips in stage 1):");
    let mut t = TextTable::new(["dead chips", "delivery"]);
    for dead in 0..=4usize {
        let faults: Vec<ChipFault> = (0..dead)
            .map(|chip| ChipFault {
                stage: 0,
                chip,
                mode: FaultMode::StuckInvalid,
            })
            .collect();
        let faulty = FaultySwitch::new(switch.staged(), faults);
        let rate = degradation(&faulty, 0.5, 300, 0x0F0F);
        t.row([dead.to_string(), format!("{:.1}%", rate * 100.0)]);
    }
    t.print();
    println!(
        "\nstuck-invalid failures degrade gracefully (≈ one column of traffic per\n\
         chip); stuck-valid failures are costlier because phantom carriers steal\n\
         output slots from live messages — the failure mode a builder should\n\
         detect and fence first."
    );
}
