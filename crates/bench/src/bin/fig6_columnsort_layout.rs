//! **Figure 6**: the two-dimensional layout of the Columnsort-based
//! partial concentrator switch with n = 32 inputs (8×4 mesh) and m = 18
//! outputs, routing 14 valid messages — "the output wires are the first
//! five output wires of hyperconcentrator chips H2,0 and H2,1 and the
//! first four output wires of H2,2 and H2,3".

use bench::render::{render_paths, render_stage_flow};
use bench::{banner, TextTable};
use concentrator::spec::ConcentratorSwitch;
use concentrator::verify::SplitMix64;
use concentrator::ColumnsortSwitch;

fn main() {
    banner(
        "Figure 6: 2-D Columnsort switch layout, 8x4 mesh, m = 18, 14 messages",
        "MIT-LCS-TM-322 Figure 6 (§5)",
    );
    let switch = ColumnsortSwitch::new(8, 4, 18);
    println!(
        "structure: 2 stages x 4 chips of 8-by-8 hyperconcentrators joined by\n\
         the RM⁻¹∘CM crossbar; ε = (s−1)² = {}\n",
        switch.epsilon_bound()
    );

    // Output wire split across stage-2 chips, as the caption states:
    // output x (row-major (i,j)) is pin i of chip j. With m = 18 = 4·4+2:
    // chips 0,1 contribute 5 pins; chips 2,3 contribute 4.
    let mut per_chip = [0usize; 4];
    for x in 0..18 {
        per_chip[x % 4] += 1;
    }
    println!("output pins per stage-2 chip: {per_chip:?} (figure: [5, 5, 4, 4])\n");
    assert_eq!(per_chip, [5, 5, 4, 4]);

    // 14 scattered valid messages.
    let mut rng = SplitMix64(0xF166);
    let mut valid = vec![false; 32];
    let mut placed = 0;
    while placed < 14 {
        let i = (rng.next_u64() % 32) as usize;
        if !valid[i] {
            valid[i] = true;
            placed += 1;
        }
    }

    println!("{}", render_stage_flow(switch.staged(), &valid));
    println!("established electrical paths (heavy lines):");
    print!("{}", render_paths(&switch, &valid));

    let routing = switch.route(&valid);
    let mut t = TextTable::new(["quantity", "value"]);
    t.row(["valid messages (k)", "14"]);
    let m = switch.outputs().to_string();
    let routed = routing.routed().to_string();
    let delay = switch.delay().to_string();
    let cap = switch.guaranteed_capacity().to_string();
    t.row(["outputs (m)", m.as_str()]);
    t.row(["guaranteed capacity (m - eps)", cap.as_str()]);
    t.row(["messages delivered", routed.as_str()]);
    t.row(["gate delays", delay.as_str()]);
    t.print();
    // The worst-case guarantee is only m − ε = 9, but as in the figure the
    // typical dirty window is tiny and all 14 messages get paths.
    assert_eq!(
        routing.routed(),
        14,
        "this pattern routes fully, as in the figure"
    );
}
