//! Tier serving bench: the three-tier concentrator tree (64 leaf
//! Revsort fabrics → 8 aggregation Revsort fabrics → 4 §6
//! full-Columnsort spine hyperconcentrators) under a zipf-population
//! workload, measured through the threaded [`tiers::TierService`].
//!
//! Writes `BENCH_tiers.json` at the repository root. Two claims:
//!
//! * the synchronous tree driver is bit-reproducible (the bench drives
//!   a small reference tree twice and asserts identical reports) and
//!   lossless under blocking backpressure;
//! * given enough cores (≥ 4), the 64-leaf tree out-delivers the
//!   slowest single spine serving the whole workload alone — the tree
//!   does more total switch work and wins only by pipelining tiers and
//!   splitting spines across cores, so on narrower hosts the bench
//!   records the measured ratio instead of asserting the gate.
//!
//! Wall-clock rates in the JSON are timing data and vary run to run;
//! the counters (generated, delivered, ledger) are deterministic.

use bench::banner;
use serde_json::{object, ToJson, Value};
use tiers::{drive_tree, reference_tree, run_tree_bench, TierBenchOptions};

fn main() {
    banner(
        "Tier serving: 64-leaf concentrator tree vs a single spine",
        "serving-engine evidence (not a paper artifact)",
    );

    // ---- Determinism: the sync driver on a small tree, twice. --------
    let small = TierBenchOptions::small();
    let topology = reference_tree(4, small.queue_capacity);
    let plan = small.plan();
    let first = drive_tree(&topology, &plan, small.producers, small.ingress_sources);
    let second = drive_tree(&topology, &plan, small.producers, small.ingress_sources);
    assert_eq!(
        first, second,
        "synchronous tree drives must be bit-reproducible"
    );
    assert!(first.snapshot.conserved_end_to_end());
    let ledger = first.snapshot.ledger();
    assert_eq!(
        ledger.delivered, first.generated,
        "blocking tree must be lossless: {ledger:?}"
    );
    println!(
        "sync determinism: 4-leaf tree, {} msgs, {} rounds, bit-identical twice",
        first.generated, first.rounds
    );

    // ---- The 64-leaf zipf tree, threaded. ----------------------------
    let options = TierBenchOptions {
        leaves: 64,
        producers: 4,
        frames: 8,
        ingress_sources: 2048,
        load: 0.6,
        population: 2_000_000,
        exponent: 1.4,
        payload_bytes: 64,
        seed: 0x71E5,
        queue_capacity: 64,
    };
    let report = run_tree_bench(&options);
    println!(
        "64-leaf tree: {} msgs generated, {:.0} msgs/s end to end ({:.1}% shed)",
        report.generated,
        report.msgs_per_sec,
        100.0 * report.shed_fraction
    );
    for tier in &report.per_tier {
        let totals = report.snapshot.tier_totals(tier.tier);
        println!(
            "  tier {} ({:>2} fabrics): {:>8} delivered, {:>10.0} msgs/s, {} frames, {} sweeps",
            tier.tier,
            tier.fabrics,
            tier.delivered,
            tier.msgs_per_sec,
            totals.frames,
            totals.sweeps
        );
    }
    println!(
        "  slowest single spine alone: {:.0} msgs/s ({} cores available)",
        report.slowest_single_spine_msgs_per_sec, report.cores
    );
    if report.cores >= 4 {
        assert!(
            report.tree_beats_slowest_single_spine(),
            "the 3-tier tree must out-deliver the slowest single spine: tree {:.0} msgs/s vs spine {:.0} msgs/s on {} cores",
            report.msgs_per_sec,
            report.slowest_single_spine_msgs_per_sec,
            report.cores
        );
        println!("  gate: tree beats the slowest single spine");
    } else {
        // The tree does strictly more total switch work than one spine
        // and wins by running its tiers and spines in parallel; with
        // fewer than 4 cores that parallelism does not exist, so the
        // ratio is reported as a measurement rather than asserted.
        println!(
            "  gate: skipped ({} cores < 4) — tree/spine ratio {:.2}",
            report.cores,
            report.msgs_per_sec / report.slowest_single_spine_msgs_per_sec.max(1.0)
        );
    }

    // ---- BENCH_tiers.json -------------------------------------------
    let value = object([
        ("benchmark", Value::String("tiers".into())),
        (
            "geometry",
            Value::String(
                "64 leaf Revsort 16->8, 8 aggregation Revsort 64->32, \
                 4 spine full-Columnsort 32x4 (128 wires)"
                    .into(),
            ),
        ),
        (
            "workload",
            Value::String(format!(
                "zipf(p = {}, population = {}, s = {}) over {} sources, {} frames x {} producers, seed {:#x}",
                options.load,
                options.population,
                options.exponent,
                options.ingress_sources,
                options.frames,
                options.producers,
                options.seed
            )),
        ),
        (
            "sync_determinism",
            object([
                ("leaves", 4u64.to_json()),
                ("generated", first.generated.to_json()),
                ("rounds", first.rounds.to_json()),
                ("bit_identical", Value::Bool(true)),
                ("lossless", Value::Bool(ledger.delivered == first.generated)),
            ]),
        ),
        ("report", report.to_json()),
    ]);
    let text = format!("{}\n", serde_json::to_string_pretty(&value).unwrap());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tiers.json");
    std::fs::write(path, &text).expect("write BENCH_tiers.json");
    println!("wrote {path}");
}
