//! **§1**: two claims about how the switch classes relate.
//!
//! 1. "We can make any n-by-m perfect concentrator switch from an n-by-n
//!    hyperconcentrator switch by simply choosing the first m output
//!    wires."
//! 2. "An (n/α, m/α, α) partial concentrator switch can be used anywhere
//!    an n-by-m perfect concentrator switch is required … at the cost of a
//!    1/α-factor increase in the number of input and output wires."

use bench::{banner, TextTable};
use concentrator::spec::{
    check_concentration, ConcentratorKind, ConcentratorSwitch, PerfectFromPartial, Routing,
};
use concentrator::verify::{monte_carlo_check, SplitMix64};
use concentrator::{ColumnsortSwitch, Hyperconcentrator};

/// Claim 1: a hyperconcentrator truncated to its first m outputs.
struct TruncatedHyper {
    inner: Hyperconcentrator,
    m: usize,
}

impl ConcentratorSwitch for TruncatedHyper {
    fn inputs(&self) -> usize {
        self.inner.inputs()
    }
    fn outputs(&self) -> usize {
        self.m
    }
    fn kind(&self) -> ConcentratorKind {
        ConcentratorKind::Perfect
    }
    fn route(&self, valid: &[bool]) -> Routing {
        let full = self.inner.route(valid);
        let assignment = full
            .assignment
            .into_iter()
            .map(|a| a.filter(|&out| out < self.m))
            .collect();
        Routing::from_assignment(assignment, self.m)
    }
}

fn main() {
    banner(
        "Section 1: perfect concentrators from hyper- and partial concentrators",
        "MIT-LCS-TM-322 §1",
    );

    println!("\n-- claim 1: n-by-m perfect from n-by-n hyperconcentrator --");
    let perfect = TruncatedHyper {
        inner: Hyperconcentrator::new(16),
        m: 10,
    };
    let report = monte_carlo_check(&perfect, 2000, 0x11);
    assert!(report.failures.is_empty());
    println!(
        "16-by-10 truncated hyperconcentrator: {} patterns, perfect-concentration OK",
        report.trials
    );

    println!("\n-- claim 2: (n/α, m/α, α) partial in place of n-by-m perfect --");
    // Target: a 24-by-12 perfect concentrator. Use a Columnsort switch over
    // 8×4 = 32 wires with m' = 21 outputs: ε = 9, so guaranteed capacity
    // m' − ε = 12 ≥ 12 = m, and n' = 32 ≥ 24 = n.
    let partial = ColumnsortSwitch::new(8, 4, 21);
    let (n, m) = (24, 12);
    println!(
        "inner switch: {} — n' = {}, m' = {}, α = {:.3}, capacity {}",
        partial.staged().name,
        partial.inputs(),
        partial.outputs(),
        match partial.kind() {
            ConcentratorKind::Partial { alpha } => alpha,
            _ => unreachable!(),
        },
        partial.guaranteed_capacity()
    );
    let adapter = PerfectFromPartial::new(partial, n, m);

    let mut rng = SplitMix64(0x5EC1);
    let mut t = TextTable::new(["k", "delivered", "expected min(k, m)", "ok"]);
    let mut checked = 0usize;
    for trial in 0..4000 {
        let density = (trial % 10) as f64 / 10.0 + 0.05;
        let valid = rng.valid_bits(n, density.min(1.0));
        let violations = check_concentration(&adapter, &valid);
        assert!(
            violations.is_empty(),
            "k = {}: {violations:?}",
            valid.iter().filter(|&&v| v).count()
        );
        checked += 1;
        if trial % 800 == 0 {
            let k = valid.iter().filter(|&&v| v).count();
            let delivered = adapter.route(&valid).routed();
            t.row([
                k.to_string(),
                delivered.to_string(),
                k.min(m).to_string(),
                (delivered == k.min(m)).to_string(),
            ]);
        }
    }
    t.print();
    println!("\n{checked} random patterns: the adapter behaves as a 24-by-12 perfect switch.");
    println!("wire cost: 32/24 = 1.33x inputs, 21/12 = 1.75x outputs (the paper's 1/α factor).");
}
