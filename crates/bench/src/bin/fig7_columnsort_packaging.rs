//! **Figure 7**: the three-dimensional packaging of the Columnsort-based
//! switch for r = 8, s = 4 — two stacks of s boards, one r-by-r
//! hyperconcentrator per board, with s² interstack connectors transposing
//! wire groups between the stacks.

use bench::{banner, fit_exponent, TextTable};
use concentrator::packaging::{Dim, PackagingReport};
use concentrator::ColumnsortSwitch;

fn main() {
    banner(
        "Figure 7: 3-D Columnsort switch packaging (r = 8, s = 4)",
        "MIT-LCS-TM-322 Figure 7 (§5)",
    );
    let switch = ColumnsortSwitch::new(8, 4, 18);
    let report = PackagingReport::columnsort(&switch, Dim::ThreeDee);

    println!("stacks: {}", report.stacks);
    println!(
        "boards: {} ({} per stack)",
        report.total_boards,
        report.total_boards / 2
    );
    for chip in &report.chip_types {
        println!(
            "chip type: {:<30} x{:<3} {} data pins, {} area units",
            chip.name, chip.count, chip.data_pins, chip.area_units
        );
    }
    println!(
        "interstack connectors: {} (s² = 16), each transposing r/s = {} wires",
        report.interstack_connectors,
        switch.shape().rows / switch.shape().cols
    );
    println!("volume: {} units", report.volume_units);
    println!("gate delays: {}", report.gate_delays);

    println!("\nwire grouping between stacks (output rows congruent mod s share a");
    println!("connector): row i of stage-1 chip j joins group i mod 4, e.g. rows");
    println!("0 and 4, rows 1 and 5, rows 2 and 6, rows 3 and 7 (as the figure lists).");

    println!("\nvolume scaling at fixed β = 3/4 (paper: Θ(n^(1+β)) = Θ(n^(7/4))):");
    let configs = [(8usize, 2usize), (64, 4), (512, 8), (4096, 16)];
    let mut t = TextTable::new(["n", "r", "s", "volume units"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &(r, s) in &configs {
        let switch = ColumnsortSwitch::new(r, s, r * s / 2);
        let report = PackagingReport::columnsort(&switch, Dim::ThreeDee);
        xs.push((r * s) as f64);
        ys.push(report.volume_units as f64);
        t.row([
            (r * s).to_string(),
            r.to_string(),
            s.to_string(),
            report.volume_units.to_string(),
        ]);
    }
    t.print();
    let e = fit_exponent(&xs, &ys);
    println!("measured volume exponent: n^{e:.3} (paper: n^1.75)");
    assert!((e - 1.75).abs() < 0.1);
}
