//! **§6**: multichip *hyper*concentrators from the full sorting
//! algorithms.
//!
//! * Full Revsort: ⌈lg lg √n⌉ repetitions of steps 1–3 (≤ 8 dirty rows)
//!   plus a Shearsort finish. The paper claims `2 lg lg n + 4` chip
//!   traversals and `Θ(√n lg lg n)` chips in `Θ(n^{3/2} lg lg n)` volume;
//!   we measure one extra stack (the uniform-direction row phase needed to
//!   turn snake order into row-major compaction) and report both.
//! * Full Columnsort: all eight steps, four chip traversals,
//!   `8β lg n + O(1)` gate delays.

use bench::{banner, lg, TextTable};
use concentrator::packaging::PackagingReport;
use concentrator::verify::{
    exhaustive_check_compiled, monte_carlo_check, monte_carlo_check_compiled,
};
use concentrator::{FullColumnsortHyperconcentrator, FullRevsortHyperconcentrator};

fn main() {
    banner(
        "Section 6: full-Revsort and full-Columnsort hyperconcentrators",
        "MIT-LCS-TM-322 §6",
    );

    println!("\n-- full Revsort --");
    let small = FullRevsortHyperconcentrator::new(16);
    exhaustive_check_compiled(small.staged()).expect("n = 16 exhaustive hyperconcentration");
    println!("n = 16: all 65536 patterns compact exactly (exhaustive, compiled screen)");

    let mut t = TextTable::new([
        "n",
        "reps",
        "traversals (measured)",
        "traversals (paper)",
        "gate delays",
        "paper delay formula",
        "chips",
        "volume",
    ]);
    for n in [16usize, 64, 256, 1024, 4096] {
        let switch = FullRevsortHyperconcentrator::new(n);
        if n > 16 {
            let report = monte_carlo_check_compiled(switch.staged(), 1200, 0x56);
            assert!(
                report.failures.is_empty(),
                "hyperconcentration violated at n = {n}"
            );
        }
        let pack = PackagingReport::full_revsort(&switch);
        // Paper: 4 lg n lg lg n + 8 lg n + O(lg lg n); measured uses
        // per-chip delay 2 lg √n + pads = lg n + 2.
        let paper_delay = 2.0 * lg(n) * lg(lg(n) as usize).max(1.0) + 4.0 * lg(n);
        t.row([
            n.to_string(),
            switch.repetitions().to_string(),
            switch.chip_traversals().to_string(),
            switch.paper_claimed_traversals().to_string(),
            switch.delay().to_string(),
            format!("~{paper_delay:.0}"),
            pack.total_chips().to_string(),
            pack.volume_units.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nmeasured traversals exceed the paper's count by exactly one stack: the\n\
         final uniform-direction row phase that converts Shearsort's snake order\n\
         into row-major compaction. Without it a single dirty row can remain\n\
         sorted right-to-left and the switch is not a hyperconcentrator. The\n\
         paper's delay expression 4 lg n lg lg n + 8 lg n also doubles the\n\
         per-chip delay of its own chips (2 lg √n = lg n); our measured column\n\
         uses the consistent per-chip figure."
    );

    println!("\n-- full Columnsort --");
    let small = FullColumnsortHyperconcentrator::new(8, 2);
    exhaustive_check_compiled(small.staged()).expect("8x2 exhaustive hyperconcentration");
    println!(
        "r = 8, s = 2 (n = 16): all 65536 patterns compact exactly (exhaustive, compiled screen)"
    );

    let mut t = TextTable::new([
        "n",
        "r",
        "s",
        "β",
        "traversals",
        "gate delays",
        "8β lg n + 8",
        "chips",
        "volume",
    ]);
    for (r, s) in [(8usize, 2usize), (32, 4), (128, 8), (512, 8), (2048, 16)] {
        let switch = FullColumnsortHyperconcentrator::new(r, s);
        let n = r * s;
        if n > 16 {
            // The compiled gate-level screen elaborates the whole switch;
            // past n = 4096 the netlist is large enough that the router-
            // based sampler is the better tool, so fall back there.
            let failures = if n <= 4096 {
                monte_carlo_check_compiled(switch.staged(), 800, 0x57).failures
            } else {
                monte_carlo_check(&switch, 800, 0x57).failures
            };
            assert!(failures.is_empty(), "violated at r = {r}, s = {s}");
        }
        let pack = PackagingReport::full_columnsort(&switch);
        let beta = lg(r) / lg(n);
        assert_eq!(
            switch.chip_traversals(),
            4,
            "§6: a signal passes through four chips"
        );
        t.row([
            n.to_string(),
            r.to_string(),
            s.to_string(),
            format!("{beta:.3}"),
            switch.chip_traversals().to_string(),
            switch.delay().to_string(),
            format!("{:.0}", 8.0 * beta * lg(n) + 8.0),
            pack.total_chips().to_string(),
            pack.volume_units.to_string(),
        ]);
    }
    t.print();
    println!("\nfour traversals and 8β lg n + O(1) delays, exactly as §6 states.");
}
