//! **Figure 2**: the converse of Lemma 2 fails — a switch can be a
//! perfectly good `(n, m, 1 − ε/m)` partial concentrator without
//! ε-nearsorting its valid bits.
//!
//! Figure 2's construction: when `k > m − ε` messages arrive, route
//! `m − ε` of them to the first `m` outputs and the remaining `k − m + ε`
//! to the *last* wires of the n-wire vector. The partial-concentration
//! property holds, yet whenever `k + ε < (n + m)/2` the trailing 1s sit
//! further than ε from where sorting would put them.

use bench::{banner, TextTable};
use concentrator::spec::{check_concentration, ConcentratorKind, ConcentratorSwitch, Routing};
use meshsort::{nearsort_epsilon, SortOrder};

/// The adversarial switch of Figure 2.
struct Fig2Switch {
    n: usize,
    m: usize,
    epsilon: usize,
}

impl Fig2Switch {
    /// The full n-wire output vector (not just the m switch outputs).
    fn full_output(&self, valid: &[bool]) -> Vec<bool> {
        let k = valid.iter().filter(|&&v| v).count();
        let mut out = vec![false; self.n];
        if k <= self.m - self.epsilon {
            for slot in out.iter_mut().take(k) {
                *slot = true;
            }
        } else {
            let front = self.m - self.epsilon;
            for slot in out.iter_mut().take(front) {
                *slot = true;
            }
            for slot in out.iter_mut().rev().take(k - front) {
                *slot = true;
            }
        }
        out
    }
}

impl ConcentratorSwitch for Fig2Switch {
    fn inputs(&self) -> usize {
        self.n
    }
    fn outputs(&self) -> usize {
        self.m
    }
    fn kind(&self) -> ConcentratorKind {
        ConcentratorKind::Partial {
            alpha: 1.0 - self.epsilon as f64 / self.m as f64,
        }
    }
    fn route(&self, valid: &[bool]) -> Routing {
        let sources: Vec<usize> = valid
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| v.then_some(i))
            .collect();
        let full = self.full_output(valid);
        let slots: Vec<usize> = full
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| v.then_some(i))
            .collect();
        let mut assignment = vec![None; self.n];
        for (msg, slot) in sources.iter().zip(&slots) {
            if *slot < self.m {
                assignment[*msg] = Some(*slot);
            }
        }
        Routing::from_assignment(assignment, self.m)
    }
}

fn main() {
    banner(
        "Figure 2: a partial concentrator that does not nearsort",
        "MIT-LCS-TM-322 Figure 2 (§3)",
    );
    let switch = Fig2Switch {
        n: 64,
        m: 16,
        epsilon: 2,
    };

    // 1. It IS an (n, m, 1 − ε/m) partial concentrator.
    let mut concentration_failures = 0usize;
    for k in 0..=switch.n {
        let valid: Vec<bool> = (0..switch.n).map(|i| i < k).collect();
        concentration_failures += usize::from(!check_concentration(&switch, &valid).is_empty());
    }
    println!(
        "partial concentration property over all prefix loads k = 0..{}: {} failures",
        switch.n, concentration_failures
    );
    assert_eq!(concentration_failures, 0);

    // 2. Yet its full output vector is NOT ε-nearsorted.
    let mut t = TextTable::new([
        "k",
        "measured eps of full output",
        "claim eps",
        "nearsorted?",
    ]);
    let mut counterexamples = 0;
    for k in [10usize, 15, 16, 20, 30] {
        let valid: Vec<bool> = (0..switch.n).map(|i| i < k).collect();
        let full = switch.full_output(&valid);
        let eps = nearsort_epsilon(&full, SortOrder::Descending);
        let nearsorted = eps <= switch.epsilon;
        counterexamples += usize::from(!nearsorted && k > switch.m - switch.epsilon);
        t.row([
            k.to_string(),
            eps.to_string(),
            switch.epsilon.to_string(),
            nearsorted.to_string(),
        ]);
    }
    t.print();
    println!(
        "\ncounterexamples with k + ε < (n + m)/2 = {}: {counterexamples} (> 0 demonstrates\n\
         that Lemma 2's converse fails, exactly as Figure 2 depicts)",
        (switch.n + switch.m) / 2
    );
    assert!(counterexamples > 0);
}
