//! **Theorem 3**: the Revsort-based construction yields an
//! `(n, m, 1 − O(n^{3/4}/m))` partial concentrator switch.
//!
//! Verified three ways:
//! 1. the dirty-row bound `≤ 2⌈n^{1/4}⌉ − 1` after Algorithm 1
//!    (exhaustively at n = 16, adversarially + Monte Carlo above),
//! 2. the concentration property itself (exhaustive / Monte Carlo +
//!    structured adversaries),
//! 3. the measured worst-case ε against the proven `O(n^{3/4})` bound,
//!
//! plus the `3 lg n + O(1)` delay and `2√n + ⌈(lg n)/2⌉` pin claims.

use bench::{banner, lg, TextTable};
use concentrator::packaging::PackagingReport;
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::search::epsilon_attack;
use concentrator::spec::ConcentratorSwitch;
use concentrator::verify::{
    adversarial_patterns, exhaustive_check_compiled, measure_epsilon, monte_carlo_check_compiled,
    SplitMix64,
};
use meshsort::{algorithm1_report, Grid};

fn main() {
    banner(
        "Theorem 3: the Revsort switch is an (n, m, 1 - O(n^{3/4}/m)) partial concentrator",
        "MIT-LCS-TM-322 Theorem 3 (§4)",
    );

    // 1. Dirty-row bound.
    println!("\n-- dirty rows after Algorithm 1 (bound: 2⌈n^(1/4)⌉ − 1) --");
    let mut t = TextTable::new(["n", "patterns", "worst dirty rows", "bound", "holds"]);
    for side in [4usize, 8, 16, 32] {
        let n = side * side;
        let bound = 2 * (n as f64).powf(0.25).ceil() as usize - 1;
        let mut worst = 0usize;
        let mut patterns = 0usize;
        if n <= 16 {
            for pattern in 0u64..(1u64 << n) {
                let bits: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
                let mut grid = Grid::from_row_major(side, side, bits);
                worst = worst.max(algorithm1_report(&mut grid).dirty_rows);
                patterns += 1;
            }
        } else {
            let mut rng = SplitMix64(side as u64);
            for _ in 0..4000 {
                let density = 0.05 + (rng.next_u64() % 90) as f64 / 100.0;
                let bits = rng.valid_bits(n, density);
                let mut grid = Grid::from_row_major(side, side, bits);
                worst = worst.max(algorithm1_report(&mut grid).dirty_rows);
                patterns += 1;
            }
            for bits in adversarial_patterns(n) {
                let mut grid = Grid::from_row_major(side, side, bits);
                worst = worst.max(algorithm1_report(&mut grid).dirty_rows);
                patterns += 1;
            }
        }
        assert!(worst <= bound, "dirty-row bound violated at n = {n}");
        t.row([
            n.to_string(),
            patterns.to_string(),
            worst.to_string(),
            bound.to_string(),
            "yes".to_string(),
        ]);
    }
    t.print();

    // 2. Concentration property.
    println!("\n-- concentration property --");
    let small = RevsortSwitch::new(16, 16, RevsortLayout::TwoDee);
    exhaustive_check_compiled(small.staged()).expect("n = 16 exhaustive check");
    println!("n = 16, m = 16: all 65536 patterns OK (exhaustive, compiled screen)");
    for (n, m) in [(64usize, 48usize), (256, 200), (1024, 900)] {
        let switch = RevsortSwitch::new(n, m, RevsortLayout::TwoDee);
        let report = monte_carlo_check_compiled(switch.staged(), 3000, 0xC0);
        assert!(report.failures.is_empty(), "violation at n = {n}");
        println!(
            "n = {n}, m = {m} (capacity {}): {} random+adversarial patterns OK",
            switch.guaranteed_capacity(),
            report.trials
        );
    }

    // 3. Measured ε vs proven bound; delay; pins.
    println!("\n-- measured worst-case ε vs proven bound; delay; pins --");
    let mut t = TextTable::new([
        "n",
        "measured eps",
        "proven bound",
        "delay",
        "3 lg n + 6",
        "pins/chip",
        "2√n+⌈lg n/2⌉",
    ]);
    for n in [16usize, 64, 256, 1024] {
        let switch = RevsortSwitch::new(n, n, RevsortLayout::ThreeDee);
        let eps = measure_epsilon(switch.staged(), 2000, 0xE5);
        let pack = PackagingReport::revsort(&switch);
        let side = switch.side();
        let pins_formula = 2 * side + (lg(n) / 2.0).ceil() as usize;
        assert!(eps.worst_epsilon <= switch.epsilon_bound());
        assert_eq!(pack.max_pins_per_chip(), pins_formula);
        t.row([
            n.to_string(),
            eps.worst_epsilon.to_string(),
            switch.epsilon_bound().to_string(),
            switch.delay().to_string(),
            format!("{}", 3 * lg(n) as u32 + 6 + 3),
            pack.max_pins_per_chip().to_string(),
            pins_formula.to_string(),
        ]);
    }
    t.print();
    println!(
        "\n(delay column includes the 3-D layout's hardwired barrel constant;\n\
         the 2-D crossbar layout measures exactly 3 lg n + 6)"
    );

    // 4. Directed attack: batched hill-climb on the nearsorter's ε, 64
    // candidates per compiled netlist sweep.
    println!("\n-- directed attack (batched hill climb on ε) --");
    for n in [64usize, 256] {
        let switch = RevsortSwitch::new(n, n, RevsortLayout::TwoDee);
        let report = epsilon_attack(switch.staged(), 8, 100, 0xA77AC4);
        assert!(report.best_score <= switch.epsilon_bound());
        println!(
            "n = {n}: attacked ε = {} after {} evaluations (proven bound {}) — holds",
            report.best_score,
            report.evaluations,
            switch.epsilon_bound()
        );
    }
}
