//! **Figure 5**: row-major and column-major positions of the elements of a
//! 6×3 matrix — the notation Columnsort's step-2 wiring is defined in.

use bench::banner;
use meshsort::{cm_to_rm_permutation, Grid};

fn main() {
    banner(
        "Figure 5: row-major and column-major numbering of a 6x3 matrix",
        "MIT-LCS-TM-322 Figure 5 (§5)",
    );
    let rows = 6;
    let cols = 3;
    let rm: Grid<usize> = Grid::from_row_major(rows, cols, (0..rows * cols).collect());
    let cm_numbers: Vec<usize> = (0..rows * cols)
        .map(|i| {
            let (r, c) = rm.rm_position(i);
            rm.cm_index(r, c)
        })
        .collect();
    let cm: Grid<usize> = Grid::from_row_major(rows, cols, cm_numbers);

    println!("row-major positions RM(i,j) = 3i + j:");
    print!("{rm}");
    println!("column-major positions CM(i,j) = 6j + i:");
    print!("{cm}");

    println!("step-2 wiring (element at RM position x moves to RM position CM(x)):");
    let perm = cm_to_rm_permutation(rows, cols);
    for (i, &p) in perm.iter().enumerate() {
        print!("{i}->{p} ");
        if (i + 1) % 6 == 0 {
            println!();
        }
    }
    println!();

    // Check against the numbers printed in the figure itself.
    assert_eq!(*cm.get(0, 0), 0);
    assert_eq!(*cm.get(0, 1), 6);
    assert_eq!(*cm.get(0, 2), 12);
    assert_eq!(*cm.get(5, 2), 17);
    assert_eq!(*cm.get(2, 1), 8);
    println!("all spot values match the figure.");
}
