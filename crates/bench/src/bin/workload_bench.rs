//! Workload-engine bench: wait/shed curves for every trace generator
//! family, plus the adversarial-vs-Bernoulli comparison that connects
//! the paper's ε-deficiency bound to serving-tail metrics.
//!
//! Writes `BENCH_workloads.json` at the repository root. Every counter
//! in the `deterministic` section comes from the synchronous
//! [`fabric::trace::drive_sync_trace`] replay of a generated
//! [`fabric::Trace`], so the file is bit-identical across runs of the
//! same binary (asserted by replaying one point twice).
//!
//! Acceptance claims:
//!
//! * every replayed trace conserves (`offered = delivered + drops`);
//! * the ε-attack trace ([`fabric::adversarial_trace`]) is measurably
//!   worse than a rate-matched Bernoulli trace on the same switch —
//!   more messages dropped, or a worse p99 wait. Random traffic at the
//!   same offered load does not find the patterns the search does.

use std::fmt::Write as _;
use std::sync::Arc;

use bench::{banner, TextTable};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::StagedSwitch;
use fabric::trace::{drive_sync_trace, generate};
use fabric::{
    adversarial_trace, AdversarialPlan, Backpressure, Fabric, FabricConfig, RetryBudget, Trace,
    TraceModel,
};

const N: usize = 256;
const M: usize = 128;
const TICKS: u64 = 64;
const SIZE_CLASS: u8 = 3; // 8-byte payloads, matching BENCH_fabric
const SEED: u64 = 0x70AD;

fn staged() -> Arc<StagedSwitch> {
    Arc::new(
        RevsortSwitch::new(N, M, RevsortLayout::TwoDee)
            .staged()
            .clone(),
    )
}

/// The serving configuration every trace replays under: one shard so
/// the m = n/2 capacity bound bites, an ingress queue holding one
/// tick's worth of offers (so shed reflects sustained overload, not an
/// instantaneous burst) with shed-oldest overflow, and a small retry
/// budget so congestion losers become visible drops instead of
/// unbounded re-offers.
fn serving_config() -> FabricConfig {
    let mut config = FabricConfig::new(1);
    config.queue_capacity = N;
    config.backpressure = Backpressure::ShedOldest;
    config.retry = RetryBudget::limited(2);
    config
}

/// One replayed trace's deterministic counters.
struct Point {
    records: u64,
    generated: u64,
    delivered: u64,
    shed: u64,
    rejected: u64,
    retry_dropped: u64,
    p50: u64,
    p99: u64,
}

impl Point {
    fn dropped(&self) -> u64 {
        self.shed + self.rejected + self.retry_dropped
    }

    fn json(&self, load: f64) -> String {
        format!(
            "{{\"load\": {load:.3}, \"records\": {}, \"generated\": {}, \"delivered\": {}, \
             \"shed\": {}, \"rejected\": {}, \"retry_dropped\": {}, \
             \"p50_wait_frames\": {}, \"p99_wait_frames\": {}}}",
            self.records,
            self.generated,
            self.delivered,
            self.shed,
            self.rejected,
            self.retry_dropped,
            self.p50,
            self.p99
        )
    }
}

fn replay(switch: &Arc<StagedSwitch>, trace: &Trace) -> Point {
    let mut fabric = Fabric::new(Arc::clone(switch), serving_config());
    let report = drive_sync_trace(&mut fabric, N, trace);
    assert!(
        report.snapshot.conserved(),
        "trace replay must conserve: {:?}",
        report.snapshot.totals()
    );
    let totals = report.snapshot.totals();
    let (p50, _) = totals.wait_frames.percentile(50.0);
    let (p99, _) = totals.wait_frames.percentile(99.0);
    Point {
        records: trace.len() as u64,
        generated: report.generated,
        delivered: totals.delivered,
        shed: totals.shed,
        rejected: totals.rejected,
        retry_dropped: totals.retry_dropped,
        p50,
        p99,
    }
}

fn model_for(family: &str, p: f64) -> TraceModel {
    match family {
        "diurnal" => TraceModel::Diurnal {
            base: p,
            amplitude: 0.15,
            period: 16,
        },
        "mmpp" => TraceModel::mmpp_from_bursty(p, 4.0),
        "zipf_population" => TraceModel::ZipfPopulation {
            p,
            population: 2_000_000,
            exponent: 1.1,
        },
        other => unreachable!("unknown family {other}"),
    }
}

fn main() {
    banner(
        "Workload engine: wait/shed curves per trace generator family",
        "serving-engine evidence (not a paper artifact)",
    );
    let switch = staged();

    // ---- Determinism: one trace, replayed twice. ---------------------
    let probe = generate(model_for("mmpp", 0.5), N, TICKS, SIZE_CLASS, SEED);
    let mut a = Fabric::new(Arc::clone(&switch), serving_config());
    let mut b = Fabric::new(Arc::clone(&switch), serving_config());
    assert_eq!(
        drive_sync_trace(&mut a, N, &probe).snapshot,
        drive_sync_trace(&mut b, N, &probe).snapshot,
        "trace replays must be bit-reproducible"
    );

    // ---- Wait/shed curves per generator family. ----------------------
    let loads = [0.2, 0.5, 0.8];
    let families = ["diurnal", "mmpp", "zipf_population"];
    let mut table = TextTable::new([
        "family",
        "load",
        "records",
        "delivered",
        "dropped",
        "p50 wait",
        "p99 wait",
    ]);
    let mut curves: Vec<(&str, Vec<(f64, Point)>)> = Vec::new();
    for family in families {
        let mut points = Vec::new();
        for p in loads {
            let trace = generate(model_for(family, p), N, TICKS, SIZE_CLASS, SEED);
            let point = replay(&switch, &trace);
            table.row([
                family.to_string(),
                format!("{p:.1}"),
                point.records.to_string(),
                point.delivered.to_string(),
                point.dropped().to_string(),
                point.p50.to_string(),
                point.p99.to_string(),
            ]);
            points.push((p, point));
        }
        curves.push((family, points));
    }
    table.print();

    // ---- Adversarial vs rate-matched Bernoulli. ----------------------
    // The ε-attack's worst-case input subset, sustained for TICKS ticks,
    // against a memoryless trace with the identical offered load: the
    // search's structure — not its rate — is what hurts the tail.
    let plan = AdversarialPlan {
        restarts: 3,
        rounds: 16,
        seed: SEED,
        ticks: TICKS,
        size_class: SIZE_CLASS,
    };
    let (attack, search) = adversarial_trace(&switch, &plan);
    let offered = attack.offered_load(N);
    let matched = generate(
        TraceModel::Bernoulli { p: offered },
        N,
        TICKS,
        SIZE_CLASS,
        SEED,
    );
    let attack_point = replay(&switch, &attack);
    let matched_point = replay(&switch, &matched);
    println!(
        "adversarial: score {} over {} wires, offered {:.3}/wire — dropped {} p99 {} \
         vs bernoulli dropped {} p99 {}",
        search.best_score,
        N,
        offered,
        attack_point.dropped(),
        attack_point.p99,
        matched_point.dropped(),
        matched_point.p99
    );
    assert!(
        attack_point.dropped() > matched_point.dropped() || attack_point.p99 > matched_point.p99,
        "the attack trace must beat rate-matched Bernoulli on drops or p99 wait: \
         attack dropped {} p99 {}, bernoulli dropped {} p99 {}",
        attack_point.dropped(),
        attack_point.p99,
        matched_point.dropped(),
        matched_point.p99
    );

    // ---- BENCH_workloads.json ----------------------------------------
    let mut json = String::from("{\n  \"benchmark\": \"workloads\",\n");
    let _ = writeln!(
        json,
        "  \"switch\": \"Revsort n={N} m={M} (2-D layout)\",\n  \"workload\": \"{TICKS} ticks x {N} sources, 8-byte payloads, seed {SEED}\",\n  \"serving\": \"1 shard, queue 256, shed-oldest, retry budget 2\","
    );
    json.push_str("  \"deterministic\": {\n    \"curves\": {\n");
    for (f, (family, points)) in curves.iter().enumerate() {
        let _ = writeln!(json, "      \"{family}\": [");
        for (i, (p, point)) in points.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {}{}",
                point.json(*p),
                if i + 1 < points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            json,
            "      ]{}",
            if f + 1 < curves.len() { "," } else { "" }
        );
    }
    json.push_str("    },\n    \"adversarial\": {\n");
    let _ = writeln!(
        json,
        "      \"attack_score\": {},\n      \"search_evaluations\": {},\n      \"offered_load\": {offered:.4},",
        search.best_score, search.evaluations
    );
    let _ = writeln!(json, "      \"attack\": {},", attack_point.json(offered));
    let _ = writeln!(
        json,
        "      \"bernoulli_matched\": {}",
        matched_point.json(offered)
    );
    json.push_str("    }\n  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workloads.json");
    std::fs::write(path, &json).expect("write BENCH_workloads.json");
    println!("wrote {path}");
}
