//! **Figure 4**: the three-dimensional packaging of the Revsort-based
//! switch — three stacks of √n boards, one √n-by-√n hyperconcentrator per
//! board, stage-2 boards followed by a √n-bit barrel shifter whose
//! `⌈lg √n⌉` control bits are hardwired to `rev(i)`.

use bench::{banner, fit_exponent, TextTable};
use concentrator::packaging::PackagingReport;
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use meshsort::rev_bits;

fn main() {
    banner(
        "Figure 4: 3-D Revsort switch packaging (n = 64)",
        "MIT-LCS-TM-322 Figure 4 (§4)",
    );
    let n = 64;
    let side = 8;
    let switch = RevsortSwitch::new(n, 28, RevsortLayout::ThreeDee);
    let report = PackagingReport::revsort(&switch);

    println!("stacks: {} (one per stage)", report.stacks);
    println!(
        "boards: {} total, {} types",
        report.total_boards, report.board_types
    );
    for chip in &report.chip_types {
        println!(
            "chip type: {:<45} x{:<3} {} data pins, {} area units",
            chip.name, chip.count, chip.data_pins, chip.area_units
        );
    }
    println!("volume: {} units", report.volume_units);
    println!("gate delays: {}", report.gate_delays);

    println!("\nhardwired barrel-shifter control values (board i shifts by rev(i)):");
    let mut t = TextTable::new(["board i", "rev(i)", "binary"]);
    for i in 0..side {
        let r = rev_bits(i, 3);
        t.row([i.to_string(), r.to_string(), format!("{r:03b}")]);
    }
    t.print();

    println!("\nvolume scaling (paper: Θ(n^(3/2))):");
    let ns = [64usize, 256, 1024, 4096];
    let mut t = TextTable::new(["n", "boards", "volume units", "pins/chip (max)"]);
    let mut vols = Vec::new();
    for &n in &ns {
        let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::ThreeDee);
        let report = PackagingReport::revsort(&switch);
        vols.push(report.volume_units as f64);
        t.row([
            n.to_string(),
            report.total_boards.to_string(),
            report.volume_units.to_string(),
            report.max_pins_per_chip().to_string(),
        ]);
    }
    t.print();
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let e = fit_exponent(&xs, &vols);
    println!("measured volume exponent: n^{e:.3} (paper: n^1.5)");
    assert!((e - 1.5).abs() < 0.05);
}
