//! **§1 design comparison**: the motivating trade-off between the three
//! hyperconcentration options the paper discusses —
//!
//! 1. the single-chip combinational hyperconcentrator (2 lg n delays,
//!    Θ(n²) area, 2n data pins: does not partition),
//! 2. the parallel-prefix + butterfly multichip hyperconcentrator
//!    ("O(n lg n) chips and as few as four data pins per chip, but this
//!    switch is not combinational"),
//! 3. the paper's partial concentrators (combinational, Θ(n/p) chips).

use bench::{banner, TextTable};
use concentrator::packaging::{Dim, PackagingReport};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::verify::SplitMix64;
use concentrator::{ColumnsortSwitch, Hyperconcentrator, PrefixButterflyHyperconcentrator};

fn main() {
    banner(
        "Section 1: hyperconcentrator vs prefix+butterfly vs partial concentrators",
        "MIT-LCS-TM-322 §1 (design space)",
    );

    let mut t = TextTable::new([
        "n",
        "design",
        "chips",
        "pins/chip",
        "combinational?",
        "setup (cycles)",
        "data delay (gates)",
        "guarantee",
    ]);
    for n in [256usize, 1024, 4096] {
        let single = Hyperconcentrator::new(n);
        t.row([
            n.to_string(),
            "single-chip hyper".into(),
            "1 (infeasible)".into(),
            (2 * n).to_string(),
            "yes".into(),
            "0".into(),
            single.chip_delay().to_string(),
            "perfect".into(),
        ]);

        let pb = PrefixButterflyHyperconcentrator::new(n);
        t.row([
            n.to_string(),
            "prefix+butterfly".into(),
            pb.chip_count().to_string(),
            pb.data_pins_per_switch_chip().to_string(),
            "NO".into(),
            pb.setup_cycles().to_string(),
            pb.levels().to_string(),
            "perfect".into(),
        ]);

        let revsort = RevsortSwitch::new(n, n / 2, RevsortLayout::ThreeDee);
        let pack = PackagingReport::revsort(&revsort);
        t.row([
            n.to_string(),
            "Revsort partial".into(),
            pack.total_chips().to_string(),
            pack.max_pins_per_chip().to_string(),
            "yes".into(),
            "0".into(),
            revsort.delay().to_string(),
            format!("α·m = {}", revsort.guaranteed_capacity()),
        ]);

        let side = (n as f64).sqrt() as usize;
        let cs = ColumnsortSwitch::new(side * 4, side / 4, n / 2);
        let pack = PackagingReport::columnsort(&cs, Dim::ThreeDee);
        t.row([
            n.to_string(),
            "Columnsort partial".into(),
            pack.total_chips().to_string(),
            pack.max_pins_per_chip().to_string(),
            "yes".into(),
            "0".into(),
            cs.delay().to_string(),
            format!("α·m = {}", cs.guaranteed_capacity()),
        ]);
    }
    t.print();

    // Functional agreement: the prefix+butterfly switch IS a
    // hyperconcentrator; cross-check against the combinational chip.
    let n = 64;
    let chip = Hyperconcentrator::new(n);
    let pb = PrefixButterflyHyperconcentrator::new(n);
    let mut rng = SplitMix64(0xBA5E);
    for _ in 0..2000 {
        let valid = rng.valid_bits(n, 0.5);
        assert_eq!(chip.route(&valid), pb.route(&valid));
        // And the butterfly program really delivers (panics on conflict).
        let _ = pb.program(&valid);
    }
    println!(
        "\nfunctional cross-check: prefix+butterfly routing == combinational chip\n\
         routing on 2000 random patterns at n = 64 (butterfly conflict-free).\n\n\
         reading: the prefix+butterfly design wins on pins (4/chip) but pays\n\
         O(n lg n) chips and a multi-cycle latched setup; the paper's partial\n\
         concentrators keep zero-setup combinational routing at Θ(n/p) chips by\n\
         trading away a slice of capacity — §1's argument, in numbers."
    );
}
