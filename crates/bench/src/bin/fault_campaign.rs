//! Fault-injection campaigns: degraded capacity on the compiled fault
//! path, and fabric failover through a mid-run chip failure.
//!
//! Writes `BENCH_faults.json` at the repository root. Everything in it is
//! deterministic: campaign schedules are pure functions of the seed, the
//! campaign executor runs the fault-compiled 64-lane SWAR path, and the
//! failover story is driven through the synchronous [`fabric::Fabric`] —
//! the bench runs each twice and asserts bit-identical results before
//! writing anything.
//!
//! Headline claims pinned here:
//!
//! * Degraded capacity falls monotonically-ish with the permanent-fault
//!   rate, and the quiet (rate-0) campaign delivers at the healthy rate.
//! * A fabric survives a mid-run permanent chip failure: the sick shard
//!   is quarantined by its health monitor, new traffic steers to the
//!   healthy shards, conservation holds exactly, and total loss stays
//!   bounded.

use std::fmt::Write as _;
use std::sync::Arc;

use bench::{banner, TextTable};
use concentrator::faults::{
    run_campaign, CampaignReport, CampaignSpec, ChipFault, FaultCampaign, FaultMode,
};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::StagedSwitch;
use fabric::{
    drive_sync_faulted, Backpressure, DriveReport, Fabric, FabricConfig, FaultEvent, LoadPlan,
    RetryBudget,
};
use switchsim::TrafficModel;

const SEED: u64 = 0xFA57_CA11;
const FRAMES: usize = 64;
const DENSITY: f64 = 0.5;

fn staged(n: usize, m: usize) -> Arc<StagedSwitch> {
    Arc::new(
        RevsortSwitch::new(n, m, RevsortLayout::TwoDee)
            .staged()
            .clone(),
    )
}

fn campaign_at(switch: &StagedSwitch, permanent_rate: f64) -> CampaignReport {
    let spec = CampaignSpec {
        seed: SEED,
        frames: FRAMES,
        permanent_rate,
        intermittent_rate: permanent_rate / 2.0,
        intermittent_period: 16,
        transient_rate: permanent_rate / 4.0,
    };
    run_campaign(switch, &FaultCampaign::generate(switch, &spec), DENSITY)
}

/// The fabric failover story: two shards, a permanent four-chip failure
/// lands on shard 0 at frame 16 of 48, the health monitor quarantines it,
/// and the drive still drains with exact conservation.
fn failover(switch: &Arc<StagedSwitch>) -> DriveReport {
    let mut config = FabricConfig::new(2);
    config.retry = RetryBudget::limited(2);
    config.backpressure = Backpressure::ShedOldest;
    let mut fabric = Fabric::new(Arc::clone(switch), config);
    let plan = LoadPlan {
        model: TrafficModel::Bernoulli { p: 0.6 },
        payload_bytes: 4,
        seed: SEED ^ 0xBEEF,
        frames: 48,
    };
    // Kill every first-stage chip of shard 0's switch mid-run: a whole
    // chip row goes dark, exactly the failure a stack designer fears.
    let schedule = vec![FaultEvent {
        frame: 16,
        shard: 0,
        faults: (0..switch.stages[0].chip_count)
            .map(|chip| ChipFault {
                stage: 0,
                chip,
                mode: FaultMode::StuckInvalid,
            })
            .collect(),
    }];
    drive_sync_faulted(&mut fabric, switch.n, &plan, &schedule)
}

fn main() {
    banner(
        "Fault-injection campaigns: compiled fault path + fabric failover",
        "availability evidence (not a paper artifact)",
    );

    // ---- Degraded capacity vs fault rate (compiled SWAR path). -------
    let switch = staged(64, 48);
    let rates = [0.0, 0.02, 0.05, 0.1, 0.2];
    let mut table = TextTable::new([
        "permanent rate",
        "fault sets",
        "delivered",
        "delivery rate",
        "worst frame",
    ]);
    let mut curve = Vec::new();
    for &rate in &rates {
        let report = campaign_at(&switch, rate);
        table.row([
            format!("{rate:.2}"),
            report.distinct_fault_sets.to_string(),
            format!("{}/{}", report.delivered, report.offered),
            format!("{:.4}", report.delivery_rate()),
            format!("{:.4}", report.worst_frame_rate()),
        ]);
        curve.push((rate, report));
    }
    table.print();

    // Reproducibility: the same seed redraws the same campaign and the
    // compiled path re-delivers the same counts, bit for bit.
    assert_eq!(
        campaign_at(&switch, 0.05),
        campaign_at(&switch, 0.05),
        "campaign reports must be reproducible under a fixed seed"
    );
    // The quiet campaign is the healthy switch: with m = 48 ≥ offered
    // load it delivers everything the capacity bound admits.
    let quiet_rate = curve[0].1.delivery_rate();
    let worst_rate = curve.last().unwrap().1.delivery_rate();
    assert!(
        quiet_rate > worst_rate,
        "injecting faults must cost capacity ({quiet_rate} vs {worst_rate})"
    );

    // ---- Fabric failover through a mid-run chip failure. -------------
    let fab_switch = staged(16, 8);
    let first = failover(&fab_switch);
    let second = failover(&fab_switch);
    assert_eq!(
        first.snapshot, second.snapshot,
        "failover drives must be bit-reproducible"
    );
    assert!(first.snapshot.conserved(), "conservation must hold exactly");
    let totals = first.snapshot.totals();
    assert!(
        totals.quarantines >= 1,
        "the health monitor must quarantine the faulted shard"
    );
    let loss = (totals.dropped() as f64) / (totals.offered as f64);
    assert!(
        loss < 0.5,
        "losing one shard of two must not cost half the traffic (lost {loss:.3})"
    );
    println!(
        "failover: {} offered, {} delivered, {} dropped ({:.1}% loss), {} quarantine(s), {} quarantined frame(s)",
        totals.offered,
        totals.delivered,
        totals.dropped(),
        loss * 100.0,
        totals.quarantines,
        totals.quarantined_frames
    );

    // ---- BENCH_faults.json -------------------------------------------
    let mut json = String::from("{\n  \"benchmark\": \"faults\",\n");
    let _ = writeln!(
        json,
        "  \"switch\": \"Revsort n=64 m=48 (2-D layout)\",\n  \"seed\": {SEED},\n  \"frames\": {FRAMES},\n  \"density\": {DENSITY},"
    );
    json.push_str("  \"degradation_vs_rate\": [\n");
    for (i, (rate, report)) in curve.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"permanent_rate\": {rate:.2}, \"distinct_fault_sets\": {}, \"offered\": {}, \"delivered\": {}, \"delivery_rate\": {:.6}, \"worst_frame_rate\": {:.6}}}{}",
            report.distinct_fault_sets,
            report.offered,
            report.delivered,
            report.delivery_rate(),
            report.worst_frame_rate(),
            if i + 1 < curve.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"failover\": {\n");
    let _ = writeln!(
        json,
        "    \"switch\": \"Revsort n=16 m=8, 2 shards, fault at frame 16\",\n    \"offered\": {},\n    \"delivered\": {},\n    \"dropped\": {},\n    \"loss_fraction\": {:.6},\n    \"quarantines\": {},\n    \"quarantined_frames\": {},\n    \"conserved\": {}",
        totals.offered,
        totals.delivered,
        totals.dropped(),
        loss,
        totals.quarantines,
        totals.quarantined_frames,
        first.snapshot.conserved()
    );
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, &json).expect("write BENCH_faults.json");
    println!("wrote {path}");
}
