//! Render the paper's layout figures (3, 4, 6, 7) as SVG files under
//! `results/`, from the *placed* geometric layouts (every chip, channel,
//! and board at integer coordinates, overlap-checked), and print the
//! geometric area/volume measurements next to the unit-model ones.

use std::fs;

use bench::banner;
use concentrator::layout::{
    columnsort_layout_2d, columnsort_layout_3d, revsort_layout_2d, revsort_layout_3d,
};
use concentrator::packaging::{Dim, PackagingReport};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::ColumnsortSwitch;

fn main() {
    banner(
        "Geometric layouts of Figures 3, 4, 6, 7 (SVG)",
        "MIT-LCS-TM-322 Figures 3/4/6/7 as placed geometry",
    );
    fs::create_dir_all("results").expect("create results dir");

    let revsort2 = RevsortSwitch::new(64, 28, RevsortLayout::TwoDee);
    let layout = revsort_layout_2d(&revsort2);
    layout.validate();
    fs::write("results/fig3_layout.svg", layout.to_svg()).expect("write fig3 svg");
    println!(
        "fig3 (Revsort 2-D, n=64): bounding area {} λ², chips {} λ², wiring {} λ² -> results/fig3_layout.svg",
        layout.area(),
        layout.chip_area(),
        layout.wiring_area()
    );

    let revsort3 = RevsortSwitch::new(64, 28, RevsortLayout::ThreeDee);
    let layout = revsort_layout_3d(&revsort3);
    layout.validate();
    assert!(
        layout.has_air_gaps(),
        "Figure 4 packaging must be air-coolable"
    );
    fs::write("results/fig4_layout.svg", layout.to_svg_side_view()).expect("write fig4 svg");
    let pack = PackagingReport::revsort(&revsort3);
    println!(
        "fig4 (Revsort 3-D, n=64): geometric volume {} λ³ (unit model {}), air gaps ok -> results/fig4_layout.svg",
        layout.volume(),
        pack.volume_units
    );

    let columnsort = ColumnsortSwitch::new(8, 4, 18);
    let layout = columnsort_layout_2d(&columnsort);
    layout.validate();
    fs::write("results/fig6_layout.svg", layout.to_svg()).expect("write fig6 svg");
    println!(
        "fig6 (Columnsort 2-D, 8x4): bounding area {} λ² -> results/fig6_layout.svg",
        layout.area()
    );

    let layout = columnsort_layout_3d(&columnsort);
    layout.validate();
    assert!(layout.has_air_gaps());
    fs::write("results/fig7_layout.svg", layout.to_svg_side_view()).expect("write fig7 svg");
    let pack = PackagingReport::columnsort(&columnsort, Dim::ThreeDee);
    println!(
        "fig7 (Columnsort 3-D, 8x4): geometric volume {} λ³ (unit model {}) -> results/fig7_layout.svg",
        layout.volume(),
        pack.volume_units
    );
}
