//! Fabric serving bench: the batching win, latency-vs-load curves, and
//! multichip shard scaling for the sharded concentrator-switch serving
//! engine.
//!
//! Writes `BENCH_fabric.json` at the repository root. The file separates
//! two kinds of data:
//!
//! * `deterministic` sections — counters (deliveries, sweeps, wait
//!   percentiles) produced by the synchronous [`fabric::Fabric`]. These
//!   are bit-identical on every run of the same binary (the bench
//!   re-runs the reference workload and asserts it).
//! * `timing` sections — wall-clock throughput, which varies run to run
//!   and is explicitly excluded from the reproducibility claim.
//!
//! Two acceptance claims:
//!
//! * at n = 1024 the batched engine moves ≥ 10× the messages per second
//!   of the one-request-per-sweep baseline on the same workload (it wins
//!   on sweep count by far more);
//! * the multichip scaling ladder ([`fabric::scaling`]) — the same
//!   aggregate 1024 → 512 fabric served as 1/2/4/8 Columnsort chips on
//!   thread-per-shard lanes under constant offered load — is monotone in
//!   msgs/s, with the 8-chip rung ≥ 3× the single-chip rung.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bench::{banner, TextTable};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::StagedSwitch;
use fabric::{drive_sync, drive_sync_unbatched, DriveReport, Fabric, FabricConfig, LoadPlan};
use switchsim::TrafficModel;

const N: usize = 1024;
const M: usize = 512;
const PAYLOAD_BYTES: usize = 8; // 64 payload cycles: one full SWAR sweep
const SEED: u64 = 0xFAB0;

fn staged() -> Arc<StagedSwitch> {
    Arc::new(
        RevsortSwitch::new(N, M, RevsortLayout::TwoDee)
            .staged()
            .clone(),
    )
}

fn plan(p: f64, frames: usize) -> LoadPlan {
    LoadPlan {
        model: TrafficModel::Bernoulli { p },
        payload_bytes: PAYLOAD_BYTES,
        seed: SEED,
        frames,
    }
}

struct Timed {
    report: DriveReport,
    secs: f64,
}

fn run_batched(switch: &Arc<StagedSwitch>, shards: usize, p: f64, frames: usize) -> Timed {
    let mut fabric = Fabric::new(Arc::clone(switch), FabricConfig::new(shards));
    let started = Instant::now();
    let report = drive_sync(&mut fabric, N, &plan(p, frames));
    Timed {
        report,
        secs: started.elapsed().as_secs_f64(),
    }
}

fn main() {
    banner(
        "Fabric serving: batched SWAR sweeps vs one-request-per-sweep",
        "serving-engine evidence (not a paper artifact)",
    );
    let switch = staged();

    // ---- Determinism: the reference workload, driven twice. ----------
    let first = run_batched(&switch, 2, 0.5, 12);
    let second = run_batched(&switch, 2, 0.5, 12);
    assert_eq!(
        first.report.snapshot, second.report.snapshot,
        "synchronous drives must be bit-reproducible"
    );
    assert!(first.report.snapshot.conserved());

    // ---- The batching win at n = 1024. -------------------------------
    let batched = first;
    let started = Instant::now();
    let mut unbatched_fabric = Fabric::new(Arc::clone(&switch), FabricConfig::new(2));
    let unbatched_report = drive_sync_unbatched(&mut unbatched_fabric, N, &plan(0.5, 12));
    let unbatched = Timed {
        report: unbatched_report,
        secs: started.elapsed().as_secs_f64(),
    };
    let b = batched.report.snapshot.totals();
    let u = unbatched.report.snapshot.totals();
    assert_eq!(batched.report.delivered, batched.report.generated);
    assert_eq!(unbatched.report.delivered, unbatched.report.generated);
    assert_eq!(
        batched.report.generated, unbatched.report.generated,
        "both engines must serve the identical workload"
    );
    let batched_mps = b.delivered as f64 / batched.secs;
    let unbatched_mps = u.delivered as f64 / unbatched.secs;
    let throughput_ratio = batched_mps / unbatched_mps;
    let sweep_ratio = u.sweeps as f64 / b.sweeps as f64;
    println!(
        "n={N}: {} msgs  batched {:.0} msgs/s ({} sweeps)  unbatched {:.0} msgs/s ({} sweeps)  throughput x{:.1}  sweeps x{:.1}",
        batched.report.generated, batched_mps, b.sweeps, unbatched_mps, u.sweeps, throughput_ratio, sweep_ratio
    );
    assert!(
        throughput_ratio >= 10.0,
        "batched engine must be >= 10x the unbatched baseline, got {throughput_ratio:.1}x"
    );

    // ---- Wait percentiles vs offered load. ---------------------------
    // One shard so the m = n/2 capacity bound actually bites: above 50%
    // offered load, congestion losers retry and the wait tail grows.
    let mut load_table = TextTable::new(["load", "generated", "delivered", "p50 wait", "p99 wait"]);
    let mut load_rows = Vec::new();
    for p in [0.2, 0.5, 0.8, 1.0] {
        let timed = run_batched(&switch, 1, p, 12);
        let totals = timed.report.snapshot.totals();
        let (p50, p50_lb) = totals.wait_frames.percentile(50.0);
        let (p99, p99_lb) = totals.wait_frames.percentile(99.0);
        load_table.row([
            format!("{p:.1}"),
            timed.report.generated.to_string(),
            totals.delivered.to_string(),
            format!("{p50}{}", if p50_lb { "+" } else { "" }),
            format!("{p99}{}", if p99_lb { "+" } else { "" }),
        ]);
        load_rows.push((p, timed.report.generated, totals.delivered, p50, p99));
    }
    load_table.print();

    // ---- Sync shard split (same workload, more shards). --------------
    // Deterministic sweep/frame counters from the synchronous engine:
    // how the fixed workload's sweeps divide as shard count grows.
    let mut scale_rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let timed = run_batched(&switch, shards, 0.5, 12);
        let totals = timed.report.snapshot.totals();
        scale_rows.push((shards, totals.sweeps, totals.frames));
    }

    // ---- Multichip scaling ladder (threaded data plane). -------------
    // The paper's decomposition as a serving strategy: the same
    // aggregate 1024 -> 512 fabric served as k Columnsort chips, one
    // thread-per-shard lane each, constant offered load. Smaller chips
    // mean superlinearly smaller sort networks, so throughput must rise
    // with chip count even on one core; on multicore hosts the
    // independent lanes compound it.
    let ladder = fabric::scaling::ladder(N, &[1, 2, 4, 8], 2, 8, 0.5, PAYLOAD_BYTES, SEED);
    let mut ladder_table = TextTable::new([
        "chips",
        "chip n->m",
        "delivered",
        "msgs/s (wall)",
        "speedup",
        "efficiency",
    ]);
    let base_mps = ladder.points[0].msgs_per_sec();
    for (i, point) in ladder.points.iter().enumerate() {
        ladder_table.row([
            point.chips.to_string(),
            format!("{}->{}", point.chip_inputs, point.chip_outputs),
            point.delivered.to_string(),
            format!("{:.0}", point.msgs_per_sec()),
            format!("{:.2}x", point.msgs_per_sec() / base_mps),
            format!("{:.3}", ladder.efficiency(i)),
        ]);
    }
    ladder_table.print();
    for window in ladder.points.windows(2) {
        assert!(
            window[1].msgs_per_sec() >= window[0].msgs_per_sec(),
            "scaling ladder must be monotone: {} chips {:.0} msgs/s < {} chips {:.0} msgs/s",
            window[1].chips,
            window[1].msgs_per_sec(),
            window[0].chips,
            window[0].msgs_per_sec()
        );
    }
    let last = ladder.points.last().unwrap();
    assert!(
        last.msgs_per_sec() >= 3.0 * base_mps,
        "8-chip rung must be >= 3x the 1-chip rung, got {:.2}x",
        last.msgs_per_sec() / base_mps
    );

    // ---- BENCH_fabric.json ------------------------------------------
    let mut json = String::from("{\n  \"benchmark\": \"fabric\",\n");
    let _ = writeln!(
        json,
        "  \"switch\": \"Revsort n={N} m={M} (2-D layout)\",\n  \"workload\": \"Bernoulli, {PAYLOAD_BYTES}-byte payloads, seed {SEED}\","
    );
    json.push_str("  \"deterministic\": {\n");
    let _ = writeln!(
        json,
        "    \"generated\": {},\n    \"delivered\": {},\n    \"batched_sweeps\": {},\n    \"unbatched_sweeps\": {},\n    \"sweep_ratio\": {:.2},",
        batched.report.generated, b.delivered, b.sweeps, u.sweeps, sweep_ratio
    );
    json.push_str("    \"wait_vs_load\": [\n");
    for (i, (p, generated, delivered, p50, p99)) in load_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"load\": {p:.1}, \"generated\": {generated}, \"delivered\": {delivered}, \"p50_wait_frames\": {p50}, \"p99_wait_frames\": {p99}}}{}",
            if i + 1 < load_rows.len() { "," } else { "" }
        );
    }
    json.push_str("    ],\n    \"shard_scaling\": [\n");
    for (i, (shards, sweeps, frames)) in scale_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"shards\": {shards}, \"sweeps\": {sweeps}, \"frames\": {frames}}}{}",
            if i + 1 < scale_rows.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"timing_not_reproducible\": {\n");
    let _ = writeln!(
        json,
        "    \"batched_msgs_per_sec\": {batched_mps:.0},\n    \"unbatched_msgs_per_sec\": {unbatched_mps:.0},\n    \"throughput_ratio\": {throughput_ratio:.1},\n    \"cores\": {},",
        ladder.cores
    );
    let _ = writeln!(
        json,
        "    \"scaling_ladder\": \"aggregate {N}->{M} as k Columnsort chips, thread-per-shard, constant offered load\","
    );
    json.push_str("    \"shard_scaling_msgs_per_sec\": [\n");
    for (i, point) in ladder.points.iter().enumerate() {
        let per_shard: Vec<String> = point
            .per_shard
            .iter()
            .map(|s| {
                format!(
                    "{{\"shard\": {}, \"delivered\": {}, \"msgs_per_sec\": {:.0}, \"utilization\": {:.3}}}",
                    s.shard, s.delivered, s.msgs_per_sec, s.utilization
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "      {{\"shards\": {}, \"chip_inputs\": {}, \"chip_outputs\": {}, \"delivered\": {}, \"msgs_per_sec\": {:.0}, \"scaling_efficiency\": {:.3}, \"per_shard\": [{}]}}{}",
            point.chips,
            point.chip_inputs,
            point.chip_outputs,
            point.delivered,
            point.msgs_per_sec(),
            ladder.efficiency(i),
            per_shard.join(", "),
            if i + 1 < ladder.points.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json");
    std::fs::write(path, &json).expect("write BENCH_fabric.json");
    println!("wrote {path}");
}
