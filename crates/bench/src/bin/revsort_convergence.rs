//! **§6 convergence**: "Schnorr and Shamir show that if steps 1–3 of
//! Algorithm 1 are repeated ⌈lg lg √n⌉ times, the resulting matrix
//! contains at most eight dirty rows."
//!
//! This experiment watches the dirty-row band shrink iteration by
//! iteration (the d → O(√d) squaring that gives the lg lg bound) across
//! mesh sizes and adversarial densities.

use bench::{banner, TextTable};
use concentrator::verify::{adversarial_patterns, SplitMix64};
use meshsort::{dirty_row_band, revsort_repetitions, revsort_steps123, Grid, SortOrder};

fn worst_dirty_after(side: usize, iterations: usize, trials: usize) -> usize {
    let n = side * side;
    let mut worst = 0usize;
    let mut rng = SplitMix64(side as u64 * 31 + iterations as u64);
    let patterns: Vec<Vec<bool>> = (0..trials)
        .map(|t| {
            let density = 0.05 + 0.9 * (t as f64 / trials as f64);
            rng.valid_bits(n, density)
        })
        .chain(adversarial_patterns(n))
        .collect();
    for bits in patterns {
        let mut grid = Grid::from_row_major(side, side, bits);
        for _ in 0..iterations {
            revsort_steps123(&mut grid, SortOrder::Descending);
        }
        // The band is counted after a column sort (as the bound states).
        grid.sort_columns(SortOrder::Descending);
        let (_, dirty, _) = dirty_row_band(&grid);
        worst = worst.max(dirty);
    }
    worst
}

fn main() {
    banner(
        "Revsort convergence: dirty rows per repetition of steps 1-3",
        "MIT-LCS-TM-322 §6 (via Schnorr-Shamir): ≤ 8 dirty rows after ⌈lg lg √n⌉ reps",
    );

    let mut t = TextTable::new([
        "√n",
        "n",
        "⌈lg lg √n⌉",
        "after 1 rep",
        "after 2",
        "after 3",
        "after 4",
        "≤8 at prescribed reps",
    ]);
    for side in [8usize, 16, 32, 64, 128] {
        let reps = revsort_repetitions(side);
        let worst: Vec<usize> = (1..=4).map(|it| worst_dirty_after(side, it, 400)).collect();
        let at_prescribed = worst[reps.min(4) - 1];
        assert!(
            at_prescribed <= 8,
            "√n = {side}: {at_prescribed} dirty rows after {reps} reps"
        );
        t.row([
            side.to_string(),
            (side * side).to_string(),
            reps.to_string(),
            worst[0].to_string(),
            worst[1].to_string(),
            worst[2].to_string(),
            worst[3].to_string(),
            "yes".to_string(),
        ]);
    }
    t.print();
    println!(
        "\nthe band contracts superlinearly between repetitions (d -> O(√d)),\n\
         and at the prescribed ⌈lg lg √n⌉ repetitions it is within §6's\n\
         eight-row bound at every size tested (worst over 400 random densities\n\
         plus the structured adversarial patterns)."
    );
}
