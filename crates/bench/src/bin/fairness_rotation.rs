//! **Extension experiment**: positional fairness under overload.
//!
//! Not in the paper — but a direct consequence of its designs that a
//! machine builder must know: the mesh nearsorters decide survivors by
//! *wire position* when overloaded, so the same processors win frame
//! after frame. One hardwired rotation stage (the same barrel-shifter
//! hardware Figure 4 already uses) restores fairness without touching the
//! concentration guarantee.

use bench::{banner, TextTable};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::ColumnsortSwitch;
use switchsim::{measure_fairness, RotatingSwitch};

fn main() {
    banner(
        "Fairness under overload, with and without input rotation",
        "extension: positional bias of the mesh nearsorters (not in the paper)",
    );

    let mut t = TextTable::new([
        "switch",
        "load",
        "Jain index (plain)",
        "spread (plain)",
        "Jain (rotating)",
        "spread (rotating)",
    ]);
    for load in [0.5f64, 0.9] {
        let plain = ColumnsortSwitch::new(8, 4, 8);
        let base = measure_fairness(&plain, load, 600, 0xFA12);
        let rotating = RotatingSwitch::new(ColumnsortSwitch::new(8, 4, 8));
        let fixed = measure_fairness(&rotating, load, 600, 0xFA12);
        t.row([
            "Columnsort 32->8".to_string(),
            format!("{load}"),
            format!("{:.3}", base.jain_index()),
            format!("{:.3}", base.ratio_spread()),
            format!("{:.3}", fixed.jain_index()),
            format!("{:.3}", fixed.ratio_spread()),
        ]);
        assert!(fixed.jain_index() >= base.jain_index());

        let plain = RevsortSwitch::new(64, 16, RevsortLayout::TwoDee);
        let base = measure_fairness(&plain, load, 600, 0xFA13);
        let rotating = RotatingSwitch::new(RevsortSwitch::new(64, 16, RevsortLayout::TwoDee));
        let fixed = measure_fairness(&rotating, load, 600, 0xFA13);
        t.row([
            "Revsort 64->16".to_string(),
            format!("{load}"),
            format!("{:.3}", base.jain_index()),
            format!("{:.3}", base.ratio_spread()),
            format!("{:.3}", fixed.jain_index()),
            format!("{:.3}", fixed.ratio_spread()),
        ]);
    }
    t.print();
    println!(
        "\nplain switches leave some processors starved at overload (spread up\n\
         to the full 0..1 range); the rotating wrapper equalizes them at the\n\
         cost of one more hardwired barrel stage. Below guaranteed capacity\n\
         fairness is moot — everything is delivered."
    );
}
