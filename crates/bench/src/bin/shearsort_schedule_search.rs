//! **§6 diagnosis**: how many Shearsort stacks does the full-Revsort
//! hyperconcentrator actually need?
//!
//! The paper finishes full Revsort with "three iterations of the Shearsort
//! algorithm" and counts `2 lg lg n + 4` chip traversals; our construction
//! measures one more stack (a final uniform-direction row phase). This
//! experiment searches the schedule space empirically: for each candidate
//! (pairs, final-uniform-row) schedule it hunts for an ≤ 8-dirty-row input
//! that the schedule fails to compact — certifying which schedules work
//! and which the paper's count would correspond to.

use bench::{banner, TextTable};
use concentrator::verify::SplitMix64;
use meshsort::{shearsort, Grid, ShearsortSchedule, SortOrder};

/// Hunt for a failing ≤ `band`-dirty-row input; None = schedule survived.
fn find_failure(
    side: usize,
    band: usize,
    schedule: ShearsortSchedule,
    trials: usize,
) -> Option<Vec<bool>> {
    let mut rng = SplitMix64(side as u64 * 1000 + schedule.pairs as u64);
    for trial in 0..trials {
        let clean_top = (rng.next_u64() % (side as u64 - band as u64)) as usize;
        let dirty = 1 + (trial % band);
        let mut bits = Vec::with_capacity(side * side);
        for row in 0..side {
            for _ in 0..side {
                if row < clean_top {
                    bits.push(true);
                } else if row < clean_top + dirty {
                    bits.push(rng.next_u64().is_multiple_of(2));
                } else {
                    bits.push(false);
                }
            }
        }
        let mut grid = Grid::from_row_major(side, side, bits.clone());
        shearsort(&mut grid, SortOrder::Descending, schedule);
        if !SortOrder::Descending.is_sorted(grid.as_row_major()) {
            return Some(bits);
        }
    }
    None
}

fn main() {
    banner(
        "Shearsort schedule search: what finishes an ≤8-dirty-row matrix?",
        "MIT-LCS-TM-322 §6 traversal-count diagnosis",
    );

    let mut t = TextTable::new(["schedule", "stacks", "16x16", "32x32", "64x64"]);
    let candidates = [
        ShearsortSchedule {
            pairs: 2,
            final_uniform_row: false,
        },
        ShearsortSchedule {
            pairs: 3,
            final_uniform_row: false,
        },
        ShearsortSchedule {
            pairs: 2,
            final_uniform_row: true,
        },
        ShearsortSchedule {
            pairs: 3,
            final_uniform_row: true,
        },
        ShearsortSchedule {
            pairs: 4,
            final_uniform_row: false,
        },
    ];
    let mut verdicts = Vec::new();
    for schedule in candidates {
        let mut row = vec![
            format!(
                "{} pairs{}",
                schedule.pairs,
                if schedule.final_uniform_row {
                    " + uniform row"
                } else {
                    ""
                }
            ),
            schedule.stacks().to_string(),
        ];
        let mut all_ok = true;
        for side in [16usize, 32, 64] {
            let failure = find_failure(side, 8, schedule, 4000);
            all_ok &= failure.is_none();
            row.push(match failure {
                None => "sorts".to_string(),
                Some(_) => "FAILS".to_string(),
            });
        }
        verdicts.push((schedule, all_ok));
        t.row(row);
    }
    t.print();

    // The paper's implied 6-stack schedule (3 pairs, no direction fix)
    // must fail somewhere, and our 7-stack schedule must survive.
    let three_pairs_bare = verdicts
        .iter()
        .find(|(s, _)| s.pairs == 3 && !s.final_uniform_row)
        .expect("candidate present");
    let paper_finish = verdicts
        .iter()
        .find(|(s, _)| *s == ShearsortSchedule::paper_finish())
        .expect("candidate present");
    assert!(
        !three_pairs_bare.1,
        "if 3 bare pairs sufficed, the paper's 2 lg lg n + 4 count would stand as written"
    );
    assert!(
        paper_finish.1,
        "our shipping schedule must survive the search"
    );

    println!(
        "\nverdict: three snake pairs alone (the 6 stacks implied by the paper's\n\
         2 lg lg n + 4 count) leave inputs whose final dirty row is sorted in\n\
         the wrong direction; one uniform-direction row stack (or equivalently\n\
         snake-ordered output wiring, which the paper does not describe) fixes\n\
         every case found. Hence our measured 2⌈lg lg √n⌉ + 7 traversals."
    );
}
