//! **Ablation** (DESIGN.md §5): what the wide-gate (ratioed nMOS / domino
//! CMOS) technology assumption buys the hyperconcentrator chip.
//!
//! The paper's `2 lg n` per-chip delay counts an arbitrarily wide AND/OR
//! plane as one gate delay. This ablation re-prices the same netlist under
//! bounded fan-in (2 and 4): depth grows from `2 lg n` toward `Θ(lg² n)`
//! and the gate count rises, quantifying why the 1986 chip is specified in
//! wide-NOR technology.

use bench::{banner, TextTable};
use concentrator::Hyperconcentrator;

fn main() {
    banner(
        "Ablation: wide fan-in vs bounded fan-in in the hyperconcentrator chip",
        "delay model justification for the 2 lg n per-chip figure (§1, [1][2])",
    );
    let mut t = TextTable::new([
        "n",
        "depth (wide)",
        "2⌈lg n⌉",
        "depth (fan-in 4)",
        "depth (fan-in 2)",
        "gates (wide)",
        "gates (fan-in 2)",
        "max fan-in",
    ]);
    for n in [8usize, 16, 32, 64, 128, 256] {
        let chip = Hyperconcentrator::new(n);
        let nl = chip.build_netlist(false);
        let area = nl.area_report();
        let lg_n = usize::BITS - (n - 1).leading_zeros();
        assert_eq!(nl.depth(), 2 * lg_n);
        t.row([
            n.to_string(),
            nl.depth().to_string(),
            (2 * lg_n).to_string(),
            nl.depth_bounded_fanin(4).to_string(),
            nl.depth_bounded_fanin(2).to_string(),
            area.gates.to_string(),
            nl.gates_bounded_fanin(2).to_string(),
            area.max_fan_in.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nwide gates hold the chip at exactly 2 lg n levels; bounding fan-in at 2\n\
         multiplies depth by ~lg n (the widest OR spans n/2+1 terms) and roughly\n\
         doubles the gate count. The paper's delay claims are meaningful only\n\
         under the wide-gate convention, which the netlist model makes explicit."
    );
}
