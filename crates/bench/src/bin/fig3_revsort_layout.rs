//! **Figure 3**: the two-dimensional layout of the Revsort-based partial
//! concentrator switch with n = 64 inputs and m = 28 outputs, routing 24
//! valid messages — "the electrical paths established by 24 valid messages
//! are shown with heavy lines".
//!
//! The output wires are the top four of chips H3,0..H3,3 and the top three
//! of H3,4..H3,7 (the first 28 wires of the matrix in row-major order,
//! m mod √n = 4).

use bench::render::{render_paths, render_stage_flow};
use bench::{banner, TextTable};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::verify::SplitMix64;

fn main() {
    banner(
        "Figure 3: 2-D Revsort switch layout, n = 64, m = 28, 24 messages",
        "MIT-LCS-TM-322 Figure 3 (§4)",
    );
    let switch = RevsortSwitch::new(64, 28, RevsortLayout::TwoDee);
    println!(
        "structure: 3 stages x 8 chips of 8-by-8 hyperconcentrators;\n\
         outputs = first 28 wires in row-major order (top 4 pins of chips\n\
         H3,0..H3,3; top 3 pins of H3,4..H3,7)\n"
    );

    // A deterministic scattered pattern of exactly 24 valid inputs that —
    // like the figure's pattern — routes completely. (Not every 24-message
    // pattern does: the worst-case guarantee at n = 64, m = 28 is weaker.
    // The search below is deterministic and reported.)
    let mut seed = 0xF163u64;
    let valid = loop {
        let mut rng = SplitMix64(seed);
        let mut valid = vec![false; 64];
        let mut placed = 0;
        while placed < 24 {
            let i = (rng.next_u64() % 64) as usize;
            if !valid[i] {
                valid[i] = true;
                placed += 1;
            }
        }
        if switch.route(&valid).routed() == 24 {
            break valid;
        }
        seed += 1;
    };
    println!("pattern seed: {seed:#x} (first seed whose 24 messages all route)\n");

    println!("{}", render_stage_flow(switch.staged(), &valid));
    println!("established electrical paths (heavy lines):");
    print!("{}", render_paths(&switch, &valid));

    let routing = switch.route(&valid);
    let mut t = TextTable::new(["quantity", "value"]);
    t.row(["valid messages (k)".to_string(), "24".to_string()]);
    t.row(["outputs (m)".to_string(), switch.outputs().to_string()]);
    t.row([
        "messages delivered".to_string(),
        routing.routed().to_string(),
    ]);
    t.row(["gate delays".to_string(), switch.delay().to_string()]);
    t.print();

    assert_eq!(
        routing.routed(),
        24,
        "Figure 3 shows all 24 messages routed; k = 24 <= m = 28 and the\n\
         observed dirty window never reaches this pattern's boundary"
    );
    println!("\nall 24 messages delivered, as the figure's heavy lines show.");
}
