//! **Table 1**: resource measures for the Revsort-based partial
//! concentrator switch and the Columnsort-based switch at β ∈ {1/2, 5/8,
//! 3/4} — pins per chip, chip count, load ratio, gate delays, and volume.
//!
//! The paper's table is asymptotic; we construct real switches over a size
//! sweep, measure each quantity, fit the growth exponent, and compare it
//! to the paper's Θ-exponent. Gate delays are compared exactly (the paper
//! gives exact leading coefficients).

use bench::grids::{beta_grids, SQUARE_NS};
use bench::{banner, fit_exponent, lg, TextTable};
use concentrator::packaging::{Dim, PackagingReport};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::ColumnsortSwitch;

struct DesignRow {
    n: usize,
    pins: usize,
    chips: usize,
    epsilon: usize,
    delay: u32,
    volume: u64,
}

fn print_design(name: &str, rows: &[DesignRow], paper: &PaperColumn) {
    println!("\n### {name}");
    let mut t = TextTable::new([
        "n",
        "pins/chip",
        "chips",
        "eps (load ratio = 1 - eps/m)",
        "gate delays",
        "paper delay",
        "volume",
    ]);
    for row in rows {
        t.row([
            row.n.to_string(),
            row.pins.to_string(),
            row.chips.to_string(),
            row.epsilon.to_string(),
            row.delay.to_string(),
            format!("{:.0}+O(1)", paper.delay_coeff * lg(row.n)),
            row.volume.to_string(),
        ]);
    }
    t.print();

    let ns: Vec<f64> = rows.iter().map(|r| r.n as f64).collect();
    let fits = [
        (
            "pins/chip",
            rows.iter().map(|r| r.pins as f64).collect::<Vec<_>>(),
            paper.pins_exp,
        ),
        (
            "chip count",
            rows.iter().map(|r| r.chips as f64).collect::<Vec<_>>(),
            paper.chips_exp,
        ),
        (
            "epsilon",
            rows.iter().map(|r| r.epsilon as f64).collect::<Vec<_>>(),
            paper.eps_exp,
        ),
        (
            "volume",
            rows.iter().map(|r| r.volume as f64).collect::<Vec<_>>(),
            paper.volume_exp,
        ),
    ];
    println!("growth exponents (measured vs paper Θ):");
    for (what, ys, expected) in fits {
        let measured = fit_exponent(&ns, &ys);
        println!(
            "  {what:<11} measured n^{measured:.3}   paper n^{expected:.3}   {}",
            if (measured - expected).abs() < 0.15 {
                "OK"
            } else {
                "MISMATCH"
            }
        );
    }
    let delay_coeffs: Vec<f64> = rows.iter().map(|r| r.delay as f64 / lg(r.n)).collect();
    println!(
        "delay leading coefficient: measured -> {:.2} lg n (largest n), paper {} lg n + O(1)",
        delay_coeffs.last().unwrap(),
        paper.delay_coeff
    );
}

struct PaperColumn {
    pins_exp: f64,
    chips_exp: f64,
    eps_exp: f64,
    volume_exp: f64,
    delay_coeff: f64,
}

fn main() {
    banner("Table 1: resource measures", "MIT-LCS-TM-322 Table 1 (§5)");

    // Revsort column.
    let rows: Vec<DesignRow> = SQUARE_NS
        .iter()
        .map(|&n| {
            let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::ThreeDee);
            let pack = PackagingReport::revsort(&switch);
            DesignRow {
                n,
                pins: pack.max_pins_per_chip(),
                chips: pack.total_chips(),
                epsilon: switch.epsilon_bound(),
                delay: switch.delay(),
                volume: pack.volume_units,
            }
        })
        .collect();
    print_design(
        "Revsort switch",
        &rows,
        &PaperColumn {
            pins_exp: 0.5,
            chips_exp: 0.5,
            eps_exp: 0.75,
            volume_exp: 1.5,
            delay_coeff: 3.0,
        },
    );

    // Columnsort columns at β = 1/2, 5/8, 3/4.
    for (label, num, den, beta) in [
        ("Columnsort, β = 1/2", 1u32, 2u32, 0.5f64),
        ("Columnsort, β = 5/8", 5, 8, 0.625),
        ("Columnsort, β = 3/4", 3, 4, 0.75),
    ] {
        let rows: Vec<DesignRow> = beta_grids(num, den)
            .into_iter()
            .filter(|g| g.n <= 1 << 16)
            .map(|g| {
                let switch = ColumnsortSwitch::new(g.r, g.s, g.n / 2);
                let pack = PackagingReport::columnsort(&switch, Dim::ThreeDee);
                DesignRow {
                    n: g.n,
                    pins: pack.max_pins_per_chip(),
                    chips: pack.total_chips(),
                    epsilon: switch.epsilon_bound(),
                    delay: switch.delay(),
                    volume: pack.volume_units,
                }
            })
            .collect();
        print_design(
            label,
            &rows,
            &PaperColumn {
                pins_exp: beta,
                chips_exp: 1.0 - beta,
                eps_exp: 2.0 - 2.0 * beta,
                volume_exp: 1.0 + beta,
                delay_coeff: 4.0 * beta,
            },
        );
    }

    println!(
        "\nNote: for β = 3/4 the load-ratio column of the paper's Table 1 prints\n\
         1 − O(n^(1/4)/m); Theorem 4's formula 1 − O(n^(2−2β)/m) gives n^(1/2),\n\
         which is what the construction achieves (ε = (s−1)², s = n^(1/4)).\n\
         We reproduce the theorem's value."
    );
}
