//! **Figure 1 / Lemma 1**: the structure of an ε-nearsorted 0/1 sequence —
//! a clean run of at least `k − ε` 1s, a dirty run of at most `2ε` bits,
//! and a clean run of at least `n − k − ε` 0s.
//!
//! We push random valid-bit matrices through the nearsorters underlying
//! both switches, measure each output's decomposition, and check Lemma 1's
//! inequalities against the measured ε.

use bench::{banner, TextTable};
use concentrator::verify::SplitMix64;
use meshsort::{
    clean_dirty_split, columnsort_steps123, nearsort_epsilon, revsort_algorithm1, Grid, SortOrder,
};

fn main() {
    banner(
        "Figure 1: clean/dirty structure of nearsorted valid bits",
        "MIT-LCS-TM-322 Figure 1 and Lemma 1 (§3)",
    );

    let mut rng = SplitMix64(0xF161);
    let mut table = TextTable::new([
        "nearsorter",
        "n",
        "k",
        "clean 1s",
        "dirty",
        "clean 0s",
        "measured eps",
        "k-eps <= clean1",
        "dirty <= 2eps",
    ]);

    let mut worst_violations = 0usize;
    for trial in 0..12 {
        let density = 0.15 + 0.07 * trial as f64;
        // Revsort nearsorter on 16×16.
        let side = 16;
        let bits = rng.valid_bits(side * side, density);
        let mut grid = Grid::from_row_major(side, side, bits);
        revsort_algorithm1(&mut grid, SortOrder::Descending);
        worst_violations += report_row(&mut table, "Revsort Alg.1", grid.as_row_major());

        // Columnsort steps 1-3 on 32×8.
        let (r, s) = (32, 8);
        let bits = rng.valid_bits(r * s, density);
        let mut grid = Grid::from_row_major(r, s, bits);
        columnsort_steps123(&mut grid, SortOrder::Descending);
        worst_violations += report_row(&mut table, "Columnsort 1-3", grid.as_row_major());
    }
    table.print();
    println!(
        "\nLemma 1 violations: {worst_violations} (must be 0 — every ε-nearsorted\n\
         sequence decomposes as Figure 1 shows)"
    );
    assert_eq!(worst_violations, 0);
}

fn report_row(table: &mut bench::TextTable, name: &str, bits: &[bool]) -> usize {
    let n = bits.len();
    let split = clean_dirty_split(bits);
    let eps = nearsort_epsilon(bits, SortOrder::Descending);
    let lemma_prefix = split.clean_ones + eps >= split.ones;
    let lemma_dirty = split.dirty_len <= 2 * eps || eps == 0 && split.dirty_len == 0;
    table.row([
        name.to_string(),
        n.to_string(),
        split.ones.to_string(),
        split.clean_ones.to_string(),
        split.dirty_len.to_string(),
        split.clean_zeros.to_string(),
        eps.to_string(),
        lemma_prefix.to_string(),
        lemma_dirty.to_string(),
    ]);
    usize::from(!split.satisfies_lemma1(n, eps))
}
