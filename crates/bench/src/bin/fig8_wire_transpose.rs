//! **Figure 8**: transposing w wires from vertical to horizontal alignment
//! in Θ(w²) volume — the interstack connectors of the Columnsort switch's
//! three-dimensional packaging.

use bench::{banner, fit_exponent, TextTable};
use concentrator::packaging::InterstackConnector;

fn main() {
    banner(
        "Figure 8: w-wire vertical-to-horizontal transposition, w = 4",
        "MIT-LCS-TM-322 Figure 8 (§5)",
    );
    let connector = InterstackConnector { wires: 4 };
    println!("each wire enters vertically, bends once (+), and leaves horizontally:\n");
    println!("{}", connector.render());
    println!("volume: {} units (w² = 16)", connector.volume_units());

    println!("\nconnector volume scaling (paper: Θ(w²)):");
    let ws = [4usize, 8, 16, 32, 64];
    let mut t = TextTable::new(["w", "volume units"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &w in &ws {
        let c = InterstackConnector { wires: w };
        xs.push(w as f64);
        ys.push(c.volume_units() as f64);
        t.row([w.to_string(), c.volume_units().to_string()]);
    }
    t.print();
    let e = fit_exponent(&xs, &ys);
    println!("measured exponent: w^{e:.3} (paper: w^2)");
    assert!((e - 2.0).abs() < 1e-9);
}
