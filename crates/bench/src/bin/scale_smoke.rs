//! Scale smoke test: construct the largest practical switches and push
//! bulk traffic through them, exercising the rayon-parallel verification
//! paths — evidence the library handles sizes far beyond the exhaustive
//! test range.

use std::time::Instant;

use bench::{banner, TextTable};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::verify::{monte_carlo_check, monte_carlo_check_compiled};
use concentrator::ColumnsortSwitch;
use rayon::prelude::*;

fn main() {
    banner(
        "Scale smoke: large-n construction, routing, and verification",
        "scaling evidence (not a paper artifact)",
    );

    let mut t = TextTable::new([
        "switch",
        "n",
        "build (ms)",
        "routes/s (parallel)",
        "MC patterns",
        "failures",
    ]);
    for (label, n) in [("revsort", 16384usize), ("revsort", 65536)] {
        let started = Instant::now();
        let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
        let build_ms = started.elapsed().as_millis();

        let routes = 512usize;
        let started = Instant::now();
        let total: usize = (0..routes)
            .into_par_iter()
            .map(|seed| {
                let valid = concentrator::verify::SplitMix64(seed as u64).valid_bits(n, 0.5);
                switch.route(&valid).routed()
            })
            .sum();
        assert!(total > 0);
        let rate = routes as f64 / started.elapsed().as_secs_f64();

        let report = monte_carlo_check(&switch, 400, 0x5CA1E);
        assert!(report.failures.is_empty());
        t.row([
            label.to_string(),
            n.to_string(),
            build_ms.to_string(),
            format!("{rate:.0}"),
            report.trials.to_string(),
            report.failures.len().to_string(),
        ]);
    }
    for (r, s) in [(4096usize, 16usize), (8192, 16)] {
        let n = r * s;
        let started = Instant::now();
        let switch = ColumnsortSwitch::new(r, s, n / 2);
        let build_ms = started.elapsed().as_millis();
        let routes = 256usize;
        let started = Instant::now();
        let total: usize = (0..routes)
            .into_par_iter()
            .map(|seed| {
                let valid = concentrator::verify::SplitMix64(seed as u64).valid_bits(n, 0.5);
                switch.route(&valid).routed()
            })
            .sum();
        assert!(total > 0);
        let rate = routes as f64 / started.elapsed().as_secs_f64();
        let report = monte_carlo_check(&switch, 200, 0x5CA1F);
        assert!(report.failures.is_empty());
        t.row([
            format!("columnsort {r}x{s}"),
            n.to_string(),
            build_ms.to_string(),
            format!("{rate:.0}"),
            report.trials.to_string(),
            report.failures.len().to_string(),
        ]);
    }
    t.print();

    // Gate-level verification at scale: the compiled batch screen
    // elaborates the full switch netlist and checks 64 patterns per sweep,
    // falling back to the exact router only on flagged suspects.
    let mut t = TextTable::new([
        "switch",
        "n",
        "MC patterns (compiled)",
        "patterns/s",
        "failures",
    ]);
    for n in [1024usize, 4096] {
        let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
        let started = Instant::now();
        let report = monte_carlo_check_compiled(switch.staged(), 1000, 0x5CA20);
        let rate = report.trials as f64 / started.elapsed().as_secs_f64();
        assert!(report.failures.is_empty());
        t.row([
            "revsort".to_string(),
            n.to_string(),
            report.trials.to_string(),
            format!("{rate:.0}"),
            report.failures.len().to_string(),
        ]);
    }
    {
        let (r, s) = (256usize, 16usize);
        let n = r * s;
        let switch = ColumnsortSwitch::new(r, s, n / 2);
        let started = Instant::now();
        let report = monte_carlo_check_compiled(switch.staged(), 1000, 0x5CA21);
        let rate = report.trials as f64 / started.elapsed().as_secs_f64();
        assert!(report.failures.is_empty());
        t.row([
            format!("columnsort {r}x{s}"),
            n.to_string(),
            report.trials.to_string(),
            format!("{rate:.0}"),
            report.failures.len().to_string(),
        ]);
    }
    t.print();
    println!("\nno guarantee violations at any scale tested.");
}
