//! **Extension experiment**: analytical loss model vs simulation.
//!
//! The VLSI report this memo appeared in holds simulators to a standard —
//! "an analytical model … that agrees with network simulation results to
//! within 5%" (its k-ary n-cube study). We hold our concentration-stage
//! simulator to the same standard: under Bernoulli offers and the drop
//! policy the stage is memoryless, so an exact binomial model over the
//! switch's delivery curve must match the simulator across the whole load
//! range.

use bench::{banner, TextTable};
use concentrator::ColumnsortSwitch;
use switchsim::traffic::TrafficGenerator;
use switchsim::{
    measure_delivery_curve, predict_drop, ConcentrationStage, CongestionPolicy, TrafficModel,
};

fn main() {
    banner(
        "Analytical drop-policy model vs simulation (must agree within 5%)",
        "methodology standard of the surrounding 1987 report (k-ary n-cube study)",
    );
    let n = 64;
    let switch = ColumnsortSwitch::new(16, 4, 16);
    let curve = measure_delivery_curve(&switch, 120, 0x40DE);
    println!(
        "switch: {} (guaranteed capacity {})\n",
        switch.staged().name,
        concentrator::spec::ConcentratorSwitch::guaranteed_capacity(&switch)
    );

    let mut t = TextTable::new([
        "load p",
        "model delivered/frame",
        "simulated",
        "relative error",
        "within 5%",
    ]);
    let mut worst = 0.0f64;
    for &p in &[0.05f64, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9] {
        let prediction = predict_drop(n, p, |k| curve[k].round() as usize);
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p }, n, 1, 0x51D);
        let mut stage = ConcentrationStage::new(&switch, CongestionPolicy::Drop);
        let report = stage.run(&mut generator, 6000);
        let simulated = report.stats.delivered as f64 / report.stats.frames as f64;
        let relative = (simulated - prediction.delivered_per_frame).abs() / simulated.max(1e-9);
        worst = worst.max(relative);
        t.row([
            format!("{p:.2}"),
            format!("{:.2}", prediction.delivered_per_frame),
            format!("{simulated:.2}"),
            format!("{:.2}%", relative * 100.0),
            (relative < 0.05).to_string(),
        ]);
        assert!(relative < 0.05, "model and simulation diverged at p = {p}");
    }
    t.print();
    println!(
        "\nworst relative error across the sweep: {:.2}% (< 5%)",
        worst * 100.0
    );
}
