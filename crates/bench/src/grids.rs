//! Parameter grids for the sweeps: the (n, r, s) shapes at which each
//! design is constructed.

/// Sweep sizes for the Revsort switch and β = 1/2 Columnsort switch
/// (square meshes with power-of-two sides).
pub const SQUARE_NS: [usize; 5] = [16, 64, 256, 1024, 4096];

/// A Columnsort grid: `(n, r, s)` with `r·s = n`, `s | r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnsortGrid {
    /// Total inputs.
    pub n: usize,
    /// Rows (pins per chip side).
    pub r: usize,
    /// Columns (chips per stage).
    pub s: usize,
}

/// Grids realizing `r = n^β` exactly for `n = 2^k` with `βk` integral.
pub fn beta_grids(beta_num: u32, beta_den: u32) -> Vec<ColumnsortGrid> {
    let mut grids = Vec::new();
    for k in 4..=20u32 {
        if !(k * beta_num).is_multiple_of(beta_den) {
            continue;
        }
        let rk = k * beta_num / beta_den;
        let sk = k - rk;
        if rk < sk {
            continue; // β < 1/2 is out of the theorem's range
        }
        let r = 1usize << rk;
        let s = 1usize << sk;
        if !r.is_multiple_of(s) {
            continue;
        }
        grids.push(ColumnsortGrid { n: r * s, r, s });
    }
    grids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_half_gives_squares() {
        let grids = beta_grids(1, 2);
        assert!(grids.iter().all(|g| g.r == g.s && g.r * g.s == g.n));
        assert!(grids.len() >= 4);
    }

    #[test]
    fn beta_five_eighths_grids_divide() {
        let grids = beta_grids(5, 8);
        assert!(!grids.is_empty());
        for g in grids {
            assert_eq!(g.r * g.s, g.n);
            assert_eq!(g.r % g.s, 0);
            let beta = (g.r as f64).log2() / (g.n as f64).log2();
            assert!((beta - 0.625).abs() < 1e-9, "grid {g:?} has β {beta}");
        }
    }

    #[test]
    fn beta_three_quarters_grids_divide() {
        let grids = beta_grids(3, 4);
        assert!(grids.len() >= 3);
        for g in grids {
            let beta = (g.r as f64).log2() / (g.n as f64).log2();
            assert!((beta - 0.75).abs() < 1e-9);
        }
    }
}
