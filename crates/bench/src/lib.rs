//! Experiment harness: shared plumbing for the binaries that regenerate
//! every table and figure of MIT-LCS-TM-322.
//!
//! Each `src/bin/*.rs` target regenerates one artifact (see DESIGN.md's
//! per-experiment index); this library holds the shared measurement and
//! formatting code so the binaries stay declarative.

use std::fmt::Display;

pub mod grids;
pub mod render;

/// Least-squares slope of `log y` against `log x` — the measured growth
/// exponent to compare with the paper's `Θ(n^e)` claims.
///
/// ```
/// let xs: [f64; 4] = [16.0, 64.0, 256.0, 1024.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
/// let e = bench::fit_exponent(&xs, &ys);
/// assert!((e - 1.5).abs() < 1e-9);
/// ```
pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit a slope");
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(
        var > 0.0,
        "exponent fit needs at least two distinct x values"
    );
    cov / var
}

/// `lg n` as f64.
pub fn lg(n: usize) -> f64 {
    (n as f64).log2()
}

/// A plain-text table printer with right-aligned columns.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; each cell is formatted with `Display`.
    pub fn row<I: IntoIterator<Item = V>, V: Display>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Banner for experiment output, tying it back to the paper artifact.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("==========================================================================");
    println!("{experiment}");
    println!("reproduces: {paper_ref}");
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_fit_recovers_power_laws() {
        let xs = [4.0, 16.0, 64.0, 256.0];
        for e in [0.5, 1.0, 1.75] {
            let ys: Vec<f64> = xs.iter().map(|x: &f64| 7.0 * x.powf(e)).collect();
            assert!((fit_exponent(&xs, &ys) - e).abs() < 1e-9);
        }
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(["n", "value"]);
        t.row([16.to_string(), "abc".to_string()]);
        t.row([1024.to_string(), "z".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[3].ends_with("z"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }
}
