//! ASCII renderings of switch layouts (Figures 3 and 6).

use concentrator::spec::ConcentratorSwitch;
use concentrator::StagedSwitch;

/// Render a stage-by-stage picture of a staged switch routing a given
/// valid-bit pattern: each stage shows its chips' output pins with `#` for
/// wires carrying messages and `.` for idle wires, annotated with the
/// message's source input where one is present.
pub fn render_stage_flow(switch: &StagedSwitch, valid: &[bool]) -> String {
    let mut out = String::new();
    let mut wires: Vec<(bool, Option<usize>)> = valid
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, v.then_some(i)))
        .collect();
    out.push_str(&format!(
        "inputs ({} valid of {}):\n  {}\n",
        valid.iter().filter(|&&v| v).count(),
        valid.len(),
        wires
            .iter()
            .map(|&(v, _)| if v { '#' } else { '.' })
            .collect::<String>()
    ));
    // Re-trace stage by stage using the public trace on progressively
    // truncated switches is wasteful; instead rebuild the cumulative trace.
    for upto in 1..=switch.stages.len() {
        let partial = StagedSwitch::new(
            switch.name.clone(),
            switch.n,
            switch.stages[upto - 1].out_len,
            switch.kind,
            switch.stages[..upto].to_vec(),
            (0..switch.stages[upto - 1].out_len).collect(),
        );
        let traced = partial.trace(valid);
        let stage = &switch.stages[upto - 1];
        out.push_str(&format!(
            "after {} ({} chips x {} pins):\n  {}\n",
            stage.label,
            stage.chip_count,
            stage.chip_pins,
            traced
                .iter()
                .map(|&(v, _)| if v { '#' } else { '.' })
                .collect::<String>()
        ));
        wires = traced;
    }
    let delivered: Vec<String> = switch
        .output_positions
        .iter()
        .enumerate()
        .filter_map(|(out_idx, &pos)| {
            let (v, src) = wires[pos];
            (v && src.is_some()).then(|| format!("Y{} <- X{}", out_idx, src.unwrap()))
        })
        .collect();
    out.push_str(&format!(
        "outputs ({} of m = {} carrying messages):\n  {}\n",
        delivered.len(),
        switch.m,
        delivered.join(", ")
    ));
    out
}

/// Render the established paths of a routed frame as `input -> output`
/// pairs, the "heavy lines" of Figures 3 and 6.
pub fn render_paths<S: ConcentratorSwitch + ?Sized>(switch: &S, valid: &[bool]) -> String {
    let routing = switch.route(valid);
    let mut out = String::new();
    for (input, assignment) in routing.assignment.iter().enumerate() {
        if let Some(output) = assignment {
            out.push_str(&format!("  X{input:<4} ====> Y{output}\n"));
        } else if valid[input] {
            out.push_str(&format!("  X{input:<4} --x   (congested)\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};

    #[test]
    fn stage_flow_renders_every_stage() {
        let switch = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
        let valid = vec![true; 16];
        let text = render_stage_flow(switch.staged(), &valid);
        assert_eq!(text.matches("after ").count(), 3);
        assert!(text.contains("stage 3"));
    }

    #[test]
    fn paths_show_congestion() {
        let switch = RevsortSwitch::new(16, 4, RevsortLayout::TwoDee);
        let valid = vec![true; 16];
        let text = render_paths(&switch, &valid);
        assert!(text.contains("====>"));
        assert!(text.contains("congested"));
    }
}
