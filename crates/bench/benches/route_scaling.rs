//! Wall-clock scaling of setup-cycle routing through each switch design.
//! (Not a paper table — this measures our simulator's own cost so the
//! verification sweeps stay honest about what they can cover.)

use std::hint::black_box;

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::verify::SplitMix64;
use concentrator::{
    ColumnsortSwitch, FullColumnsortHyperconcentrator, FullRevsortHyperconcentrator,
    Hyperconcentrator,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn valid_pattern(n: usize, seed: u64) -> Vec<bool> {
    SplitMix64(seed).valid_bits(n, 0.5)
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    for n in [64usize, 256, 1024, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        let valid = valid_pattern(n, 0xBEEF);

        let hyper = Hyperconcentrator::new(n);
        group.bench_with_input(BenchmarkId::new("hyperconcentrator", n), &n, |b, _| {
            b.iter(|| black_box(hyper.route(black_box(&valid))))
        });

        let revsort = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
        group.bench_with_input(BenchmarkId::new("revsort_switch", n), &n, |b, _| {
            b.iter(|| black_box(revsort.route(black_box(&valid))))
        });

        let columnsort = ColumnsortSwitch::square(n, n / 2);
        group.bench_with_input(BenchmarkId::new("columnsort_switch", n), &n, |b, _| {
            b.iter(|| black_box(columnsort.route(black_box(&valid))))
        });
    }
    group.finish();
}

fn bench_full_hyper(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_full_hyper");
    for n in [256usize, 1024, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        let valid = valid_pattern(n, 0xF00D);
        let fr = FullRevsortHyperconcentrator::new(n);
        group.bench_with_input(BenchmarkId::new("full_revsort", n), &n, |b, _| {
            b.iter(|| black_box(fr.route(black_box(&valid))))
        });
        let side = (n as f64).sqrt() as usize;
        if side >= 2 * (4 - 1) * (4 - 1) {
            let fc = FullColumnsortHyperconcentrator::new(n / 4, 4);
            group.bench_with_input(BenchmarkId::new("full_columnsort_s4", n), &n, |b, _| {
                b.iter(|| black_box(fc.route(black_box(&valid))))
            });
        }
    }
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct");
    for n in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("revsort_switch", n), &n, |b, &n| {
            b.iter(|| black_box(RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee)))
        });
        group.bench_with_input(BenchmarkId::new("columnsort_switch", n), &n, |b, &n| {
            b.iter(|| black_box(ColumnsortSwitch::square(n, n / 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_route, bench_full_hyper, bench_construction);
criterion_main!(benches);
