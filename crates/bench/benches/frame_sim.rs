//! Bit-serial frame simulation throughput: full frames (setup + payload
//! streaming + reassembly) through the concentration stage under each
//! congestion policy.

use std::hint::black_box;

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use switchsim::traffic::TrafficGenerator;
use switchsim::{ConcentrationStage, CongestionPolicy, TrafficModel};

fn bench_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_sim");
    for n in [64usize, 256] {
        let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
        for (name, policy) in [
            ("drop", CongestionPolicy::Drop),
            ("buffer8", CongestionPolicy::InputBuffer { capacity: 8 }),
            ("ack3", CongestionPolicy::AckResend { max_retries: 3 }),
        ] {
            group.throughput(Throughput::Elements(50));
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), name),
                &switch,
                |b, switch| {
                    b.iter(|| {
                        let mut generator =
                            TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.6 }, n, 4, 77);
                        let mut stage = ConcentrationStage::new(switch, policy);
                        black_box(stage.run(&mut generator, 50))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_frames);
criterion_main!(benches);
