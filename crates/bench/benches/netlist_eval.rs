//! Gate-level evaluation throughput: scalar vs 64-way bit-parallel block
//! evaluation of hyperconcentrator chip netlists, and flat multichip
//! switch netlists.

use std::hint::black_box;

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::verify::SplitMix64;
use concentrator::Hyperconcentrator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_chip_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_eval_chip");
    for n in [16usize, 64, 256] {
        let nl = Hyperconcentrator::new(n).build_netlist(false);
        let valid = SplitMix64(9).valid_bits(n, 0.5);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("scalar", n), &nl, |b, nl| {
            b.iter(|| black_box(nl.eval(black_box(&valid))))
        });
        // 64 vectors at once.
        let mut rng = SplitMix64(10);
        let blocks: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("block64", n), &nl, |b, nl| {
            b.iter(|| black_box(nl.eval_block(black_box(&blocks))))
        });
    }
    group.finish();
}

fn bench_switch_netlist(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_eval_switch");
    for n in [64usize, 256] {
        let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
        let nl = switch.staged().build_netlist(true);
        let valid = SplitMix64(11).valid_bits(n, 0.5);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("revsort_flat", n), &nl, |b, nl| {
            b.iter(|| black_box(nl.eval(black_box(&valid))))
        });
    }
    group.finish();
}

fn bench_netlist_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_build");
    for n in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("hyper_chip", n), &n, |b, &n| {
            b.iter(|| black_box(Hyperconcentrator::new(n).build_netlist(false)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chip_eval, bench_switch_netlist, bench_netlist_build);
criterion_main!(benches);
