//! Gate-level evaluation throughput: the scalar interpreter vs the 64-way
//! bit-parallel block evaluator vs the compiled levelized engine, on
//! Revsort switch control netlists.
//!
//! Unlike the Criterion-harnessed benches, this one writes a machine-
//! readable summary to `BENCH_netlist_eval.json` at the repository root:
//! vectors/second per engine and the compiled-vs-scalar speedup for
//! n ∈ {256, 1024, 4096}.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::verify::SplitMix64;
use netlist::BitMatrix;

/// Lanes per compiled `eval_matrix` call.
const MATRIX_VECTORS: usize = 1024;
const MIN_MEASURE: Duration = Duration::from_millis(300);

/// Seconds per call of `routine`, measured over enough iterations to fill
/// the measurement window (with one warm-up call).
fn seconds_per_call<F: FnMut()>(mut routine: F) -> f64 {
    routine();
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        let elapsed = start.elapsed();
        if elapsed >= MIN_MEASURE {
            return elapsed.as_secs_f64() / iters as f64;
        }
        // Scale the iteration count toward the window, at least doubling.
        let scale = MIN_MEASURE.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        iters = (iters as f64 * scale.max(2.0)).ceil() as u64;
    }
}

struct SizeResult {
    n: usize,
    gates: usize,
    levels: usize,
    scalar_vps: f64,
    block64_vps: f64,
    compiled_vps: f64,
}

fn measure(n: usize) -> SizeResult {
    let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
    let elab = switch.staged().control_logic(true);
    let nl = &elab.netlist;
    let compiled = &elab.compiled;

    let valid = SplitMix64(9).valid_bits(n, 0.5);
    let mut rng = SplitMix64(10);
    let blocks: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let patterns = BitMatrix::from_fn(n, MATRIX_VECTORS, |row, v| {
        blocks[row].rotate_left((v % 64) as u32) & 1 == 1
    });

    // Sanity: the three engines must agree before we time them.
    let reference = nl.eval(&valid);
    let lane0_inputs: Vec<u64> = valid.iter().map(|&v| if v { 1u64 } else { 0 }).collect();
    let word_out = compiled.eval_word(&lane0_inputs);
    let block_out = nl.eval_block(&lane0_inputs);
    for (o, &bit) in reference.iter().enumerate() {
        assert_eq!(
            word_out[o] & 1 == 1,
            bit,
            "compiled disagrees at output {o}"
        );
        assert_eq!(block_out[o] & 1 == 1, bit, "block disagrees at output {o}");
    }

    let scalar_spc = seconds_per_call(|| {
        black_box(nl.eval(black_box(&valid)));
    });
    let block_spc = seconds_per_call(|| {
        black_box(nl.eval_block(black_box(&blocks)));
    });
    let compiled_spc = seconds_per_call(|| {
        black_box(compiled.eval_matrix(black_box(&patterns)));
    });

    SizeResult {
        n,
        gates: nl.gate_count(),
        levels: compiled.level_count(),
        scalar_vps: 1.0 / scalar_spc,
        block64_vps: 64.0 / block_spc,
        compiled_vps: MATRIX_VECTORS as f64 / compiled_spc,
    }
}

fn main() {
    let mut results = Vec::new();
    for n in [256usize, 1024, 4096] {
        let r = measure(n);
        println!(
            "n={:5}  gates={:7}  levels={:3}  scalar={:>12.0} v/s  block64={:>12.0} v/s  compiled={:>12.0} v/s  speedup(compiled/scalar)={:6.1}x",
            r.n,
            r.gates,
            r.levels,
            r.scalar_vps,
            r.block64_vps,
            r.compiled_vps,
            r.compiled_vps / r.scalar_vps
        );
        results.push(r);
    }

    let mut json = String::from("{\n  \"benchmark\": \"netlist_eval\",\n");
    json.push_str("  \"netlist\": \"Revsort switch control logic (m = n/2, with pads)\",\n");
    json.push_str("  \"units\": \"vectors_per_second\",\n  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"gates\": {}, \"levels\": {}, \"scalar\": {:.1}, \"block64\": {:.1}, \"compiled\": {:.1}, \"speedup_block64_vs_scalar\": {:.2}, \"speedup_compiled_vs_scalar\": {:.2}}}{}",
            r.n,
            r.gates,
            r.levels,
            r.scalar_vps,
            r.block64_vps,
            r.compiled_vps,
            r.block64_vps / r.scalar_vps,
            r.compiled_vps / r.scalar_vps,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netlist_eval.json");
    std::fs::write(path, &json).expect("write BENCH_netlist_eval.json");
    println!("wrote {path}");
}
