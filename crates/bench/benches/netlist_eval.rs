//! Gate-level evaluation throughput: the scalar interpreter vs the 64-way
//! bit-parallel block evaluator vs the schedule reference interpreter vs
//! the instruction-compiled emulator, on Revsort switch control netlists.
//!
//! Unlike the Criterion-harnessed benches, this one writes a machine-
//! readable summary to `BENCH_netlist_eval.json` at the repository root:
//! vectors/second per engine for n ∈ {256, 1024, 4096}, lane-width ×
//! thread-count ablation rows for the emulator, and the chip-partition
//! pin table at the largest size.
//!
//! Flags (after `cargo bench -p bench --bench netlist_eval --`):
//!
//! * `--quick`       measure n = 1024 only and skip the ablation — the CI
//!   perf-smoke configuration;
//! * `--out PATH`    write the JSON somewhere other than the committed
//!   baseline (CI writes a fresh copy for comparison and upload).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::verify::SplitMix64;
use netlist::BitMatrix;

/// Lanes per compiled `eval_matrix` call for the headline rows — large
/// enough to amortize per-call scratch setup and to hand a 4-thread split
/// whole 512-lane groups (the verification and campaign workloads batch
/// at least this wide).
const MATRIX_VECTORS: usize = 4096;
/// Lanes per call for the ablation rows — wide enough that every thread
/// in a 4-way split still sweeps full 512-lane groups.
const ABLATION_VECTORS: usize = 4096;
const MIN_MEASURE: Duration = Duration::from_millis(300);

/// Seconds per call of `routine`, measured over enough iterations to fill
/// the measurement window (with one warm-up call).
fn seconds_per_call<F: FnMut()>(mut routine: F) -> f64 {
    routine();
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        let elapsed = start.elapsed();
        if elapsed >= MIN_MEASURE {
            return elapsed.as_secs_f64() / iters as f64;
        }
        // Scale the iteration count toward the window, at least doubling.
        let scale = MIN_MEASURE.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        iters = (iters as f64 * scale.max(2.0)).ceil() as u64;
    }
}

struct SizeResult {
    n: usize,
    gates: usize,
    levels: usize,
    insns: usize,
    slots: usize,
    scalar_vps: f64,
    block64_vps: f64,
    reference_vps: f64,
    compiled_vps: f64,
}

struct AblationRow {
    n: usize,
    lanes: usize,
    threads: usize,
    vps: f64,
}

fn random_patterns(n: usize, vectors: usize) -> BitMatrix {
    let mut rng = SplitMix64(10);
    let blocks: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    BitMatrix::from_fn(n, vectors, |row, v| {
        blocks[row].rotate_left((v % 64) as u32) & 1 == 1
    })
}

fn measure(n: usize) -> SizeResult {
    let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
    let elab = switch.staged().control_logic(true);
    let nl = &elab.netlist;
    let compiled = &elab.compiled;
    compiled.self_check();

    let valid = SplitMix64(9).valid_bits(n, 0.5);
    let mut rng = SplitMix64(10);
    let blocks: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let patterns = random_patterns(n, MATRIX_VECTORS);

    // Sanity: all four engines must agree before we time them.
    let reference = nl.eval(&valid);
    let lane0_inputs: Vec<u64> = valid.iter().map(|&v| if v { 1u64 } else { 0 }).collect();
    let word_out = compiled.eval_word(&lane0_inputs);
    let sched_out = compiled.eval_word_reference(&lane0_inputs);
    let block_out = nl.eval_block(&lane0_inputs);
    for (o, &bit) in reference.iter().enumerate() {
        assert_eq!(
            word_out[o] & 1 == 1,
            bit,
            "emulator disagrees at output {o}"
        );
        assert_eq!(
            sched_out[o] & 1 == 1,
            bit,
            "schedule disagrees at output {o}"
        );
        assert_eq!(block_out[o] & 1 == 1, bit, "block disagrees at output {o}");
    }

    let scalar_spc = seconds_per_call(|| {
        black_box(nl.eval(black_box(&valid)));
    });
    let block_spc = seconds_per_call(|| {
        black_box(nl.eval_block(black_box(&blocks)));
    });
    let reference_spc = seconds_per_call(|| {
        black_box(compiled.eval_word_reference(black_box(&blocks)));
    });
    let compiled_spc = seconds_per_call(|| {
        black_box(compiled.eval_matrix(black_box(&patterns)));
    });

    SizeResult {
        n,
        gates: nl.gate_count(),
        levels: compiled.level_count(),
        insns: compiled.insn_count(),
        slots: compiled.slot_count(),
        scalar_vps: 1.0 / scalar_spc,
        block64_vps: 64.0 / block_spc,
        reference_vps: 64.0 / reference_spc,
        compiled_vps: MATRIX_VECTORS as f64 / compiled_spc,
    }
}

/// Lane-width × thread-count sweep over the emulator at one size.
fn ablate(n: usize) -> Vec<AblationRow> {
    let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
    let elab = switch.staged().control_logic(true);
    let compiled = &elab.compiled;
    let patterns = random_patterns(n, ABLATION_VECTORS);
    let mut rows = Vec::new();
    for lanes in [64usize, 256, 512] {
        for threads in [1usize, 2, 4] {
            let spc = seconds_per_call(|| {
                black_box(compiled.eval_matrix_lanes(black_box(&patterns), lanes, threads));
            });
            let vps = ABLATION_VECTORS as f64 / spc;
            println!("  ablation n={n} lanes={lanes:3} threads={threads}  {vps:>12.0} v/s");
            rows.push(AblationRow {
                n,
                lanes,
                threads,
                vps,
            });
        }
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netlist_eval.json").to_string()
        });
    // `cargo bench` forwards its own --bench flag; ignore unknown args.

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sizes: &[usize] = if quick { &[1024] } else { &[256, 1024, 4096] };

    let mut results = Vec::new();
    for &n in sizes {
        let r = measure(n);
        println!(
            "n={:5}  gates={:7}  insns={:7}  slots={:6}  levels={:3}  scalar={:>10.0} v/s  block64={:>11.0} v/s  schedule={:>11.0} v/s  emulator={:>12.0} v/s  speedup={:6.1}x",
            r.n,
            r.gates,
            r.insns,
            r.slots,
            r.levels,
            r.scalar_vps,
            r.block64_vps,
            r.reference_vps,
            r.compiled_vps,
            r.compiled_vps / r.scalar_vps
        );
        results.push(r);
    }

    let ablation = if quick { Vec::new() } else { ablate(4096) };

    // Chip-partition pin table at the largest measured size.
    let part_n = *sizes.last().unwrap();
    let part_switch = RevsortSwitch::new(part_n, part_n / 2, RevsortLayout::TwoDee);
    let part = part_switch
        .staged()
        .control_logic(true)
        .compiled
        .partition_report();

    // The tentpole gate: ≥ 3× the pre-instruction-stream 25,683 v/s at
    // n=4096, asserted only on hosts with enough cores to exercise the
    // threaded sweep (the acceptance criterion is stated for ≥ 4 cores).
    if !quick {
        let r4096 = results.iter().find(|r| r.n == 4096).unwrap();
        println!(
            "n=4096 emulator {:.0} v/s vs old compiled 25683 v/s: {:.1}x ({} cores)",
            r4096.compiled_vps,
            r4096.compiled_vps / 25683.0,
            cores
        );
        if cores >= 4 {
            assert!(
                r4096.compiled_vps >= 3.0 * 25683.0,
                "n=4096 regressed below 3x the pre-instruction-stream engine"
            );
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"netlist_eval\",\n");
    json.push_str("  \"netlist\": \"Revsort switch control logic (m = n/2, with pads)\",\n");
    json.push_str("  \"units\": \"vectors_per_second\",\n");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"gates\": {}, \"insns\": {}, \"slots\": {}, \"levels\": {}, \"scalar\": {:.1}, \"block64\": {:.1}, \"schedule\": {:.1}, \"compiled\": {:.1}, \"speedup_block64_vs_scalar\": {:.2}, \"speedup_compiled_vs_scalar\": {:.2}}}{}",
            r.n,
            r.gates,
            r.insns,
            r.slots,
            r.levels,
            r.scalar_vps,
            r.block64_vps,
            r.reference_vps,
            r.compiled_vps,
            r.block64_vps / r.scalar_vps,
            r.compiled_vps / r.scalar_vps,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"ablation\": [\n");
    for (i, r) in ablation.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"lanes\": {}, \"threads\": {}, \"vps\": {:.1}}}{}",
            r.n,
            r.lanes,
            r.threads,
            r.vps,
            if i + 1 < ablation.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"partition\": {{\"n\": {}, \"chips\": {}, \"cut_wires\": {}, \"max_pins\": {}, \"max_gates\": {}, \"chip_gates\": {:?}, \"chip_in_pins\": {:?}, \"chip_out_pins\": {:?}}}",
        part_n,
        part.chips,
        part.cut_wires,
        part.max_pins(),
        part.max_gates(),
        part.chip_gates,
        part.chip_in_pins,
        part.chip_out_pins
    );
    json.push('}');
    json.push('\n');

    std::fs::write(&out_path, &json).expect("write netlist_eval JSON");
    println!("wrote {out_path}");
}
