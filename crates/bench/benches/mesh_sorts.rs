//! Mesh sorting algorithm performance: Revsort Algorithm 1, full Revsort,
//! Columnsort steps 1–3 and all 8 steps, Shearsort schedules.

use std::hint::black_box;

use concentrator::verify::SplitMix64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use meshsort::{
    columnsort_full, columnsort_steps123, revsort_algorithm1, revsort_full, shearsort, Grid,
    ShearsortSchedule, SortOrder,
};

fn bit_grid(rows: usize, cols: usize, seed: u64) -> Grid<bool> {
    Grid::from_row_major(rows, cols, SplitMix64(seed).valid_bits(rows * cols, 0.5))
}

fn bench_revsort(c: &mut Criterion) {
    let mut group = c.benchmark_group("revsort");
    for side in [16usize, 64, 128] {
        let n = side * side;
        group.throughput(Throughput::Elements(n as u64));
        let grid = bit_grid(side, side, 1);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &grid, |b, g| {
            b.iter(|| {
                let mut g = g.clone();
                revsort_algorithm1(&mut g, SortOrder::Descending);
                black_box(g)
            })
        });
        group.bench_with_input(BenchmarkId::new("full", n), &grid, |b, g| {
            b.iter(|| {
                let mut g = g.clone();
                revsort_full(&mut g, SortOrder::Descending);
                black_box(g)
            })
        });
    }
    group.finish();
}

fn bench_columnsort(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnsort");
    // Shapes satisfy the full-sort condition r >= 2(s-1)^2.
    for (r, s) in [(128usize, 8usize), (512, 8), (2048, 16)] {
        let n = r * s;
        group.throughput(Throughput::Elements(n as u64));
        let grid = bit_grid(r, s, 2);
        group.bench_with_input(BenchmarkId::new("steps123", n), &grid, |b, g| {
            b.iter(|| {
                let mut g = g.clone();
                columnsort_steps123(&mut g, SortOrder::Descending);
                black_box(g)
            })
        });
        group.bench_with_input(BenchmarkId::new("full8", n), &grid, |b, g| {
            b.iter(|| {
                let mut g = g.clone();
                columnsort_full(&mut g, SortOrder::Descending);
                black_box(g)
            })
        });
    }
    group.finish();
}

fn bench_shearsort(c: &mut Criterion) {
    let mut group = c.benchmark_group("shearsort");
    for side in [16usize, 64] {
        let n = side * side;
        group.throughput(Throughput::Elements(n as u64));
        let grid = bit_grid(side, side, 3);
        let schedule = ShearsortSchedule::full_sort(side);
        group.bench_with_input(BenchmarkId::new("full_sort", n), &grid, |b, g| {
            b.iter(|| {
                let mut g = g.clone();
                shearsort(&mut g, SortOrder::Descending, schedule);
                black_box(g)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_revsort, bench_columnsort, bench_shearsort);
criterion_main!(benches);
