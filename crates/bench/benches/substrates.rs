//! Performance of the auxiliary substrates: constant folding, adversarial
//! search, the cellular lattice, and fairness measurement.

use std::hint::black_box;

use concentrator::search::{epsilon_attack, hill_climb};
use concentrator::verify::SplitMix64;
use concentrator::{CellularCompactor, ColumnsortSwitch, FullColumnsortHyperconcentrator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use meshsort::{nearsort_epsilon, ComparatorNetwork, SortOrder};
use switchsim::measure_fairness;

fn bench_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_fold");
    for (r, s) in [(8usize, 2usize), (32, 4)] {
        let nl = FullColumnsortHyperconcentrator::new(r, s)
            .staged()
            .build_netlist(false);
        group.throughput(Throughput::Elements(nl.gate_count() as u64));
        group.bench_with_input(BenchmarkId::new("fold_constants", r * s), &nl, |b, nl| {
            b.iter(|| black_box(nl.fold_constants()))
        });
    }
    group.finish();
}

fn bench_hill_climb(c: &mut Criterion) {
    let mut group = c.benchmark_group("hill_climb");
    let switch = ColumnsortSwitch::new(16, 4, 64);
    group.bench_function("columnsort_eps_64", |b| {
        b.iter(|| {
            black_box(hill_climb(64, 2, 100, 7, |valid| {
                let bits: Vec<bool> = switch
                    .staged()
                    .trace(valid)
                    .iter()
                    .map(|&(v, _)| v)
                    .collect();
                nearsort_epsilon(&bits, SortOrder::Descending)
            }))
        })
    });
    // Same attack budget driven through the compiled batch evaluator:
    // 2 restarts x 100 neighborhoods, but 64 candidates per sweep.
    group.bench_function("columnsort_eps_64_compiled", |b| {
        b.iter(|| black_box(epsilon_attack(switch.staged(), 2, 100, 7)))
    });
    group.finish();
}

fn bench_cellular(c: &mut Criterion) {
    let mut group = c.benchmark_group("cellular_lattice");
    for n in [64usize, 256] {
        let lattice = CellularCompactor::new(n);
        let valid = SplitMix64(3).valid_bits(n, 0.5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("settle", n), &lattice, |b, l| {
            b.iter(|| black_box(l.settle(black_box(&valid))))
        });
    }
    group.finish();
}

fn bench_fairness(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairness");
    let switch = ColumnsortSwitch::new(8, 4, 8);
    group.throughput(Throughput::Elements(100));
    group.bench_function("measure_100_frames", |b| {
        b.iter(|| black_box(measure_fairness(&switch, 0.8, 100, 5)))
    });
    group.finish();
}

fn bench_comparator_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparator_networks");
    for width in [64usize, 256] {
        let network = ComparatorNetwork::batcher(width, 0..width);
        let mut rng = SplitMix64(11);
        let values: Vec<u64> = (0..width).map(|_| rng.next_u64()).collect();
        group.throughput(Throughput::Elements(width as u64));
        group.bench_with_input(
            BenchmarkId::new("batcher_apply", width),
            &network,
            |b, n| {
                b.iter(|| {
                    let mut v = values.clone();
                    n.apply(&mut v, SortOrder::Ascending);
                    black_box(v)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fold,
    bench_hill_climb,
    bench_cellular,
    bench_fairness,
    bench_comparator_networks
);
criterion_main!(benches);
