//! Property-based tests over randomly generated netlists.

use netlist::{BitMatrix, GateKind, Literal, Netlist, Wire, WireFault, WireFaultKind};
use proptest::prelude::*;

/// A recipe for one gate in a random DAG: kind selector plus input picks
/// (as fractions of the wires available when the gate is built).
#[derive(Debug, Clone)]
struct GateRecipe {
    kind: u8,
    inputs: Vec<(f64, bool)>,
}

fn recipe_strategy() -> impl Strategy<Value = GateRecipe> {
    (
        0u8..4,
        proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..5),
    )
        .prop_map(|(kind, inputs)| GateRecipe { kind, inputs })
}

/// Build a random netlist from recipes; every wire built so far (inputs
/// and prior gate outputs) is a candidate gate input.
fn build(n_inputs: usize, recipes: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new();
    let mut wires: Vec<Literal> = nl
        .inputs_n(n_inputs)
        .into_iter()
        .map(Literal::pos)
        .collect();
    let c = nl.constant(true);
    wires.push(c);
    let c = nl.constant(false);
    wires.push(c);
    for recipe in recipes {
        let picks: Vec<Literal> = recipe
            .inputs
            .iter()
            .map(|&(frac, inv)| {
                let idx = ((frac * wires.len() as f64) as usize).min(wires.len() - 1);
                if inv {
                    wires[idx].complement()
                } else {
                    wires[idx]
                }
            })
            .collect();
        let out = match recipe.kind {
            0 => nl.and(picks),
            1 => nl.or(picks),
            2 => nl.xor(picks),
            _ => nl.buf(picks[0]),
        };
        wires.push(out);
    }
    // Mark the last few wires as outputs.
    for lit in wires.iter().rev().take(3) {
        nl.mark_output(*lit);
    }
    nl
}

proptest! {
    /// Folding constants never changes the computed function.
    #[test]
    fn fold_preserves_function(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        pattern in any::<u8>(),
    ) {
        let nl = build(n_inputs, &recipes);
        let folded = nl.fold_constants();
        prop_assert_eq!(folded.input_count(), nl.input_count());
        prop_assert_eq!(folded.output_count(), nl.output_count());
        let bits: Vec<bool> = (0..n_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
        prop_assert_eq!(folded.eval(&bits), nl.eval(&bits));
        prop_assert!(folded.area_report().gates <= nl.area_report().gates);
        prop_assert!(folded.depth() <= nl.depth());
    }

    /// Bit-parallel block evaluation agrees with scalar evaluation on
    /// every lane.
    #[test]
    fn block_eval_matches_scalar(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..15),
        seed in any::<u64>(),
    ) {
        let nl = build(n_inputs, &recipes);
        let blocks: Vec<u64> = (0..n_inputs)
            .map(|i| seed.rotate_left(i as u32 * 7).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let block_out = nl.eval_block(&blocks);
        for lane in [0usize, 1, 13, 63] {
            let bits: Vec<bool> = blocks.iter().map(|b| (b >> lane) & 1 == 1).collect();
            let scalar = nl.eval(&bits);
            for (o, word) in block_out.iter().enumerate() {
                prop_assert_eq!(scalar[o], (word >> lane) & 1 == 1);
            }
        }
    }

    /// Unbounded fan-in depth is a lower bound for any bounded fan-in
    /// repricing, and large limits converge to it.
    #[test]
    fn bounded_fanin_depth_ordering(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..15),
    ) {
        let nl = build(n_inputs, &recipes);
        let wide = nl.depth();
        let d2 = nl.depth_bounded_fanin(2);
        let d4 = nl.depth_bounded_fanin(4);
        let d64 = nl.depth_bounded_fanin(64);
        prop_assert!(wide <= d64);
        prop_assert!(d64 <= d4);
        prop_assert!(d4 <= d2);
        // Fan-in never exceeds 4 literals in these recipes, so limit 64
        // must match the wide depth exactly.
        prop_assert_eq!(d64, wide);
    }

    /// The compiled engine agrees with both interpreters — scalar
    /// [`Netlist::eval`] and 64-lane [`Netlist::eval_block`] — on random
    /// netlists (which include Const gates and inverted fan-ins) and on
    /// inverted output literals, across ragged vector counts.
    #[test]
    fn compiled_matches_interpreters(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        seed in any::<u64>(),
    ) {
        let mut nl = build(n_inputs, &recipes);
        // Mark an inverted twin of an existing output so output-literal
        // application is exercised in the compiled path.
        let twin = nl.outputs()[0].complement();
        nl.mark_output(twin);
        let compiled = nl.compile();

        // 64-lane word path vs the block interpreter.
        let blocks: Vec<u64> = (0..n_inputs)
            .map(|i| seed.rotate_left(i as u32 * 11).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        prop_assert_eq!(compiled.eval_word(&blocks), nl.eval_block(&blocks));

        // Multi-word matrix path vs the scalar interpreter, with a vector
        // count that is not a multiple of 64.
        let vectors = 97usize;
        let m = netlist::BitMatrix::from_fn(n_inputs, vectors, |row, v| {
            (seed.rotate_left((row * 13 + v) as u32) & 1) == 1
        });
        let out = compiled.eval_matrix(&m);
        for v in [0usize, 1, 42, 63, 64, 96] {
            prop_assert_eq!(out.column(v), nl.eval(&m.column(v)));
        }
    }

    /// The instruction-stream emulator, the phase-1 schedule interpreter,
    /// and the scalar interpreter agree on random netlists (which include
    /// Const gates and inverted fan-ins) with random wire faults injected.
    /// The scalar leg uses an independent fault model that overrides the
    /// faulted wire at every read.
    #[test]
    fn faulted_engines_match_scalar_fault_model(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        fault_picks in proptest::collection::vec((0.0f64..1.0, 0u8..3), 1..3),
        seed in any::<u64>(),
    ) {
        let mut nl = build(n_inputs, &recipes);
        let twin = nl.outputs()[0].complement();
        nl.mark_output(twin);
        // Every wire is either a primary input or some gate's output (SSA),
        // so this list enumerates all fault sites.
        let sites: Vec<Wire> = nl
            .inputs()
            .iter()
            .copied()
            .chain(nl.gates().iter().map(|g| g.output))
            .collect();
        let faults: Vec<WireFault> = fault_picks
            .iter()
            .map(|&(frac, kind)| WireFault {
                wire: sites[((frac * sites.len() as f64) as usize).min(sites.len() - 1)],
                kind: match kind {
                    0 => WireFaultKind::Stuck0,
                    1 => WireFaultKind::Stuck1,
                    _ => WireFaultKind::Flip,
                },
            })
            .collect();
        let faulted = nl.compile().with_faults(&faults);

        // Emulator ≡ schedule reference on 64 random lanes.
        let blocks: Vec<u64> = (0..n_inputs)
            .map(|i| seed.rotate_left(i as u32 * 11).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let word_out = faulted.eval_word(&blocks);
        prop_assert_eq!(&word_out, &faulted.eval_word_reference(&blocks));

        // Both ≡ the scalar fault model, on a handful of lanes. The model
        // only composes cleanly for one fault; with several, restrict to
        // fault sets on distinct wires applied in order.
        let mut wires: Vec<usize> = faults.iter().map(|f| f.wire.index()).collect();
        wires.sort_unstable();
        wires.dedup();
        if wires.len() == faults.len() {
            for lane in [0usize, 17, 63] {
                let bits: Vec<bool> = blocks.iter().map(|b| (b >> lane) & 1 == 1).collect();
                let expected = eval_with_faults(&nl, &faults, &bits);
                let got: Vec<bool> =
                    word_out.iter().map(|&w| (w >> lane) & 1 == 1).collect();
                prop_assert_eq!(got, expected, "lane {}", lane);
            }
        }
    }

    /// Every lane width × thread count of the emulator — and the
    /// level-parallel team sweep — produces bit-identical matrices with a
    /// clear tail, on ragged vector counts.
    #[test]
    fn lane_widths_and_threads_agree(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        vectors in 1usize..600,
        seed in any::<u64>(),
    ) {
        let nl = build(n_inputs, &recipes);
        let compiled = nl.compile();
        let m = BitMatrix::from_fn(n_inputs, vectors, |row, v| {
            (seed.rotate_left((row * 13 + v) as u32) & 1) == 1
        });
        let baseline = compiled.eval_matrix_lanes(&m, 64, 1);
        prop_assert!(baseline.tail_is_clear());
        for lanes in [64usize, 256, 512] {
            for threads in [1usize, 2, 4] {
                let out = compiled.eval_matrix_lanes(&m, lanes, threads);
                prop_assert!(out.tail_is_clear(), "lanes {} threads {}", lanes, threads);
                prop_assert_eq!(&out, &baseline, "lanes {} threads {}", lanes, threads);
            }
        }
        for threads in [1usize, 2, 4] {
            let out = compiled.eval_matrix_level_threads(&m, threads);
            prop_assert!(out.tail_is_clear(), "level threads {}", threads);
            prop_assert_eq!(&out, &baseline, "level threads {}", threads);
        }
    }

    /// JSON round trip preserves structure and function.
    #[test]
    fn serde_round_trip(
        n_inputs in 1usize..5,
        recipes in proptest::collection::vec(recipe_strategy(), 1..10),
        pattern in any::<u8>(),
    ) {
        let nl = build(n_inputs, &recipes);
        let json = netlist::json::to_string(&nl);
        let back: Netlist = netlist::json::from_str(&json).expect("deserialize");
        let bits: Vec<bool> = (0..n_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
        prop_assert_eq!(back.eval(&bits), nl.eval(&bits));
        prop_assert_eq!(back.gate_count(), nl.gate_count());
    }

    /// Import into a fresh netlist preserves the function.
    #[test]
    fn import_preserves_function(
        n_inputs in 1usize..5,
        recipes in proptest::collection::vec(recipe_strategy(), 1..10),
        pattern in any::<u8>(),
    ) {
        let sub = build(n_inputs, &recipes);
        let mut outer = Netlist::new();
        let ins: Vec<Literal> =
            outer.inputs_n(n_inputs).into_iter().map(Literal::pos).collect();
        let outs = outer.import(&sub, &ins);
        for o in outs {
            outer.mark_output(o);
        }
        let bits: Vec<bool> = (0..n_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
        prop_assert_eq!(outer.eval(&bits), sub.eval(&bits));
    }
}

/// Independent scalar fault model: evaluate gates in netlist order, but
/// override each faulted wire's value at every read (faults applied in
/// order at each read site — sound when the faulted wires are distinct).
fn eval_with_faults(nl: &Netlist, faults: &[WireFault], bits: &[bool]) -> Vec<bool> {
    let mut values = vec![false; nl.wire_count()];
    for (ord, w) in nl.inputs().iter().enumerate() {
        values[w.index()] = bits[ord];
    }
    let read = |values: &[bool], lit: Literal| -> bool {
        let mut v = values[lit.wire.index()];
        for fault in faults {
            if lit.wire == fault.wire {
                v = match fault.kind {
                    WireFaultKind::Stuck0 => false,
                    WireFaultKind::Stuck1 => true,
                    WireFaultKind::Flip => !v,
                };
            }
        }
        v ^ lit.inverted
    };
    for gate in nl.gates() {
        let ins = gate.inputs.iter().map(|&l| read(&values, l));
        values[gate.output.index()] = gate.kind.eval(ins);
    }
    nl.outputs().iter().map(|&l| read(&values, l)).collect()
}

#[test]
fn gate_kind_delay_consistency() {
    // Non-property sanity: folding a circuit of only constants leaves no
    // gates at all.
    let mut nl = Netlist::new();
    let t = nl.constant(true);
    let f = nl.constant(false);
    let g = nl.and([t, f]);
    let h = nl.or([g, t]);
    nl.mark_output(h);
    let folded = nl.fold_constants();
    assert_eq!(folded.area_report().gates, 0);
    assert_eq!(folded.eval(&[]), vec![true]);
    assert_eq!(GateKind::And.delay(), 1);
}
