//! Property-based tests over randomly generated netlists.

use netlist::{GateKind, Literal, Netlist};
use proptest::prelude::*;

/// A recipe for one gate in a random DAG: kind selector plus input picks
/// (as fractions of the wires available when the gate is built).
#[derive(Debug, Clone)]
struct GateRecipe {
    kind: u8,
    inputs: Vec<(f64, bool)>,
}

fn recipe_strategy() -> impl Strategy<Value = GateRecipe> {
    (
        0u8..4,
        proptest::collection::vec((0.0f64..1.0, any::<bool>()), 1..5),
    )
        .prop_map(|(kind, inputs)| GateRecipe { kind, inputs })
}

/// Build a random netlist from recipes; every wire built so far (inputs
/// and prior gate outputs) is a candidate gate input.
fn build(n_inputs: usize, recipes: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new();
    let mut wires: Vec<Literal> = nl
        .inputs_n(n_inputs)
        .into_iter()
        .map(Literal::pos)
        .collect();
    let c = nl.constant(true);
    wires.push(c);
    let c = nl.constant(false);
    wires.push(c);
    for recipe in recipes {
        let picks: Vec<Literal> = recipe
            .inputs
            .iter()
            .map(|&(frac, inv)| {
                let idx = ((frac * wires.len() as f64) as usize).min(wires.len() - 1);
                if inv {
                    wires[idx].complement()
                } else {
                    wires[idx]
                }
            })
            .collect();
        let out = match recipe.kind {
            0 => nl.and(picks),
            1 => nl.or(picks),
            2 => nl.xor(picks),
            _ => nl.buf(picks[0]),
        };
        wires.push(out);
    }
    // Mark the last few wires as outputs.
    for lit in wires.iter().rev().take(3) {
        nl.mark_output(*lit);
    }
    nl
}

proptest! {
    /// Folding constants never changes the computed function.
    #[test]
    fn fold_preserves_function(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        pattern in any::<u8>(),
    ) {
        let nl = build(n_inputs, &recipes);
        let folded = nl.fold_constants();
        prop_assert_eq!(folded.input_count(), nl.input_count());
        prop_assert_eq!(folded.output_count(), nl.output_count());
        let bits: Vec<bool> = (0..n_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
        prop_assert_eq!(folded.eval(&bits), nl.eval(&bits));
        prop_assert!(folded.area_report().gates <= nl.area_report().gates);
        prop_assert!(folded.depth() <= nl.depth());
    }

    /// Bit-parallel block evaluation agrees with scalar evaluation on
    /// every lane.
    #[test]
    fn block_eval_matches_scalar(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..15),
        seed in any::<u64>(),
    ) {
        let nl = build(n_inputs, &recipes);
        let blocks: Vec<u64> = (0..n_inputs)
            .map(|i| seed.rotate_left(i as u32 * 7).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let block_out = nl.eval_block(&blocks);
        for lane in [0usize, 1, 13, 63] {
            let bits: Vec<bool> = blocks.iter().map(|b| (b >> lane) & 1 == 1).collect();
            let scalar = nl.eval(&bits);
            for (o, word) in block_out.iter().enumerate() {
                prop_assert_eq!(scalar[o], (word >> lane) & 1 == 1);
            }
        }
    }

    /// Unbounded fan-in depth is a lower bound for any bounded fan-in
    /// repricing, and large limits converge to it.
    #[test]
    fn bounded_fanin_depth_ordering(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..15),
    ) {
        let nl = build(n_inputs, &recipes);
        let wide = nl.depth();
        let d2 = nl.depth_bounded_fanin(2);
        let d4 = nl.depth_bounded_fanin(4);
        let d64 = nl.depth_bounded_fanin(64);
        prop_assert!(wide <= d64);
        prop_assert!(d64 <= d4);
        prop_assert!(d4 <= d2);
        // Fan-in never exceeds 4 literals in these recipes, so limit 64
        // must match the wide depth exactly.
        prop_assert_eq!(d64, wide);
    }

    /// The compiled engine agrees with both interpreters — scalar
    /// [`Netlist::eval`] and 64-lane [`Netlist::eval_block`] — on random
    /// netlists (which include Const gates and inverted fan-ins) and on
    /// inverted output literals, across ragged vector counts.
    #[test]
    fn compiled_matches_interpreters(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(recipe_strategy(), 1..20),
        seed in any::<u64>(),
    ) {
        let mut nl = build(n_inputs, &recipes);
        // Mark an inverted twin of an existing output so output-literal
        // application is exercised in the compiled path.
        let twin = nl.outputs()[0].complement();
        nl.mark_output(twin);
        let compiled = nl.compile();

        // 64-lane word path vs the block interpreter.
        let blocks: Vec<u64> = (0..n_inputs)
            .map(|i| seed.rotate_left(i as u32 * 11).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        prop_assert_eq!(compiled.eval_word(&blocks), nl.eval_block(&blocks));

        // Multi-word matrix path vs the scalar interpreter, with a vector
        // count that is not a multiple of 64.
        let vectors = 97usize;
        let m = netlist::BitMatrix::from_fn(n_inputs, vectors, |row, v| {
            (seed.rotate_left((row * 13 + v) as u32) & 1) == 1
        });
        let out = compiled.eval_matrix(&m);
        for v in [0usize, 1, 42, 63, 64, 96] {
            prop_assert_eq!(out.column(v), nl.eval(&m.column(v)));
        }
    }

    /// JSON round trip preserves structure and function.
    #[test]
    fn serde_round_trip(
        n_inputs in 1usize..5,
        recipes in proptest::collection::vec(recipe_strategy(), 1..10),
        pattern in any::<u8>(),
    ) {
        let nl = build(n_inputs, &recipes);
        let json = netlist::json::to_string(&nl);
        let back: Netlist = netlist::json::from_str(&json).expect("deserialize");
        let bits: Vec<bool> = (0..n_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
        prop_assert_eq!(back.eval(&bits), nl.eval(&bits));
        prop_assert_eq!(back.gate_count(), nl.gate_count());
    }

    /// Import into a fresh netlist preserves the function.
    #[test]
    fn import_preserves_function(
        n_inputs in 1usize..5,
        recipes in proptest::collection::vec(recipe_strategy(), 1..10),
        pattern in any::<u8>(),
    ) {
        let sub = build(n_inputs, &recipes);
        let mut outer = Netlist::new();
        let ins: Vec<Literal> =
            outer.inputs_n(n_inputs).into_iter().map(Literal::pos).collect();
        let outs = outer.import(&sub, &ins);
        for o in outs {
            outer.mark_output(o);
        }
        let bits: Vec<bool> = (0..n_inputs).map(|i| (pattern >> i) & 1 == 1).collect();
        prop_assert_eq!(outer.eval(&bits), sub.eval(&bits));
    }
}

#[test]
fn gate_kind_delay_consistency() {
    // Non-property sanity: folding a circuit of only constants leaves no
    // gates at all.
    let mut nl = Netlist::new();
    let t = nl.constant(true);
    let f = nl.constant(false);
    let g = nl.and([t, f]);
    let h = nl.or([g, t]);
    nl.mark_output(h);
    let folded = nl.fold_constants();
    assert_eq!(folded.area_report().gates, 0);
    assert_eq!(folded.eval(&[]), vec![true]);
    assert_eq!(GateKind::And.delay(), 1);
}
