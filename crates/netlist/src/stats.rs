//! Area accounting: gates, literals, and layout-area estimates.

use serde::{Deserialize, Serialize};

use crate::builder::Netlist;
use crate::gate::GateKind;

/// Area/size measures of a netlist.
///
/// The paper reports chip area as `Θ(n²)` for the n-by-n hyperconcentrator.
/// We expose the measurable quantities area claims reduce to:
///
/// * `gates` — number of gates,
/// * `literals` — total fan-in (a transistor-count proxy: one pull-down
///   device per literal of a wide nMOS NOR),
/// * `area_units` — `gates + literals`, the standard gate-array area proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Number of logic gates (Buf pads counted, constants excluded).
    pub gates: usize,
    /// Total fan-in over all gates.
    pub literals: usize,
    /// Maximum fan-in of any single gate.
    pub max_fan_in: usize,
    /// `gates + literals`: unit-area proxy.
    pub area_units: usize,
}

impl Netlist {
    /// Compute size/area measures.
    pub fn area_report(&self) -> AreaReport {
        let mut gates = 0usize;
        let mut literals = 0usize;
        let mut max_fan_in = 0usize;
        for gate in &self.gates {
            if matches!(gate.kind, GateKind::Const(_)) {
                continue;
            }
            gates += 1;
            literals += gate.fan_in();
            max_fan_in = max_fan_in.max(gate.fan_in());
        }
        AreaReport {
            gates,
            literals,
            max_fan_in,
            area_units: gates + literals,
        }
    }
}

impl Netlist {
    /// Gate count if every fan-in were bounded at `limit` (each f-input
    /// gate decomposed into `⌈(f−1)/(limit−1)⌉` smaller gates).
    pub fn gates_bounded_fanin(&self, limit: usize) -> usize {
        assert!(limit >= 2, "fan-in limit must be at least 2");
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Const(_)))
            .map(|g| {
                let f = g.fan_in().max(1);
                if f <= limit {
                    1
                } else {
                    (f - 1).div_ceil(limit - 1)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Literal, Netlist};

    #[test]
    fn counts_gates_and_literals() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let t1 = nl.and([a, b, c]);
        let t2 = nl.or([t1, Literal::pos(a)]);
        nl.mark_output(t2);
        let report = nl.area_report();
        assert_eq!(report.gates, 2);
        assert_eq!(report.literals, 5);
        assert_eq!(report.max_fan_in, 3);
        assert_eq!(report.area_units, 7);
    }

    #[test]
    fn constants_do_not_count_as_area() {
        let mut nl = Netlist::new();
        let c = nl.constant(true);
        nl.mark_output(c);
        let report = nl.area_report();
        assert_eq!(report.gates, 0);
        assert_eq!(report.area_units, 0);
    }

    #[test]
    fn bounded_fanin_gate_count() {
        let mut nl = Netlist::new();
        let ins = nl.inputs_n(9);
        let lits: Vec<Literal> = ins.iter().copied().map(Literal::pos).collect();
        let wide = nl.or(lits);
        nl.mark_output(wide);
        // One 9-input gate == 1 wide gate == 8 two-input gates == 4
        // three-input gates.
        assert_eq!(nl.area_report().gates, 1);
        assert_eq!(nl.gates_bounded_fanin(2), 8);
        assert_eq!(nl.gates_bounded_fanin(3), 4);
        assert_eq!(nl.gates_bounded_fanin(16), 1);
    }

    #[test]
    fn empty_netlist_has_zero_area() {
        let report = Netlist::new().area_report();
        assert_eq!(report.gates, 0);
        assert_eq!(report.literals, 0);
        assert_eq!(report.max_fan_in, 0);
    }
}
