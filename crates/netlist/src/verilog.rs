//! Structural Verilog export.
//!
//! The netlists this library builds are honest combinational circuits; for
//! a hardware audience the natural interchange format is synthesizable
//! structural Verilog. Wide AND/OR planes map to reduction expressions,
//! dual-rail literals to explicit negations — semantics identical to
//! [`crate::Netlist::eval`] by construction (and cross-checked in tests by
//! a tiny Verilog-expression interpreter).

use std::fmt::Write as _;

use crate::builder::{Driver, Netlist};
use crate::gate::GateKind;
use crate::wire::Literal;

impl Netlist {
    /// Emit the netlist as a synthesizable Verilog module.
    ///
    /// Inputs become `in_<k>`, outputs `out_<k>`, internal wires `w<i>`;
    /// every gate is one continuous assignment.
    pub fn to_verilog(&self, module_name: &str) -> String {
        assert!(
            module_name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && module_name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic()),
            "invalid Verilog module name `{module_name}`"
        );
        let mut out = String::new();
        let ins: Vec<String> = (0..self.input_count()).map(|k| format!("in_{k}")).collect();
        let outs: Vec<String> = (0..self.output_count())
            .map(|k| format!("out_{k}"))
            .collect();
        writeln!(out, "module {module_name} (").unwrap();
        for name in &ins {
            writeln!(out, "    input  wire {name},").unwrap();
        }
        for (i, name) in outs.iter().enumerate() {
            let comma = if i + 1 == outs.len() { "" } else { "," };
            writeln!(out, "    output wire {name}{comma}").unwrap();
        }
        writeln!(out, ");").unwrap();

        // Wire names: inputs alias in_<k>; gate outputs get w<i>.
        let mut names: Vec<String> = Vec::with_capacity(self.wire_count());
        let mut gate_cursor = 0usize;
        let mut body = String::new();
        for (idx, driver) in self.drivers.iter().enumerate() {
            match driver {
                Driver::Input(ord) => names.push(format!("in_{ord}")),
                Driver::Gate(_) => {
                    let gate = &self.gates[gate_cursor];
                    gate_cursor += 1;
                    let name = format!("w{idx}");
                    let literal = |l: &Literal| -> String {
                        if l.inverted {
                            format!("~{}", names[l.wire.index()])
                        } else {
                            names[l.wire.index()].clone()
                        }
                    };
                    let rhs = match gate.kind {
                        GateKind::Const(v) => format!("1'b{}", u8::from(v)),
                        GateKind::Buf => literal(&gate.inputs[0]),
                        GateKind::And => join(gate.inputs.iter().map(&literal), " & ", "1'b1"),
                        GateKind::Or => join(gate.inputs.iter().map(&literal), " | ", "1'b0"),
                        GateKind::Xor => join(gate.inputs.iter().map(literal), " ^ ", "1'b0"),
                    };
                    writeln!(body, "    assign {name} = {rhs};").unwrap();
                    names.push(name);
                }
            }
        }
        // Declare internal wires before the assigns.
        for (idx, driver) in self.drivers.iter().enumerate() {
            if matches!(driver, Driver::Gate(_)) {
                writeln!(out, "    wire w{idx};").unwrap();
            }
        }
        out.push_str(&body);
        for (k, lit) in self.outputs.iter().enumerate() {
            let rhs = if lit.inverted {
                format!("~{}", names[lit.wire.index()])
            } else {
                names[lit.wire.index()].clone()
            };
            writeln!(out, "    assign out_{k} = {rhs};").unwrap();
        }
        writeln!(out, "endmodule").unwrap();
        out
    }
}

fn join<I: Iterator<Item = String>>(terms: I, sep: &str, empty: &str) -> String {
    let parts: Vec<String> = terms.collect();
    if parts.is_empty() {
        empty.to_string()
    } else {
        parts.join(sep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A minimal interpreter for the exact Verilog subset we emit:
    /// `assign name = term (op term)*;` with `~`-prefixed terms and 1'b
    /// constants — enough to cross-check semantics without a simulator.
    fn interpret(verilog: &str, inputs: &[bool]) -> Vec<bool> {
        let mut env: HashMap<String, bool> = HashMap::new();
        for (k, &v) in inputs.iter().enumerate() {
            env.insert(format!("in_{k}"), v);
        }
        let mut outputs: Vec<(usize, bool)> = Vec::new();
        for line in verilog.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("assign ") else {
                continue;
            };
            let (lhs, rhs) = rest.split_once('=').expect("assign form");
            let lhs = lhs.trim();
            let rhs = rhs.trim().trim_end_matches(';');
            let (op, neutral) = if rhs.contains('&') {
                ('&', true)
            } else if rhs.contains('|') {
                ('|', false)
            } else if rhs.contains('^') {
                ('^', false)
            } else {
                ('|', false) // single term; neutral unused
            };
            let mut value = if rhs.contains(['&', '|', '^']) {
                neutral
            } else {
                false
            };
            let mut single: Option<bool> = None;
            for term in rhs.split(['&', '|', '^']) {
                let term = term.trim();
                let (neg, name) = match term.strip_prefix('~') {
                    Some(n) => (true, n),
                    None => (false, term),
                };
                let bit = match name {
                    "1'b0" => false,
                    "1'b1" => true,
                    other => *env
                        .get(other)
                        .unwrap_or_else(|| panic!("undefined {other}")),
                } ^ neg;
                if rhs.contains(['&', '|', '^']) {
                    value = match op {
                        '&' => value & bit,
                        '|' => value | bit,
                        _ => value ^ bit,
                    };
                } else {
                    single = Some(bit);
                }
            }
            let result = single.unwrap_or(value);
            if let Some(k) = lhs.strip_prefix("out_") {
                outputs.push((k.parse().unwrap(), result));
            }
            env.insert(lhs.to_string(), result);
        }
        outputs.sort_by_key(|&(k, _)| k);
        outputs.into_iter().map(|(_, v)| v).collect()
    }

    #[test]
    fn verilog_matches_eval_on_a_mixed_circuit() {
        let mut nl = Netlist::new();
        let ins = nl.inputs_n(4);
        let t = nl.constant(true);
        let a = nl.and([Literal::pos(ins[0]), Literal::neg(ins[1]), t]);
        let b = nl.or([a, Literal::pos(ins[2])]);
        let c = nl.xor([b, Literal::neg(ins[3])]);
        nl.mark_output(c);
        nl.mark_output(Literal::neg(a.wire));
        let verilog = nl.to_verilog("mixed");
        assert!(verilog.starts_with("module mixed ("));
        assert!(verilog.trim_end().ends_with("endmodule"));
        for pattern in 0u8..16 {
            let bits: Vec<bool> = (0..4).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(
                interpret(&verilog, &bits),
                nl.eval(&bits),
                "pattern {pattern:#x}"
            );
        }
    }

    #[test]
    fn verilog_matches_eval_on_hyperconcentrator_shape() {
        // A compaction-like AND-OR plane circuit (structure mirrors the
        // chip netlists this will actually export).
        let mut nl = Netlist::new();
        let ins = nl.inputs_n(6);
        let mut layer: Vec<Literal> = ins.iter().copied().map(Literal::pos).collect();
        for round in 0..2 {
            let mut next = Vec::new();
            for i in 0..layer.len() - 1 {
                let a = nl.and([layer[i], layer[i + 1].complement()]);
                let o = nl.or([a, layer[(i + round) % layer.len()]]);
                next.push(o);
            }
            layer = next;
        }
        for lit in &layer {
            nl.mark_output(*lit);
        }
        let verilog = nl.to_verilog("plane");
        for pattern in 0u8..64 {
            let bits: Vec<bool> = (0..6).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(interpret(&verilog, &bits), nl.eval(&bits));
        }
    }

    #[test]
    fn module_structure_is_well_formed() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let g = nl.and([a]);
        nl.mark_output(g);
        let v = nl.to_verilog("tiny");
        assert_eq!(v.matches("input  wire").count(), 1);
        assert_eq!(v.matches("output wire").count(), 1);
        assert_eq!(v.matches("assign").count(), 2); // gate + output
    }

    #[test]
    #[should_panic(expected = "invalid Verilog module name")]
    fn bad_module_names_are_rejected() {
        Netlist::new().to_verilog("1bad name");
    }
}
