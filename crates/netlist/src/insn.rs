//! Phase 2 of the compiler: lowering a levelized [`Schedule`] to a dense
//! instruction stream, and the wide-lane emulator that sweeps it.
//!
//! The phase-1 schedule is faithful but pointer-heavy: evaluating a gate
//! means indexing a prefix-offset table, walking a variable-length literal
//! span, and folding through a closure — per gate, per 64-lane word. This
//! module compiles the schedule **once** into the form hardware emulation
//! engines use:
//!
//! * **Dense instructions.** Every gate lowers to one or more fixed-width
//!   16-byte records (`op/src-a/src-b/dst`, inversion flags packed into the
//!   opcode word). Fan-in-k gates become a seeded accumulator chain of k−1
//!   binary ops into the destination, so the emulator's hot loop is a
//!   single linear pass with no indirection: fetch, two loads, op, store.
//! * **Level-blocked slot allocation.** Wire values live in *slots*
//!   assigned by a liveness pass: a wire's slot is recycled once its last
//!   reader level has run. Peak live wires is far below total wires in a
//!   levelized sorting network, so the working set drops from
//!   `wires × lanes` to `slots × lanes` — small enough to stay cache
//!   resident while the instruction stream streams past it. Frees are
//!   deferred to level boundaries, which also makes every level's
//!   instructions write-disjoint across chips (see below).
//! * **Wide lanes.** The emulator sweeps lane *groups* of 1, 4, or 8
//!   64-bit words (64 / 256 / 512 test vectors per instruction fetch),
//!   monomorphized per width, with explicit AVX2/AVX-512 kernels selected
//!   at runtime on x86-64. One instruction fetch is amortized over up to
//!   512 vectors.
//! * **Chip-partitioned levels.** Gates are assigned to chips by the
//!   partitioner pass ([`crate::partition`]); the stream is ordered
//!   (level, chip, gate), and per-(level, chip) instruction ranges are
//!   recorded so a thread team can execute one level concurrently —
//!   barrier between levels, chips striped across threads. Slot recycling
//!   deferred to level boundaries guarantees no two chips touch the same
//!   slot within a level (checked by [`InsnStream::self_check`]).

use crate::compile::{unpack, Op, Schedule};
use crate::matrix::BitMatrix;
use crate::partition::Partition;
use std::sync::Barrier;

/// Opcode field of [`Insn::opword`] (bits 0..3).
pub(crate) const OP_AND: u32 = 0;
pub(crate) const OP_OR: u32 = 1;
pub(crate) const OP_XOR: u32 = 2;
pub(crate) const OP_COPY: u32 = 3;
pub(crate) const OP_CONST0: u32 = 4;
pub(crate) const OP_CONST1: u32 = 5;
/// Inversion flag of source a (bit 3) / source b (bit 4) of `opword`.
pub(crate) const INV_A: u32 = 1 << 3;
pub(crate) const INV_B: u32 = 1 << 4;

const OP_MASK: u32 = 7;

/// One emulator instruction: `dst = a op b` over a whole lane group.
///
/// 16 bytes, fixed width: the stream is a flat `Vec<Insn>` the sweep walks
/// front to back, so instruction fetch is a linear prefetch-friendly scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub(crate) struct Insn {
    /// Source slot a (ignored by const ops).
    pub a: u32,
    /// Source slot b (ignored by const and copy ops).
    pub b: u32,
    /// Destination slot.
    pub dst: u32,
    /// Opcode plus inversion flags: bits 0..3 opcode, bit 3 invert a,
    /// bit 4 invert b.
    pub opword: u32,
}

/// The compiled instruction stream plus everything the emulator needs to
/// run it: slot bindings for primary inputs and outputs, stuck-input
/// forces, level boundaries, and per-(level, chip) ranges.
#[derive(Debug, Clone)]
pub(crate) struct InsnStream {
    pub insns: Vec<Insn>,
    /// Instruction-index boundaries per level: level `l` is
    /// `insns[level_bounds[l]..level_bounds[l+1]]`.
    pub level_bounds: Vec<u32>,
    /// Per-(level, chip) instruction subranges, flattened row-major:
    /// level `l`, chip `c` at `chip_ranges[l * chips + c]`.
    pub chip_ranges: Vec<(u32, u32)>,
    /// Number of chips the stream is partitioned into.
    pub chips: usize,
    /// Value slots required (scratch words per lane).
    pub slot_count: usize,
    /// Slot of each primary input, in input-ordinal order.
    pub input_slots: Vec<u32>,
    /// Stuck-input forces: `(slot, value)` written after input load.
    pub forces: Vec<(u32, bool)>,
    /// Primary outputs: `(slot, inverted)` in marking order.
    pub outputs: Vec<(u32, bool)>,
}

/// Lower `sched` onto `part`'s chips: liveness-allocate slots, emit the
/// instruction stream in (level, chip, gate) order, and record the
/// per-level chip ranges.
pub(crate) fn lower(sched: &Schedule, part: &Partition) -> InsnStream {
    let num_levels = sched.levels.len() - 1;
    let chips = part.chips.max(1);
    let gate_count = sched.ops.len();

    // Gates regrouped by (level, chip), stable within a group.
    let mut by_level_chip: Vec<Vec<u32>> = vec![Vec::new(); num_levels * chips];
    for (l, level) in sched.levels.windows(2).enumerate() {
        for g in level[0]..level[1] {
            let c = part.chip_of_gate[g as usize] as usize;
            by_level_chip[l * chips + c].push(g);
        }
    }

    // Liveness: the last level (1-based; inputs are level 0) at which each
    // wire is read. Output wires are pinned — their slot never recycles,
    // so the post-sweep output read always sees the final value.
    let mut last_use = vec![0u32; sched.wire_count];
    for (l, level) in sched.levels.windows(2).enumerate() {
        for g in level[0] as usize..level[1] as usize {
            for &packed in sched.gate_lits(g) {
                let w = (packed >> 1) as usize;
                last_use[w] = last_use[w].max(l as u32 + 1);
            }
        }
    }
    let mut pinned = vec![false; sched.wire_count];
    for &packed in &sched.outputs {
        pinned[(packed >> 1) as usize] = true;
    }

    // Slot allocation with frees deferred to level boundaries: a slot
    // last read at level `r` re-enters the free list only when level
    // `r + 1` starts, so within any single level the set of slots written
    // is disjoint from the slots any other chip reads or writes.
    let mut slot_of = vec![u32::MAX; sched.wire_count];
    let mut free: Vec<u32> = Vec::new();
    let mut pending: Vec<Vec<u32>> = vec![Vec::new(); num_levels + 2];
    let mut next_slot = 0u32;
    let mut alloc = |free: &mut Vec<u32>| -> u32 {
        free.pop().unwrap_or_else(|| {
            let s = next_slot;
            next_slot += 1;
            s
        })
    };

    // Level 0: primary inputs.
    let mut input_slots = Vec::with_capacity(sched.input_wires.len());
    for &w in &sched.input_wires {
        let s = alloc(&mut free);
        slot_of[w as usize] = s;
        input_slots.push(s);
        if !pinned[w as usize] {
            pending[last_use[w as usize] as usize].push(s);
        }
    }

    let mut insns: Vec<Insn> = Vec::with_capacity(gate_count + gate_count / 4);
    let mut level_bounds = vec![0u32];
    let mut chip_ranges = Vec::with_capacity(num_levels * chips);
    let mut drained = 0usize;

    for l in 0..num_levels {
        // Def level of this schedule level is l + 1: recycle every slot
        // whose last read is at level ≤ l.
        while drained <= l {
            free.append(&mut pending[drained]);
            drained += 1;
        }
        let def_level = (l + 1) as u32;
        for c in 0..chips {
            let start = insns.len() as u32;
            for &g in &by_level_chip[l * chips + c] {
                let g = g as usize;
                let w = sched.outs[g] as usize;
                let dst = alloc(&mut free);
                slot_of[w] = dst;
                if !pinned[w] {
                    pending[last_use[w].max(def_level) as usize].push(dst);
                }
                emit_gate(sched, g, dst, &slot_of, &mut insns);
            }
            chip_ranges.push((start, insns.len() as u32));
        }
        level_bounds.push(insns.len() as u32);
    }

    let forces = sched
        .forces
        .iter()
        .map(|&(w, v)| {
            let s = slot_of[w as usize];
            debug_assert_ne!(s, u32::MAX, "force names an unallocated wire");
            (s, v)
        })
        .collect();
    let outputs = sched
        .outputs
        .iter()
        .map(|&packed| {
            let lit = unpack(packed);
            let s = slot_of[lit.wire.index()];
            assert_ne!(s, u32::MAX, "output reads an undriven wire");
            (s, lit.inverted)
        })
        .collect();

    let stream = InsnStream {
        insns,
        level_bounds,
        chip_ranges,
        chips,
        slot_count: next_slot as usize,
        input_slots,
        forces,
        outputs,
    };
    #[cfg(debug_assertions)]
    stream.self_check();
    stream
}

/// Emit the instruction(s) computing schedule gate `g` into `dst`.
fn emit_gate(sched: &Schedule, g: usize, dst: u32, slot_of: &[u32], insns: &mut Vec<Insn>) {
    let slot = |packed: u32| -> (u32, bool) {
        let lit = unpack(packed);
        let s = slot_of[lit.wire.index()];
        debug_assert_ne!(s, u32::MAX, "gate reads an unallocated wire");
        (s, lit.inverted)
    };
    let konst = |value: bool| Insn {
        a: 0,
        b: 0,
        dst,
        opword: if value { OP_CONST1 } else { OP_CONST0 },
    };
    let lits = sched.gate_lits(g);
    let op2 = match sched.ops[g] {
        Op::ConstTrue => {
            insns.push(konst(true));
            return;
        }
        Op::ConstFalse => {
            insns.push(konst(false));
            return;
        }
        Op::Buf => {
            let (a, inv) = slot(lits[0]);
            insns.push(Insn {
                a,
                b: 0,
                dst,
                opword: OP_COPY | if inv { INV_A } else { 0 },
            });
            return;
        }
        Op::And => OP_AND,
        Op::Or => OP_OR,
        Op::Xor => OP_XOR,
    };
    match lits {
        // Fold identities of the interpreters: empty AND is true, empty
        // OR/XOR are false.
        [] => insns.push(konst(op2 == OP_AND)),
        [only] => {
            let (a, inv) = slot(*only);
            insns.push(Insn {
                a,
                b: 0,
                dst,
                opword: OP_COPY | if inv { INV_A } else { 0 },
            });
        }
        [first, second, rest @ ..] => {
            let (a, ia) = slot(*first);
            let (b, ib) = slot(*second);
            insns.push(Insn {
                a,
                b,
                dst,
                opword: op2 | if ia { INV_A } else { 0 } | if ib { INV_B } else { 0 },
            });
            // Accumulator chain: dst = dst op next, same level and chip,
            // executed sequentially by the owning worker.
            for &packed in rest {
                let (b, ib) = slot(packed);
                insns.push(Insn {
                    a: dst,
                    b,
                    dst,
                    opword: op2 | if ib { INV_B } else { 0 },
                });
            }
        }
    }
}

/// SIMD kernel selection, probed once at compile time and carried by the
/// engine so cached compilations never re-probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Simd {
    /// Portable unrolled u64 loops (auto-vectorized by the compiler).
    Scalar,
    /// 256-bit AVX2 kernels for the 4- and 8-word lane groups.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// 512-bit AVX-512F kernel for the 8-word lane group (AVX2 for 4).
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

pub(crate) fn detect_simd() -> Simd {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Simd::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Simd::Avx2;
        }
    }
    Simd::Scalar
}

/// Execute one instruction over a lane group of `LW` words.
///
/// # Safety
/// `vals` must point to at least `slot_count * LW` words and the
/// instruction's slots must be `< slot_count` ([`InsnStream::self_check`]
/// validates the stream once at compile time).
#[inline(always)]
unsafe fn exec<const LW: usize>(vals: *mut u64, i: Insn) {
    let ma = (((i.opword >> 3) & 1) as u64).wrapping_neg();
    let mb = (((i.opword >> 4) & 1) as u64).wrapping_neg();
    let a = vals.add(i.a as usize * LW);
    let b = vals.add(i.b as usize * LW);
    let d = vals.add(i.dst as usize * LW);
    match i.opword & OP_MASK {
        OP_AND => {
            for k in 0..LW {
                *d.add(k) = (*a.add(k) ^ ma) & (*b.add(k) ^ mb);
            }
        }
        OP_OR => {
            for k in 0..LW {
                *d.add(k) = (*a.add(k) ^ ma) | (*b.add(k) ^ mb);
            }
        }
        OP_XOR => {
            for k in 0..LW {
                *d.add(k) = (*a.add(k) ^ ma) ^ (*b.add(k) ^ mb);
            }
        }
        OP_COPY => {
            for k in 0..LW {
                *d.add(k) = *a.add(k) ^ ma;
            }
        }
        OP_CONST0 => {
            for k in 0..LW {
                *d.add(k) = 0;
            }
        }
        _ => {
            for k in 0..LW {
                *d.add(k) = !0;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Explicit 256/512-bit kernels. The portable `exec` loops already
    //! auto-vectorize to the baseline 128-bit SSE2; these widen one
    //! instruction's lane group to one or two native vector ops.
    use super::{Insn, OP_AND, OP_CONST0, OP_COPY, OP_MASK, OP_OR, OP_XOR};
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller guarantees AVX2, `vals` covers `slot_count * 4` words, and
    /// instruction slots are in range.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn exec_w4(vals: *mut u64, i: Insn) {
        let ma = _mm256_set1_epi64x((((i.opword >> 3) & 1) as i64).wrapping_neg());
        let mb = _mm256_set1_epi64x((((i.opword >> 4) & 1) as i64).wrapping_neg());
        let a = vals.add(i.a as usize * 4) as *const __m256i;
        let b = vals.add(i.b as usize * 4) as *const __m256i;
        let d = vals.add(i.dst as usize * 4) as *mut __m256i;
        let r = match i.opword & OP_MASK {
            OP_AND => _mm256_and_si256(
                _mm256_xor_si256(_mm256_loadu_si256(a), ma),
                _mm256_xor_si256(_mm256_loadu_si256(b), mb),
            ),
            OP_OR => _mm256_or_si256(
                _mm256_xor_si256(_mm256_loadu_si256(a), ma),
                _mm256_xor_si256(_mm256_loadu_si256(b), mb),
            ),
            OP_XOR => _mm256_xor_si256(
                _mm256_xor_si256(_mm256_loadu_si256(a), ma),
                _mm256_xor_si256(_mm256_loadu_si256(b), mb),
            ),
            OP_COPY => _mm256_xor_si256(_mm256_loadu_si256(a), ma),
            OP_CONST0 => _mm256_setzero_si256(),
            _ => _mm256_set1_epi64x(-1),
        };
        _mm256_storeu_si256(d, r);
    }

    /// # Safety
    /// As [`exec_w4`], over two 256-bit halves of an 8-word group.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn exec_w8_avx2(vals: *mut u64, i: Insn) {
        let ma = _mm256_set1_epi64x((((i.opword >> 3) & 1) as i64).wrapping_neg());
        let mb = _mm256_set1_epi64x((((i.opword >> 4) & 1) as i64).wrapping_neg());
        let a = vals.add(i.a as usize * 8) as *const __m256i;
        let b = vals.add(i.b as usize * 8) as *const __m256i;
        let d = vals.add(i.dst as usize * 8) as *mut __m256i;
        for h in 0..2 {
            let r = match i.opword & OP_MASK {
                OP_AND => _mm256_and_si256(
                    _mm256_xor_si256(_mm256_loadu_si256(a.add(h)), ma),
                    _mm256_xor_si256(_mm256_loadu_si256(b.add(h)), mb),
                ),
                OP_OR => _mm256_or_si256(
                    _mm256_xor_si256(_mm256_loadu_si256(a.add(h)), ma),
                    _mm256_xor_si256(_mm256_loadu_si256(b.add(h)), mb),
                ),
                OP_XOR => _mm256_xor_si256(
                    _mm256_xor_si256(_mm256_loadu_si256(a.add(h)), ma),
                    _mm256_xor_si256(_mm256_loadu_si256(b.add(h)), mb),
                ),
                OP_COPY => _mm256_xor_si256(_mm256_loadu_si256(a.add(h)), ma),
                OP_CONST0 => _mm256_setzero_si256(),
                _ => _mm256_set1_epi64x(-1),
            };
            _mm256_storeu_si256(d.add(h), r);
        }
    }

    /// # Safety
    /// Caller guarantees AVX-512F, `vals` covers `slot_count * 8` words,
    /// and instruction slots are in range.
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn exec_w8_avx512(vals: *mut u64, i: Insn) {
        let ma = _mm512_set1_epi64((((i.opword >> 3) & 1) as i64).wrapping_neg());
        let mb = _mm512_set1_epi64((((i.opword >> 4) & 1) as i64).wrapping_neg());
        let a = vals.add(i.a as usize * 8) as *const __m512i;
        let b = vals.add(i.b as usize * 8) as *const __m512i;
        let d = vals.add(i.dst as usize * 8) as *mut __m512i;
        let r = match i.opword & OP_MASK {
            OP_AND => _mm512_and_si512(
                _mm512_xor_si512(_mm512_loadu_si512(a), ma),
                _mm512_xor_si512(_mm512_loadu_si512(b), mb),
            ),
            OP_OR => _mm512_or_si512(
                _mm512_xor_si512(_mm512_loadu_si512(a), ma),
                _mm512_xor_si512(_mm512_loadu_si512(b), mb),
            ),
            OP_XOR => _mm512_xor_si512(
                _mm512_xor_si512(_mm512_loadu_si512(a), ma),
                _mm512_xor_si512(_mm512_loadu_si512(b), mb),
            ),
            OP_COPY => _mm512_xor_si512(_mm512_loadu_si512(a), ma),
            OP_CONST0 => _mm512_setzero_si512(),
            _ => _mm512_set1_epi64(-1),
        };
        _mm512_storeu_si512(d, r);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_w4(insns: &[Insn], vals: *mut u64) {
        for &i in insns {
            exec_w4(vals, i);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_w8_avx2(insns: &[Insn], vals: *mut u64) {
        for &i in insns {
            exec_w8_avx2(vals, i);
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn run_w8_avx512(insns: &[Insn], vals: *mut u64) {
        for &i in insns {
            exec_w8_avx512(vals, i);
        }
    }
}

impl InsnStream {
    /// Number of levels.
    #[inline]
    pub fn level_count(&self) -> usize {
        self.level_bounds.len() - 1
    }

    /// Execute instructions `[lo, hi)` over lane groups of `lw` words.
    ///
    /// # Safety
    /// `vals` must cover `slot_count * lw` words; `lw ∈ {1, 4, 8}`.
    unsafe fn run_range(&self, lo: usize, hi: usize, lw: usize, vals: *mut u64, simd: Simd) {
        let insns = &self.insns[lo..hi];
        match lw {
            1 => {
                for &i in insns {
                    exec::<1>(vals, i);
                }
            }
            4 => match simd {
                #[cfg(target_arch = "x86_64")]
                Simd::Avx2 | Simd::Avx512 => x86::run_w4(insns, vals),
                _ => {
                    for &i in insns {
                        exec::<4>(vals, i);
                    }
                }
            },
            8 => match simd {
                #[cfg(target_arch = "x86_64")]
                Simd::Avx512 => x86::run_w8_avx512(insns, vals),
                #[cfg(target_arch = "x86_64")]
                Simd::Avx2 => x86::run_w8_avx2(insns, vals),
                _ => {
                    for &i in insns {
                        exec::<8>(vals, i);
                    }
                }
            },
            _ => unreachable!("lane group width must be 1, 4, or 8 words"),
        }
    }

    /// One full sequential sweep over a lane group of `lw` words. Inputs
    /// and forces must already be loaded into `vals`.
    pub(crate) fn sweep(&self, lw: usize, vals: &mut [u64], simd: Simd) {
        assert!(vals.len() >= self.slot_count * lw, "vals buffer too small");
        // SAFETY: buffer length checked above; slot bounds validated by
        // self_check at construction.
        unsafe { self.run_range(0, self.insns.len(), lw, vals.as_mut_ptr(), simd) }
    }

    /// Load the lane group starting at word `w0` (width `lw`) from
    /// `inputs` into `vals`, then apply stuck-input forces.
    pub(crate) fn load_group(&self, inputs: &BitMatrix, w0: usize, lw: usize, vals: &mut [u64]) {
        for (ord, &slot) in self.input_slots.iter().enumerate() {
            let src = &inputs.row_words(ord)[w0..w0 + lw];
            vals[slot as usize * lw..slot as usize * lw + lw].copy_from_slice(src);
        }
        for &(slot, value) in &self.forces {
            let fill = if value { !0u64 } else { 0u64 };
            vals[slot as usize * lw..slot as usize * lw + lw].fill(fill);
        }
    }

    /// Read the output lane group back out of `vals` into `sink(output,
    /// word-within-group, value)`.
    pub(crate) fn store_group(
        &self,
        lw: usize,
        vals: &[u64],
        mut sink: impl FnMut(usize, usize, u64),
    ) {
        for (o, &(slot, inverted)) in self.outputs.iter().enumerate() {
            let m = (inverted as u64).wrapping_neg();
            for k in 0..lw {
                sink(o, k, vals[slot as usize * lw + k] ^ m);
            }
        }
    }

    /// Sweep an entire word range `[lo, hi)` of `inputs` into `sink`,
    /// choosing the widest lane group that fits at each step (bounded by
    /// `max_lw`). `vals` must cover `slot_count * max_lw` words.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sweep_word_range(
        &self,
        inputs: &BitMatrix,
        lo: usize,
        hi: usize,
        max_lw: usize,
        vals: &mut [u64],
        simd: Simd,
        sink: &mut impl FnMut(usize, usize, u64),
    ) {
        let mut w = lo;
        while w < hi {
            let left = hi - w;
            let lw = if left >= 8 && max_lw >= 8 {
                8
            } else if left >= 4 && max_lw >= 4 {
                4
            } else {
                1
            };
            self.load_group(inputs, w, lw, vals);
            self.sweep(lw, &mut vals[..self.slot_count * lw], simd);
            let base = w;
            self.store_group(lw, vals, |o, k, v| sink(o, base + k, v));
            w += lw;
        }
    }

    /// Validate the stream: every slot index in range, and every level's
    /// instructions parallel-safe across chips — no slot written by two
    /// chips in one level, and no slot read by one chip while another
    /// writes it in the same level (same-chip read-after-write is the
    /// sequential accumulator chain and is allowed).
    pub(crate) fn self_check(&self) {
        use std::collections::HashMap;
        let n = self.slot_count as u32;
        for i in &self.insns {
            assert!(
                i.a < n && i.b < n && i.dst < n,
                "instruction slot out of range"
            );
        }
        for &(s, _) in &self.forces {
            assert!(s < n, "force slot out of range");
        }
        for &(s, _) in &self.outputs {
            assert!(s < n, "output slot out of range");
        }
        assert_eq!(self.chip_ranges.len(), self.level_count() * self.chips);
        for l in 0..self.level_count() {
            let mut writer: HashMap<u32, usize> = HashMap::new();
            for c in 0..self.chips {
                let (lo, hi) = self.chip_ranges[l * self.chips + c];
                assert!(
                    self.level_bounds[l] <= lo && hi <= self.level_bounds[l + 1],
                    "chip range escapes its level"
                );
                for i in &self.insns[lo as usize..hi as usize] {
                    if let Some(&prev) = writer.get(&i.dst) {
                        assert_eq!(
                            prev, c,
                            "slot {} written by chips {} and {} in level {}",
                            i.dst, prev, c, l
                        );
                    }
                    writer.insert(i.dst, c);
                }
            }
            for c in 0..self.chips {
                let (lo, hi) = self.chip_ranges[l * self.chips + c];
                for i in &self.insns[lo as usize..hi as usize] {
                    let op = i.opword & OP_MASK;
                    let reads: &[u32] = match op {
                        OP_CONST0 | OP_CONST1 => &[],
                        OP_COPY => std::slice::from_ref(&i.a),
                        _ => &[i.a, i.b],
                    };
                    for &r in reads {
                        if let Some(&wc) = writer.get(&r) {
                            assert_eq!(
                                wc, c,
                                "chip {c} reads slot {r} written by chip {wc} in level {l}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Level-parallel evaluation: a team of `threads` workers sweeps every
    /// lane group of `inputs` cooperatively — chips striped across
    /// workers, one barrier per level — instead of splitting lanes.
    /// Profitable when the circuit is large but the batch is narrow.
    pub(crate) fn eval_level_parallel(
        &self,
        inputs: &BitMatrix,
        out: &mut BitMatrix,
        threads: usize,
        simd: Simd,
    ) {
        let words = inputs.words_per_row();
        let team = threads.clamp(1, self.chips.max(1));
        let mut vals = vec![0u64; self.slot_count * 8];
        if team <= 1 || words == 0 {
            let mut sink = |o: usize, w: usize, v: u64| *out.word_mut(o, w) = v;
            self.sweep_word_range(inputs, 0, words, 8, &mut vals, simd, &mut sink);
            return;
        }

        // Group plan shared by every worker: (start word, group width).
        let mut groups = Vec::new();
        let mut w = 0usize;
        while w < words {
            let lw = if words - w >= 8 {
                8
            } else if words - w >= 4 {
                4
            } else {
                1
            };
            groups.push((w, lw));
            w += lw;
        }

        struct ValsPtr(*mut u64);
        // SAFETY: workers write disjoint slots within a level (checked by
        // self_check) and synchronize between levels with a barrier.
        unsafe impl Send for ValsPtr {}
        unsafe impl Sync for ValsPtr {}
        impl ValsPtr {
            // Accessor rather than field reads in closures: 2021 disjoint
            // capture would otherwise capture the raw `*mut u64` field
            // itself, bypassing the wrapper's Send/Sync.
            #[inline]
            fn get(&self) -> *mut u64 {
                self.0
            }
        }
        let shared = ValsPtr(vals.as_mut_ptr());
        let barrier = Barrier::new(team);
        let levels = self.level_count();

        let run_levels = |tid: usize, lw: usize| {
            for l in 0..levels {
                let mut c = tid;
                while c < self.chips {
                    let (lo, hi) = self.chip_ranges[l * self.chips + c];
                    // SAFETY: slot indices validated at compile; chips are
                    // write-disjoint within a level; barrier below orders
                    // cross-level reads after writes.
                    unsafe { self.run_range(lo as usize, hi as usize, lw, shared.get(), simd) };
                    c += team;
                }
                barrier.wait();
            }
        };

        std::thread::scope(|scope| {
            for tid in 1..team {
                let barrier = &barrier;
                let groups = &groups;
                scope.spawn(move || {
                    for &(_, lw) in groups {
                        barrier.wait(); // leader finished loading inputs
                        run_levels(tid, lw);
                        barrier.wait(); // leader may now store outputs
                    }
                });
            }
            // The caller's thread is worker 0 and owns load/store phases;
            // between the closing and opening barriers the other workers
            // are parked, so touching `vals` directly is race-free.
            for &(w0, lw) in &groups {
                // SAFETY: no worker touches vals outside run_levels.
                let vals =
                    unsafe { std::slice::from_raw_parts_mut(shared.get(), self.slot_count * 8) };
                self.load_group(inputs, w0, lw, &mut vals[..self.slot_count * lw]);
                barrier.wait();
                run_levels(0, lw);
                barrier.wait();
                self.store_group(lw, &vals[..self.slot_count * lw], |o, k, v| {
                    *out.word_mut(o, w0 + k) = v;
                });
            }
        });
    }
}
