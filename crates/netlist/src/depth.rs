//! Critical-path (gate-delay) analysis.

use serde::{Deserialize, Serialize};

use crate::builder::{Driver, Netlist};

/// Result of a depth analysis over a netlist.
///
/// Depth is measured in gate delays under the paper's technology convention:
/// one delay per (arbitrarily wide) AND/OR plane and per pad driver, zero for
/// constants and wiring, complements free. This is the quantity the paper's
/// "`3 lg n + O(1)` gate delays" statements refer to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthReport {
    /// Depth of every wire (delay from primary inputs to that wire).
    pub wire_depth: Vec<u32>,
    /// Depth of each marked output.
    pub output_depth: Vec<u32>,
    /// Maximum over all marked outputs — the circuit's gate-delay count.
    pub critical_path: u32,
}

impl Netlist {
    /// Compute per-wire and per-output depths.
    pub fn depth_report(&self) -> DepthReport {
        let mut wire_depth = vec![0u32; self.drivers.len()];
        let mut gate_cursor = 0usize;
        for (idx, driver) in self.drivers.iter().enumerate() {
            match driver {
                Driver::Input(_) => wire_depth[idx] = 0,
                Driver::Gate(_) => {
                    let gate = &self.gates[gate_cursor];
                    gate_cursor += 1;
                    let input_max = gate
                        .inputs
                        .iter()
                        .map(|l| wire_depth[l.wire.index()])
                        .max()
                        .unwrap_or(0);
                    wire_depth[idx] = input_max + gate.kind.delay();
                }
            }
        }
        let output_depth: Vec<u32> = self
            .outputs
            .iter()
            .map(|l| wire_depth[l.wire.index()])
            .collect();
        let critical_path = output_depth.iter().copied().max().unwrap_or(0);
        DepthReport {
            wire_depth,
            output_depth,
            critical_path,
        }
    }

    /// Convenience: the critical-path gate-delay count.
    pub fn depth(&self) -> u32 {
        self.depth_report().critical_path
    }

    /// Extract one critical path: the wires from a primary input to the
    /// deepest output, deepest-predecessor-first. Useful for pointing at
    /// *which* merge chain realizes the `2 lg n` bound.
    pub fn critical_path(&self) -> Vec<crate::Wire> {
        let report = self.depth_report();
        let Some(start) = self
            .outputs
            .iter()
            .max_by_key(|l| report.wire_depth[l.wire.index()])
            .map(|l| l.wire)
        else {
            return Vec::new();
        };
        // Map each gate-driven wire to its gate for backtracking.
        let mut driver_gate = vec![usize::MAX; self.drivers.len()];
        for (g, gate) in self.gates.iter().enumerate() {
            driver_gate[gate.output.index()] = g;
        }
        let mut path = vec![start];
        let mut current = start;
        loop {
            let g = driver_gate[current.index()];
            if g == usize::MAX {
                break; // reached a primary input (or constant)
            }
            let gate = &self.gates[g];
            let Some(pred) = gate
                .inputs
                .iter()
                .max_by_key(|l| report.wire_depth[l.wire.index()])
                .map(|l| l.wire)
            else {
                break; // constant driver
            };
            path.push(pred);
            current = pred;
        }
        path.reverse();
        path
    }

    /// Critical path if every gate's fan-in were bounded at `limit`
    /// (each wide gate replaced by a balanced tree of `limit`-input
    /// gates). Quantifies what the wide-gate (ratioed nMOS) technology
    /// assumption buys — the ablation of DESIGN.md §5.
    pub fn depth_bounded_fanin(&self, limit: usize) -> u32 {
        assert!(limit >= 2, "fan-in limit must be at least 2");
        let tree_levels = |fan_in: usize| -> u32 {
            if fan_in <= 1 {
                1
            } else {
                // ⌈log_limit(fan_in)⌉
                let mut levels = 0u32;
                let mut reach = 1usize;
                while reach < fan_in {
                    reach = reach.saturating_mul(limit);
                    levels += 1;
                }
                levels
            }
        };
        let mut wire_depth = vec![0u32; self.drivers.len()];
        let mut gate_cursor = 0usize;
        let mut critical = 0u32;
        for (idx, driver) in self.drivers.iter().enumerate() {
            match driver {
                Driver::Input(_) => wire_depth[idx] = 0,
                Driver::Gate(_) => {
                    let gate = &self.gates[gate_cursor];
                    gate_cursor += 1;
                    let input_max = gate
                        .inputs
                        .iter()
                        .map(|l| wire_depth[l.wire.index()])
                        .max()
                        .unwrap_or(0);
                    let cost = match gate.kind {
                        crate::GateKind::Const(_) => 0,
                        crate::GateKind::Buf => 1,
                        _ => gate.kind.delay().max(tree_levels(gate.fan_in())),
                    };
                    wire_depth[idx] = input_max + cost;
                }
            }
        }
        for lit in &self.outputs {
            critical = critical.max(wire_depth[lit.wire.index()]);
        }
        critical
    }
}

#[cfg(test)]
mod tests {
    use crate::{Literal, Netlist};

    #[test]
    fn inputs_have_zero_depth() {
        let mut nl = Netlist::new();
        let a = nl.input();
        nl.mark_output(Literal::pos(a));
        assert_eq!(nl.depth(), 0);
    }

    #[test]
    fn and_or_chain_counts_levels() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let t1 = nl.and([a, b]);
        let t2 = nl.or([t1, Literal::pos(a)]);
        let t3 = nl.and([t2, Literal::neg(b)]);
        nl.mark_output(t3);
        assert_eq!(nl.depth(), 3);
    }

    #[test]
    fn complements_are_free() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let t = nl.and([Literal::neg(a)]);
        nl.mark_output(t);
        assert_eq!(nl.depth(), 1, "inversion must not add a level");
    }

    #[test]
    fn wide_gates_are_one_level() {
        let mut nl = Netlist::new();
        let ins = nl.inputs_n(1000);
        let lits: Vec<Literal> = ins.iter().copied().map(Literal::pos).collect();
        let t = nl.or(lits);
        nl.mark_output(t);
        assert_eq!(nl.depth(), 1, "fan-in must not affect delay in this model");
    }

    #[test]
    fn constants_have_zero_depth_pads_have_one() {
        let mut nl = Netlist::new();
        let c = nl.constant(true);
        let p = nl.buf(c);
        nl.mark_output(p);
        assert_eq!(nl.depth(), 1);
    }

    #[test]
    fn critical_path_walks_input_to_deepest_output() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let t1 = nl.and([a, b]);
        let t2 = nl.or([t1, Literal::pos(a)]);
        let shallow = nl.and([a]);
        nl.mark_output(shallow);
        nl.mark_output(t2);
        let path = nl.critical_path();
        // input -> t1 -> t2: three wires, strictly increasing depth.
        assert_eq!(path.len(), 3);
        assert_eq!(path.last().copied(), Some(t2.wire));
        let report = nl.depth_report();
        for w in path.windows(2) {
            assert!(
                report.wire_depth[w[0].index()] < report.wire_depth[w[1].index()],
                "path depths must increase"
            );
        }
        // Path length in gate steps equals the critical depth.
        assert_eq!(path.len() as u32 - 1, nl.depth());
    }

    #[test]
    fn critical_path_of_empty_netlist_is_empty() {
        assert!(Netlist::new().critical_path().is_empty());
    }

    #[test]
    fn bounded_fanin_depth_charges_tree_levels() {
        let mut nl = Netlist::new();
        let ins = nl.inputs_n(8);
        let lits: Vec<Literal> = ins.iter().copied().map(Literal::pos).collect();
        let wide = nl.or(lits);
        nl.mark_output(wide);
        assert_eq!(nl.depth(), 1);
        assert_eq!(nl.depth_bounded_fanin(2), 3); // ⌈lg 8⌉
        assert_eq!(nl.depth_bounded_fanin(4), 2); // ⌈log4 8⌉
        assert_eq!(nl.depth_bounded_fanin(8), 1);
    }

    #[test]
    fn depth_is_max_over_outputs() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let shallow = nl.and([a]);
        let deep0 = nl.or([shallow]);
        let deep = nl.and([deep0]);
        nl.mark_output(shallow);
        nl.mark_output(deep);
        let report = nl.depth_report();
        assert_eq!(report.output_depth, vec![1, 3]);
        assert_eq!(report.critical_path, 3);
    }
}
