//! Scalar and bit-parallel evaluation of netlists.

use crate::builder::{Driver, Netlist};
use crate::gate::GateKind;

/// Number of independent test vectors carried by one [`BitBlock`] lane.
pub const WORD_BITS: usize = 64;

/// A block of 64 independent boolean values, one per bit, used for
/// bit-parallel (SIMD-within-a-register) evaluation of up to 64 test
/// vectors in one pass.
pub type BitBlock = u64;

impl Netlist {
    /// Evaluate the netlist on one input vector.
    ///
    /// `inputs[i]` is the value of the `i`-th primary input; the result
    /// holds one value per marked output, in marking order.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "wrong number of input values"
        );
        let mut values = vec![false; self.drivers.len()];
        self.eval_into(inputs, &mut values);
        self.outputs
            .iter()
            .map(|l| l.apply(values[l.wire.index()]))
            .collect()
    }

    /// Evaluate and expose every wire value (for waveform inspection).
    ///
    /// `values` must have length [`Netlist::wire_count`]; it is fully
    /// overwritten. Reusing the buffer avoids per-call allocation in
    /// clocked simulation loops.
    pub fn eval_into(&self, inputs: &[bool], values: &mut [bool]) {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "wrong number of input values"
        );
        assert_eq!(
            values.len(),
            self.drivers.len(),
            "wire buffer has wrong length"
        );
        let mut gate_cursor = 0usize;
        for (idx, driver) in self.drivers.iter().enumerate() {
            match driver {
                Driver::Input(ord) => values[idx] = inputs[*ord as usize],
                Driver::Gate(_) => {
                    let gate = &self.gates[gate_cursor];
                    gate_cursor += 1;
                    let v = gate
                        .kind
                        .eval(gate.inputs.iter().map(|l| l.apply(values[l.wire.index()])));
                    values[idx] = v;
                }
            }
        }
    }

    /// Evaluate up to 64 input vectors at once, bit-parallel.
    ///
    /// Bit `j` of `inputs[i]` is the value of primary input `i` in test
    /// vector `j`. Returns one [`BitBlock`] per output. This is the fast
    /// path for Monte Carlo load-ratio verification, where millions of
    /// valid-bit patterns are pushed through a switch netlist.
    pub fn eval_block(&self, inputs: &[BitBlock]) -> Vec<BitBlock> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "wrong number of input blocks"
        );
        let mut values = vec![0u64; self.drivers.len()];
        let mut gate_cursor = 0usize;
        for (idx, driver) in self.drivers.iter().enumerate() {
            match driver {
                Driver::Input(ord) => values[idx] = inputs[*ord as usize],
                Driver::Gate(_) => {
                    let gate = &self.gates[gate_cursor];
                    gate_cursor += 1;
                    let lit = |l: &crate::Literal| -> u64 { l.apply_word(values[l.wire.index()]) };
                    values[idx] = match gate.kind {
                        GateKind::And => gate.inputs.iter().map(lit).fold(!0u64, |a, b| a & b),
                        GateKind::Or => gate.inputs.iter().map(lit).fold(0u64, |a, b| a | b),
                        GateKind::Xor => gate.inputs.iter().map(lit).fold(0u64, |a, b| a ^ b),
                        GateKind::Buf => lit(&gate.inputs[0]),
                        GateKind::Const(v) => {
                            if v {
                                !0u64
                            } else {
                                0u64
                            }
                        }
                    };
                }
            }
        }
        self.outputs
            .iter()
            .map(|l| l.apply_word(values[l.wire.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Literal;

    fn majority3() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let ab = nl.and([a, b]);
        let bc = nl.and([b, c]);
        let ac = nl.and([a, c]);
        let out = nl.or([ab, bc, ac]);
        nl.mark_output(out);
        nl
    }

    #[test]
    fn majority_truth_table() {
        let nl = majority3();
        for bits in 0u8..8 {
            let input = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expected = input.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(nl.eval(&input), vec![expected], "input {input:?}");
        }
    }

    #[test]
    fn block_eval_matches_scalar_eval() {
        let nl = majority3();
        // Pack all 8 assignments into one block.
        let mut blocks = [0u64; 3];
        for vector in 0..8 {
            for (i, block) in blocks.iter_mut().enumerate() {
                if (vector >> i) & 1 == 1 {
                    *block |= 1u64 << vector;
                }
            }
        }
        let out = nl.eval_block(&blocks);
        for vector in 0..8usize {
            let input = [(vector & 1) != 0, (vector & 2) != 0, (vector & 4) != 0];
            let scalar = nl.eval(&input)[0];
            let packed = (out[0] >> vector) & 1 == 1;
            assert_eq!(scalar, packed, "vector {vector}");
        }
    }

    #[test]
    fn inverted_output_literals_apply() {
        let mut nl = Netlist::new();
        let a = nl.input();
        nl.mark_output(Literal::neg(a));
        assert_eq!(nl.eval(&[true]), vec![false]);
        assert_eq!(nl.eval(&[false]), vec![true]);
        let blocks = nl.eval_block(&[0b01]);
        assert_eq!(blocks[0] & 0b11, 0b10);
    }

    #[test]
    fn eval_into_reuses_buffer() {
        let nl = majority3();
        let mut buf = vec![false; nl.wire_count()];
        nl.eval_into(&[true, true, false], &mut buf);
        // Output wire is the last created wire.
        assert!(buf[nl.wire_count() - 1]);
        nl.eval_into(&[false, false, false], &mut buf);
        assert!(!buf[nl.wire_count() - 1]);
    }

    #[test]
    #[should_panic(expected = "wrong number of input values")]
    fn eval_checks_arity() {
        majority3().eval(&[true, false]);
    }
}
