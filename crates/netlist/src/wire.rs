//! Wire identifiers and dual-rail literals.

use serde::{Deserialize, Serialize};

/// A single-bit signal in a [`crate::Netlist`].
///
/// Wires are created in order by the netlist builder; the numeric id is an
/// index into the netlist's wire table. A wire is driven by exactly one
/// source: a primary input, a constant, or one gate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Wire(pub(crate) u32);

impl Wire {
    /// Index of this wire in the netlist's wire table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A wire reference with an optional inversion.
///
/// The 1987 switch designs are costed for ratioed nMOS, where both rails of a
/// signal are cheaply available; an inverted gate input therefore costs no
/// extra gate delay. A `Literal` captures that convention: inversion is a
/// property of the *use*, not an inverter gate in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// The referenced wire.
    pub wire: Wire,
    /// Whether the complemented rail is read.
    pub inverted: bool,
}

impl Literal {
    /// Positive (true-rail) literal of `wire`.
    #[inline]
    pub fn pos(wire: Wire) -> Self {
        Literal {
            wire,
            inverted: false,
        }
    }

    /// Negative (complement-rail) literal of `wire`.
    #[inline]
    pub fn neg(wire: Wire) -> Self {
        Literal {
            wire,
            inverted: true,
        }
    }

    /// The literal reading the opposite rail of the same wire.
    #[inline]
    pub fn complement(self) -> Self {
        Literal {
            wire: self.wire,
            inverted: !self.inverted,
        }
    }

    /// Apply this literal to a concrete bit value of its wire.
    #[inline]
    pub fn apply(self, value: bool) -> bool {
        value ^ self.inverted
    }

    /// Apply this literal to a 64-lane word of its wire's values.
    ///
    /// This is the single source of truth for literal semantics in every
    /// bit-parallel evaluator (block interpreter and compiled engine): an
    /// inverted literal complements all 64 lanes at once.
    #[inline]
    pub fn apply_word(self, word: u64) -> u64 {
        // Branch-free: a true flag becomes an all-ones mask.
        word ^ (self.inverted as u64).wrapping_neg()
    }
}

impl From<Wire> for Literal {
    fn from(wire: Wire) -> Self {
        Literal::pos(wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_apply_respects_inversion() {
        let w = Wire(3);
        assert!(Literal::pos(w).apply(true));
        assert!(!Literal::pos(w).apply(false));
        assert!(!Literal::neg(w).apply(true));
        assert!(Literal::neg(w).apply(false));
    }

    #[test]
    fn apply_word_inverts_all_lanes() {
        let w = Wire(0);
        let word = 0xDEAD_BEEF_0123_4567u64;
        assert_eq!(Literal::pos(w).apply_word(word), word);
        assert_eq!(Literal::neg(w).apply_word(word), !word);
        // Lane-by-lane agreement with the scalar form.
        for lane in [0usize, 1, 31, 63] {
            let bit = (word >> lane) & 1 == 1;
            assert_eq!(
                (Literal::neg(w).apply_word(word) >> lane) & 1 == 1,
                Literal::neg(w).apply(bit)
            );
        }
    }

    #[test]
    fn complement_is_involutive() {
        let l = Literal::neg(Wire(7));
        assert_eq!(l.complement().complement(), l);
        assert_ne!(l.complement(), l);
        assert_eq!(l.complement().wire, l.wire);
    }

    #[test]
    fn wire_index_round_trips() {
        assert_eq!(Wire(42).index(), 42);
    }

    #[test]
    fn from_wire_is_positive() {
        let l: Literal = Wire(5).into();
        assert!(!l.inverted);
        assert_eq!(l.wire, Wire(5));
    }
}
