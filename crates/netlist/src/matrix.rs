//! Multi-vector bit matrices: the data the batch emulator sweeps over.

/// A rows × vectors bit matrix: `rows` signals, each carrying `vectors`
/// independent boolean test patterns packed 64 per machine word.
///
/// Row-major storage: row `r` occupies `words_per_row` consecutive words,
/// vector `j` living in word `j / 64` bit `j % 64`. Inputs to
/// [`crate::CompiledNetlist::eval_matrix`] use one row per primary input;
/// outputs come back with one row per primary output.
///
/// **Tail invariant:** lanes past `vectors` in the final word of every row
/// are always zero. Construction maintains it, every emulator sweep
/// re-masks before returning, and [`BitMatrix::tail_is_clear`] checks it,
/// so `count_ones`-style reductions over row words are exact even when
/// wide lane groups (256/512 lanes) sweep garbage into the tail word
/// mid-evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    vectors: usize,
    words: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix carrying `vectors` patterns over `rows` signals.
    pub fn zeroed(rows: usize, vectors: usize) -> Self {
        let words = vectors.div_ceil(crate::eval::WORD_BITS);
        BitMatrix {
            rows,
            vectors,
            words,
            data: vec![0u64; rows * words],
        }
    }

    /// Build from a per-bit function: `f(row, vector)`.
    pub fn from_fn(rows: usize, vectors: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = BitMatrix::zeroed(rows, vectors);
        for r in 0..rows {
            for v in 0..vectors {
                if f(r, v) {
                    m.set(r, v, true);
                }
            }
        }
        debug_assert!(m.tail_is_clear());
        m
    }

    /// Number of signal rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of test vectors (columns).
    #[inline]
    pub fn vectors(&self) -> usize {
        self.vectors
    }

    /// Words per row (`⌈vectors/64⌉`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// Bit of `row` in test vector `vector`.
    #[inline]
    pub fn get(&self, row: usize, vector: usize) -> bool {
        assert!(
            row < self.rows && vector < self.vectors,
            "bit matrix index out of range"
        );
        let w = self.data[row * self.words + vector / 64];
        (w >> (vector % 64)) & 1 == 1
    }

    /// Set the bit of `row` in test vector `vector`.
    #[inline]
    pub fn set(&mut self, row: usize, vector: usize, value: bool) {
        assert!(
            row < self.rows && vector < self.vectors,
            "bit matrix index out of range"
        );
        let slot = &mut self.data[row * self.words + vector / 64];
        let mask = 1u64 << (vector % 64);
        if value {
            *slot |= mask;
        } else {
            *slot &= !mask;
        }
    }

    /// The `w`-th 64-lane word of `row`.
    #[inline]
    pub fn word(&self, row: usize, w: usize) -> u64 {
        self.data[row * self.words + w]
    }

    /// Mutable access to the `w`-th 64-lane word of `row`.
    #[inline]
    pub fn word_mut(&mut self, row: usize, w: usize) -> &mut u64 {
        &mut self.data[row * self.words + w]
    }

    /// The words of one row.
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        &self.data[row * self.words..(row + 1) * self.words]
    }

    /// Extract test vector `vector` as one bit per row.
    pub fn column(&self, vector: usize) -> Vec<bool> {
        (0..self.rows).map(|r| self.get(r, vector)).collect()
    }

    /// Count set bits in `row` across all vectors.
    pub fn row_popcount(&self, row: usize) -> usize {
        self.row_words(row)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Whether every lane past `vectors` in the final word of every row is
    /// zero — the invariant that makes row popcounts exact. Sweeps restore
    /// it via an internal `mask_tail` pass before returning a result matrix.
    pub fn tail_is_clear(&self) -> bool {
        let used = self.vectors % 64;
        if used == 0 || self.words == 0 {
            return true;
        }
        let mask = (1u64 << used) - 1;
        (0..self.rows).all(|r| self.data[r * self.words + self.words - 1] & !mask == 0)
    }

    /// Zero the lanes past `vectors` in the final word of every row, so
    /// popcounts never see garbage from inverted or constant signals.
    pub(crate) fn mask_tail(&mut self) {
        let used = self.vectors % 64;
        if used == 0 || self.words == 0 {
            return;
        }
        let mask = (1u64 << used) - 1;
        for r in 0..self.rows {
            self.data[r * self.words + self.words - 1] &= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_matrix_set_get_round_trip() {
        let mut m = BitMatrix::zeroed(2, 130);
        m.set(0, 0, true);
        m.set(0, 129, true);
        m.set(1, 64, true);
        assert!(m.get(0, 0) && m.get(0, 129) && m.get(1, 64));
        assert!(!m.get(0, 1) && !m.get(1, 0));
        assert_eq!(m.row_popcount(0), 2);
        m.set(0, 129, false);
        assert_eq!(m.row_popcount(0), 1);
        assert_eq!(m.words_per_row(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_matrix_get_bounds_checked() {
        BitMatrix::zeroed(1, 64).get(0, 64);
    }

    #[test]
    fn from_fn_keeps_the_tail_clear() {
        for vectors in [1usize, 63, 64, 65, 127, 130, 511, 513] {
            let m = BitMatrix::from_fn(3, vectors, |_, _| true);
            assert!(m.tail_is_clear(), "{vectors} vectors");
            for r in 0..3 {
                assert_eq!(m.row_popcount(r), vectors, "{vectors} vectors");
            }
        }
    }

    #[test]
    fn mask_tail_clears_injected_garbage() {
        let mut m = BitMatrix::zeroed(2, 70);
        // Simulate a wide sweep writing a full tail word.
        *m.word_mut(0, 1) = !0u64;
        *m.word_mut(1, 1) = !0u64;
        assert!(!m.tail_is_clear());
        m.mask_tail();
        assert!(m.tail_is_clear());
        assert_eq!(m.row_popcount(0), 6);
        // In-range lanes survive masking.
        assert!(m.get(0, 64) && m.get(0, 69));
    }
}
