//! The netlist container and its SSA-style builder API.

use serde::{Deserialize, Serialize};

use crate::gate::{Gate, GateKind};
use crate::wire::{Literal, Wire};

/// How a wire is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum Driver {
    /// Primary input; payload is the input ordinal.
    Input(u32),
    /// Output of the gate at this index in the gate list.
    Gate(u32),
}

/// A combinational netlist.
///
/// Wires are created in strictly increasing order and each gate may only
/// read wires created before its output wire, so the gate list is
/// topologically ordered by construction and no cycle can be expressed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) drivers: Vec<Driver>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<Wire>,
    pub(crate) outputs: Vec<Literal>,
}

impl Netlist {
    /// Create an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Number of wires (inputs + gate outputs).
    #[inline]
    pub fn wire_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of marked primary outputs.
    #[inline]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of gates (constants included).
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The primary inputs, in creation order.
    #[inline]
    pub fn inputs(&self) -> &[Wire] {
        &self.inputs
    }

    /// The primary outputs, in marking order.
    #[inline]
    pub fn outputs(&self) -> &[Literal] {
        &self.outputs
    }

    /// The gates in topological order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    fn fresh_wire(&mut self, driver: Driver) -> Wire {
        let id = u32::try_from(self.drivers.len()).expect("netlist exceeds u32 wires");
        self.drivers.push(driver);
        Wire(id)
    }

    /// Create a new primary input wire.
    pub fn input(&mut self) -> Wire {
        let ordinal = u32::try_from(self.inputs.len()).expect("too many inputs");
        let w = self.fresh_wire(Driver::Input(ordinal));
        self.inputs.push(w);
        w
    }

    /// Create `n` primary inputs and return them in order.
    pub fn inputs_n(&mut self, n: usize) -> Vec<Wire> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Add a gate, validating that all of its inputs already exist.
    ///
    /// Returns a positive literal of the driven wire.
    pub fn gate<I>(&mut self, kind: GateKind, inputs: I) -> Literal
    where
        I: IntoIterator,
        I::Item: Into<Literal>,
    {
        let inputs: Vec<Literal> = inputs.into_iter().map(Into::into).collect();
        for lit in &inputs {
            assert!(
                lit.wire.index() < self.drivers.len(),
                "gate reads undefined wire {:?}",
                lit.wire
            );
        }
        if matches!(kind, GateKind::Buf) {
            assert_eq!(inputs.len(), 1, "Buf gate requires exactly one input");
        }
        if matches!(kind, GateKind::Const(_)) {
            assert!(inputs.is_empty(), "Const gate takes no inputs");
        }
        let gate_idx = u32::try_from(self.gates.len()).expect("too many gates");
        let output = self.fresh_wire(Driver::Gate(gate_idx));
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
        Literal::pos(output)
    }

    /// Wide AND of the given literals (empty AND is constant true).
    pub fn and<I>(&mut self, inputs: I) -> Literal
    where
        I: IntoIterator,
        I::Item: Into<Literal>,
    {
        self.gate(GateKind::And, inputs)
    }

    /// Wide OR of the given literals (empty OR is constant false).
    pub fn or<I>(&mut self, inputs: I) -> Literal
    where
        I: IntoIterator,
        I::Item: Into<Literal>,
    {
        self.gate(GateKind::Or, inputs)
    }

    /// Parity of the given literals.
    pub fn xor<I>(&mut self, inputs: I) -> Literal
    where
        I: IntoIterator,
        I::Item: Into<Literal>,
    {
        self.gate(GateKind::Xor, inputs)
    }

    /// Pad driver (identity, one level). Models chip I/O pad delay.
    pub fn buf(&mut self, input: impl Into<Literal>) -> Literal {
        self.gate(GateKind::Buf, [input.into()])
    }

    /// Constant driver.
    pub fn constant(&mut self, value: bool) -> Literal {
        self.gate(GateKind::Const(value), std::iter::empty::<Literal>())
    }

    /// Mark a literal as a primary output. Order of marking defines output
    /// order in [`Netlist::eval`].
    pub fn mark_output(&mut self, lit: impl Into<Literal>) {
        let lit = lit.into();
        assert!(
            lit.wire.index() < self.drivers.len(),
            "output marks undefined wire {:?}",
            lit.wire
        );
        self.outputs.push(lit);
    }

    /// Import another netlist as a sub-circuit, connecting its primary
    /// inputs to `connections` (one literal per sub-input, in order).
    ///
    /// Returns the literals corresponding to the sub-circuit's outputs.
    /// Used to compose multichip switches out of per-chip netlists while
    /// keeping one flat evaluable circuit.
    pub fn import(&mut self, sub: &Netlist, connections: &[Literal]) -> Vec<Literal> {
        assert_eq!(
            connections.len(),
            sub.inputs.len(),
            "import requires one connection per sub-circuit input"
        );
        for lit in connections {
            assert!(
                lit.wire.index() < self.drivers.len(),
                "import reads undefined wire"
            );
        }
        // Map from sub-circuit wire index to a literal in `self`.
        let mut map: Vec<Literal> = Vec::with_capacity(sub.drivers.len());
        let mut next_input = 0usize;
        let mut gate_cursor = 0usize;
        for driver in &sub.drivers {
            match driver {
                Driver::Input(_) => {
                    map.push(connections[next_input]);
                    next_input += 1;
                }
                Driver::Gate(_) => {
                    let gate = &sub.gates[gate_cursor];
                    gate_cursor += 1;
                    let mapped: Vec<Literal> = gate
                        .inputs
                        .iter()
                        .map(|l| {
                            let base = map[l.wire.index()];
                            if l.inverted {
                                base.complement()
                            } else {
                                base
                            }
                        })
                        .collect();
                    let out = self.gate(gate.kind, mapped);
                    map.push(out);
                }
            }
        }
        sub.outputs
            .iter()
            .map(|l| {
                let base = map[l.wire.index()];
                if l.inverted {
                    base.complement()
                } else {
                    base
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_creates_inputs_in_order() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(nl.input_count(), 2);
        assert_eq!(nl.wire_count(), 2);
    }

    #[test]
    fn gate_outputs_get_fresh_wires() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let g = nl.and([a]);
        assert_eq!(g.wire.index(), 1);
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    #[should_panic(expected = "undefined wire")]
    fn gate_rejects_future_wires() {
        let mut nl = Netlist::new();
        let _a = nl.input();
        nl.and([Literal::pos(Wire(10))]);
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn buf_requires_single_input() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        nl.gate(GateKind::Buf, [a, b]);
    }

    #[test]
    fn import_preserves_function() {
        // sub: out = a AND NOT b
        let mut sub = Netlist::new();
        let a = sub.input();
        let b = sub.input();
        let g = sub.and([Literal::pos(a), Literal::neg(b)]);
        sub.mark_output(g);

        // outer: feed (x OR y, z) into sub.
        let mut outer = Netlist::new();
        let x = outer.input();
        let y = outer.input();
        let z = outer.input();
        let o = outer.or([x, y]);
        let subout = outer.import(&sub, &[o, Literal::pos(z)]);
        outer.mark_output(subout[0]);

        // (x|y) & !z
        assert_eq!(outer.eval(&[true, false, false]), vec![true]);
        assert_eq!(outer.eval(&[true, false, true]), vec![false]);
        assert_eq!(outer.eval(&[false, false, false]), vec![false]);
    }

    #[test]
    fn import_handles_inverted_sub_outputs() {
        let mut sub = Netlist::new();
        let a = sub.input();
        sub.mark_output(Literal::neg(a));

        let mut outer = Netlist::new();
        let x = outer.input();
        let got = outer.import(&sub, &[Literal::neg(x)]);
        outer.mark_output(got[0]);
        // NOT(NOT x) == x
        assert_eq!(outer.eval(&[true]), vec![true]);
        assert_eq!(outer.eval(&[false]), vec![false]);
    }

    #[test]
    fn constants_evaluate() {
        let mut nl = Netlist::new();
        let t = nl.constant(true);
        let f = nl.constant(false);
        nl.mark_output(t);
        nl.mark_output(f);
        assert_eq!(nl.eval(&[]), vec![true, false]);
    }
}
