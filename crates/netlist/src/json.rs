//! JSON serialization of netlists.
//!
//! An explicit, versionable schema rather than a derived one: wires are
//! implied by the `inputs` list and gate `output` ids, so a document is
//! exactly the information needed to rebuild the netlist, and every
//! structural invariant (single driver per wire, topological gate order)
//! is revalidated on load.
//!
//! ```text
//! {
//!   "inputs":  [0, 1],                      // wire ids of primary inputs
//!   "gates":   [{"kind": "and",             // and|or|xor|buf|const
//!                "value": true,             // const gates only
//!                "inputs": [[0, false], [1, true]],   // [wire, inverted]
//!                "output": 2}],
//!   "outputs": [[2, false]]                 // [wire, inverted]
//! }
//! ```

use serde_json::{object, ToJson, Value};

use crate::builder::{Driver, Netlist};
use crate::gate::{Gate, GateKind};
use crate::wire::{Literal, Wire};

/// A malformed or invariant-violating document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "netlist json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err(msg: impl Into<String>) -> JsonError {
    JsonError(msg.into())
}

fn literal_to_json(lit: Literal) -> Value {
    Value::Array(vec![
        Value::Number(lit.wire.index() as f64),
        Value::Bool(lit.inverted),
    ])
}

fn literal_from_json(value: &Value) -> Result<Literal, JsonError> {
    let pair = value
        .as_array()
        .ok_or_else(|| err("literal must be [wire, inverted]"))?;
    if pair.len() != 2 {
        return Err(err("literal must be [wire, inverted]"));
    }
    let wire = pair[0]
        .as_u64()
        .ok_or_else(|| err("literal wire must be an id"))?;
    let wire = u32::try_from(wire).map_err(|_| err("literal wire id out of range"))?;
    match pair[1] {
        Value::Bool(inverted) => Ok(Literal {
            wire: Wire(wire),
            inverted,
        }),
        _ => Err(err("literal inversion must be a bool")),
    }
}

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::And => "and",
        GateKind::Or => "or",
        GateKind::Xor => "xor",
        GateKind::Buf => "buf",
        GateKind::Const(_) => "const",
    }
}

impl ToJson for Netlist {
    fn to_json(&self) -> Value {
        let inputs: Vec<Value> = self
            .inputs
            .iter()
            .map(|w| Value::Number(w.index() as f64))
            .collect();
        let gates: Vec<Value> = self
            .gates
            .iter()
            .map(|gate| {
                let mut fields = vec![
                    ("kind", Value::String(kind_name(gate.kind).to_string())),
                    (
                        "inputs",
                        Value::Array(gate.inputs.iter().map(|&l| literal_to_json(l)).collect()),
                    ),
                    ("output", Value::Number(gate.output.index() as f64)),
                ];
                if let GateKind::Const(v) = gate.kind {
                    fields.push(("value", Value::Bool(v)));
                }
                object(fields)
            })
            .collect();
        let outputs: Vec<Value> = self.outputs.iter().map(|&l| literal_to_json(l)).collect();
        object([
            ("inputs", Value::Array(inputs)),
            ("gates", Value::Array(gates)),
            ("outputs", Value::Array(outputs)),
        ])
    }
}

/// Serialize a netlist to a compact JSON string.
pub fn to_string(netlist: &Netlist) -> String {
    netlist.to_json().to_compact()
}

/// Rebuild a netlist from a parsed JSON document, revalidating every
/// builder invariant.
pub fn from_value(value: &Value) -> Result<Netlist, JsonError> {
    let input_ids = value
        .get("inputs")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing `inputs` array"))?;
    let gate_docs = value
        .get("gates")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing `gates` array"))?;
    let output_docs = value
        .get("outputs")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing `outputs` array"))?;

    let wire_count = input_ids.len() + gate_docs.len();
    // Reconstruct the driver table: every wire id must be claimed exactly
    // once, by an input or by a gate output.
    let mut drivers: Vec<Option<Driver>> = vec![None; wire_count];
    let mut inputs = Vec::with_capacity(input_ids.len());
    for (ordinal, id) in input_ids.iter().enumerate() {
        let id = id
            .as_u64()
            .ok_or_else(|| err("input wire id must be a number"))? as usize;
        let slot = drivers
            .get_mut(id)
            .ok_or_else(|| err("input wire id out of range"))?;
        if slot.is_some() {
            return Err(err(format!("wire {id} driven twice")));
        }
        *slot = Some(Driver::Input(ordinal as u32));
        inputs.push(Wire(id as u32));
    }

    let mut gates = Vec::with_capacity(gate_docs.len());
    for (gate_idx, doc) in gate_docs.iter().enumerate() {
        let kind = match doc.get("kind").and_then(Value::as_str) {
            Some("and") => GateKind::And,
            Some("or") => GateKind::Or,
            Some("xor") => GateKind::Xor,
            Some("buf") => GateKind::Buf,
            Some("const") => match doc.get("value") {
                Some(Value::Bool(v)) => GateKind::Const(*v),
                _ => return Err(err("const gate requires a bool `value`")),
            },
            other => return Err(err(format!("unknown gate kind {other:?}"))),
        };
        let output = doc
            .get("output")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("gate output must be a wire id"))? as usize;
        let slot = drivers
            .get_mut(output)
            .ok_or_else(|| err("gate output wire out of range"))?;
        if slot.is_some() {
            return Err(err(format!("wire {output} driven twice")));
        }
        *slot = Some(Driver::Gate(gate_idx as u32));
        let lit_docs = doc
            .get("inputs")
            .and_then(Value::as_array)
            .ok_or_else(|| err("gate requires an `inputs` array"))?;
        let mut lits = Vec::with_capacity(lit_docs.len());
        for lit in lit_docs {
            let lit = literal_from_json(lit)?;
            // Builder invariant: a gate only reads wires created before
            // its output, which keeps the gate list topological.
            if lit.wire.index() >= output {
                return Err(err(format!(
                    "gate {gate_idx} reads wire {} at or after its output {output}",
                    lit.wire.index()
                )));
            }
            lits.push(lit);
        }
        if matches!(kind, GateKind::Buf) && lits.len() != 1 {
            return Err(err("buf gate requires exactly one input"));
        }
        if matches!(kind, GateKind::Const(_)) && !lits.is_empty() {
            return Err(err("const gate takes no inputs"));
        }
        gates.push(Gate {
            kind,
            inputs: lits,
            output: Wire(output as u32),
        });
    }

    let drivers: Vec<Driver> = drivers
        .into_iter()
        .enumerate()
        .map(|(id, d)| d.ok_or_else(|| err(format!("wire {id} has no driver"))))
        .collect::<Result<_, _>>()?;

    let mut outputs = Vec::with_capacity(output_docs.len());
    for doc in output_docs {
        let lit = literal_from_json(doc)?;
        if lit.wire.index() >= wire_count {
            return Err(err("output literal references undefined wire"));
        }
        outputs.push(lit);
    }

    Ok(Netlist {
        drivers,
        gates,
        inputs,
        outputs,
    })
}

/// Parse a netlist from a JSON string.
pub fn from_str(text: &str) -> Result<Netlist, JsonError> {
    let value = serde_json::from_str(text).map_err(|e| err(e.to_string()))?;
    from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let t = nl.constant(true);
        let g = nl.and([Literal::pos(a), Literal::neg(b), t]);
        let h = nl.or([g, Literal::pos(a)]);
        nl.mark_output(h.complement());
        nl.mark_output(g);
        nl
    }

    #[test]
    fn round_trip_preserves_structure_and_function() {
        let nl = sample();
        let text = to_string(&nl);
        let back = from_str(&text).expect("round trip");
        assert_eq!(back.gate_count(), nl.gate_count());
        assert_eq!(back.input_count(), nl.input_count());
        assert_eq!(back.output_count(), nl.output_count());
        for bits in 0u8..4 {
            let input = [(bits & 1) != 0, (bits & 2) != 0];
            assert_eq!(back.eval(&input), nl.eval(&input), "input {input:?}");
        }
    }

    #[test]
    fn rejects_double_driven_wires() {
        let text = r#"{"inputs": [0, 0], "gates": [], "outputs": []}"#;
        assert!(from_str(text).is_err());
    }

    #[test]
    fn rejects_forward_references() {
        // Gate at wire 1 reading wire 2 (not yet created) must fail.
        let text = r#"{
            "inputs": [0],
            "gates": [
                {"kind": "and", "inputs": [[2, false]], "output": 1},
                {"kind": "buf", "inputs": [[0, false]], "output": 2}
            ],
            "outputs": [[1, false]]
        }"#;
        assert!(from_str(text).is_err());
    }

    #[test]
    fn rejects_missing_driver() {
        let text = r#"{"inputs": [1], "gates": [], "outputs": []}"#;
        assert!(from_str(text).is_err());
    }
}
