//! Constant folding and alias elimination.
//!
//! The padded step-7 stage of the full-Columnsort hyperconcentrator ties
//! whole half-columns of chip inputs to constants; a silicon implementation
//! would strip the logic those constants determine before mask-making. This
//! pass does the same to a netlist: constants are propagated, gates whose
//! value is forced become constants, and gates left with a single live
//! input become aliases (free wire, no gate).

use crate::builder::{Driver, Netlist};
use crate::gate::GateKind;
use crate::wire::Literal;

/// A wire's fate under folding.
#[derive(Debug, Clone, Copy)]
enum Folded {
    /// Known at elaboration time.
    Const(bool),
    /// Alias of a literal in the folded netlist.
    Wire(Literal),
}

impl Folded {
    fn apply_inversion(self, inverted: bool) -> Folded {
        if !inverted {
            return self;
        }
        match self {
            Folded::Const(v) => Folded::Const(!v),
            Folded::Wire(l) => Folded::Wire(l.complement()),
        }
    }
}

impl Netlist {
    /// Return a functionally identical netlist with constants propagated,
    /// forced gates removed, and single-input AND/OR/Buf gates collapsed
    /// into wire aliases.
    ///
    /// Primary inputs are preserved one-for-one (same count and order), as
    /// are the number and order of outputs; output literals may become
    /// constant drivers where the logic forced them.
    pub fn fold_constants(&self) -> Netlist {
        let mut out = Netlist::new();
        let mut map: Vec<Folded> = Vec::with_capacity(self.drivers.len());
        let mut gate_cursor = 0usize;
        for driver in &self.drivers {
            match driver {
                Driver::Input(_) => {
                    let w = out.input();
                    map.push(Folded::Wire(Literal::pos(w)));
                }
                Driver::Gate(_) => {
                    let gate = &self.gates[gate_cursor];
                    gate_cursor += 1;
                    let ins: Vec<Folded> = gate
                        .inputs
                        .iter()
                        .map(|l| map[l.wire.index()].apply_inversion(l.inverted))
                        .collect();
                    map.push(fold_gate(&mut out, gate.kind, &ins));
                }
            }
        }
        for lit in &self.outputs {
            let folded = map[lit.wire.index()].apply_inversion(lit.inverted);
            match folded {
                Folded::Const(v) => {
                    let c = out.constant(v);
                    out.mark_output(c);
                }
                Folded::Wire(l) => out.mark_output(l),
            }
        }
        out
    }
}

fn fold_gate(out: &mut Netlist, kind: GateKind, ins: &[Folded]) -> Folded {
    match kind {
        GateKind::Const(v) => Folded::Const(v),
        GateKind::Buf => ins[0],
        GateKind::And => {
            let mut live: Vec<Literal> = Vec::with_capacity(ins.len());
            for f in ins {
                match f {
                    Folded::Const(false) => return Folded::Const(false),
                    Folded::Const(true) => {}
                    Folded::Wire(l) => live.push(*l),
                }
            }
            match live.len() {
                0 => Folded::Const(true),
                1 => Folded::Wire(live[0]),
                _ => Folded::Wire(out.and(live)),
            }
        }
        GateKind::Or => {
            let mut live: Vec<Literal> = Vec::with_capacity(ins.len());
            for f in ins {
                match f {
                    Folded::Const(true) => return Folded::Const(true),
                    Folded::Const(false) => {}
                    Folded::Wire(l) => live.push(*l),
                }
            }
            match live.len() {
                0 => Folded::Const(false),
                1 => Folded::Wire(live[0]),
                _ => Folded::Wire(out.or(live)),
            }
        }
        GateKind::Xor => {
            let mut live: Vec<Literal> = Vec::with_capacity(ins.len());
            let mut flip = false;
            for f in ins {
                match f {
                    Folded::Const(v) => flip ^= v,
                    Folded::Wire(l) => live.push(*l),
                }
            }
            match live.len() {
                0 => Folded::Const(flip),
                1 => Folded::Wire(if flip { live[0].complement() } else { live[0] }),
                _ => {
                    let x = out.xor(live);
                    Folded::Wire(if flip { x.complement() } else { x })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_removes_forced_and() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let f = nl.constant(false);
        let g = nl.and([Literal::pos(a), f]);
        nl.mark_output(g);
        let folded = nl.fold_constants();
        assert_eq!(folded.area_report().gates, 0);
        assert_eq!(folded.eval(&[true]), vec![false]);
        assert_eq!(folded.eval(&[false]), vec![false]);
    }

    #[test]
    fn fold_drops_neutral_inputs() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let t = nl.constant(true);
        let g = nl.and([Literal::pos(a), t, Literal::pos(b)]);
        nl.mark_output(g);
        let folded = nl.fold_constants();
        assert_eq!(folded.area_report().gates, 1);
        assert_eq!(folded.gates()[0].fan_in(), 2);
        for pattern in 0..4u8 {
            let bits = [pattern & 1 == 1, pattern & 2 == 2];
            assert_eq!(folded.eval(&bits), nl.eval(&bits));
        }
    }

    #[test]
    fn single_survivor_becomes_alias() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let t = nl.constant(true);
        let inner = nl.and([Literal::pos(a), t]);
        let g = nl.or([inner.complement()]);
        nl.mark_output(g);
        let folded = nl.fold_constants();
        assert_eq!(folded.area_report().gates, 0, "pure alias chain folds away");
        assert_eq!(folded.eval(&[true]), vec![false]);
        assert_eq!(folded.eval(&[false]), vec![true]);
    }

    #[test]
    fn xor_folds_with_parity_flip() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let t = nl.constant(true);
        let f = nl.constant(false);
        let g = nl.xor([Literal::pos(a), t, f, t]);
        nl.mark_output(g);
        let folded = nl.fold_constants();
        // two trues cancel: xor(a) == a.
        assert_eq!(folded.area_report().gates, 0);
        assert_eq!(folded.eval(&[true]), vec![true]);
        assert_eq!(folded.eval(&[false]), vec![false]);
    }

    #[test]
    fn fold_preserves_function_on_random_logic() {
        // A deeper circuit mixing constants in.
        let mut nl = Netlist::new();
        let ins = nl.inputs_n(6);
        let t = nl.constant(true);
        let f = nl.constant(false);
        let x1 = nl.and([Literal::pos(ins[0]), Literal::neg(ins[1]), t]);
        let x2 = nl.or([x1, Literal::pos(ins[2]), f]);
        let x3 = nl.xor([x2, Literal::pos(ins[3]), t]);
        let x4 = nl.and([x3, Literal::pos(ins[4])]);
        let x5 = nl.or([x4, Literal::neg(ins[5]), f, f]);
        nl.mark_output(x5);
        nl.mark_output(Literal::neg(x3.wire));
        let folded = nl.fold_constants();
        for pattern in 0u8..64 {
            let bits: Vec<bool> = (0..6).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(folded.eval(&bits), nl.eval(&bits), "pattern {pattern:#b}");
        }
        assert!(folded.area_report().gates <= nl.area_report().gates);
    }

    #[test]
    fn fold_never_increases_depth() {
        let mut nl = Netlist::new();
        let ins = nl.inputs_n(4);
        let t = nl.constant(true);
        let a = nl.and([Literal::pos(ins[0]), t]);
        let b = nl.or([a, Literal::pos(ins[1])]);
        let c = nl.and([b, Literal::pos(ins[2]), Literal::pos(ins[3])]);
        nl.mark_output(c);
        let folded = nl.fold_constants();
        assert!(folded.depth() <= nl.depth());
    }
}
