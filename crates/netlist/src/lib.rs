//! Gate-level combinational circuit substrate.
//!
//! The switches in Cormen's *Efficient Multichip Partial Concentrator
//! Switches* (MIT-LCS-TM-322, 1987) are combinational circuits whose cost is
//! reported in **gate delays** and whose area is dominated by wide AND/OR
//! structures realizable in ratioed nMOS or domino CMOS. This crate models
//! exactly that technology:
//!
//! * gates have **unbounded fan-in** (a wide nMOS NOR is one gate delay),
//! * complemented inputs are **free** (dual-rail signalling), expressed as
//!   [`Literal`]s carrying an inversion flag rather than as inverter gates,
//! * delay is counted in **levels** of AND/OR/XOR logic, and
//! * area is counted in gates, literals (transistor proxy), and wiring
//!   tracks.
//!
//! Netlists are built in SSA style: a wire is driven exactly once and every
//! gate may only read wires that already exist, so the gate list is a valid
//! topological order by construction and evaluation is a single linear pass.
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, Literal};
//!
//! // out = (a AND NOT b) OR c  — two levels, complements free.
//! let mut nl = Netlist::new();
//! let a = nl.input();
//! let b = nl.input();
//! let c = nl.input();
//! let t = nl.and([Literal::pos(a), Literal::neg(b)]);
//! let out = nl.or([t, Literal::pos(c)]);
//! nl.mark_output(out);
//! assert_eq!(nl.depth(), 2);
//! assert_eq!(nl.eval(&[true, false, false]), vec![true]);
//! ```

mod builder;
mod compile;
mod depth;
mod eval;
mod fold;
mod gate;
mod insn;
pub mod json;
mod matrix;
mod partition;
mod stats;
mod verilog;
mod wire;

pub use builder::Netlist;
pub use compile::{CompiledNetlist, EvalScratch, WireFault, WireFaultKind, DEFAULT_CHIPS};
pub use depth::DepthReport;
pub use eval::{BitBlock, WORD_BITS};
pub use gate::{Gate, GateKind};
pub use matrix::BitMatrix;
pub use partition::PartitionReport;
pub use stats::AreaReport;
pub use wire::{Literal, Wire};
