//! Netlist partitioning: mapping scheduled gates onto chips.
//!
//! The 1987 paper's multichip packaging problem is pin-count-dominated:
//! a partial concentrator is split across identical chips, and the cost of
//! a partition is the wires that must cross chip boundaries (Sections 4–6
//! count exactly those pins for the Revsort and Columnsort packagings).
//! The emulator has the *same* shape of problem: a level-parallel sweep
//! partitions each level's instruction range across worker threads, and a
//! value produced on one worker and consumed on another is a cross-"chip"
//! wire (a cache line bouncing between cores instead of a package pin).
//!
//! One pass therefore serves both: [`partition_schedule`] assigns every
//! scheduled gate to a chip, balancing gate counts *within each level* (so
//! a level sweep splits evenly across workers) while greedily minimizing
//! cut wires, and [`PartitionReport`] prices the result in the paper's
//! currency — gates per chip, pins per chip, and total cut wires.
//!
//! The partitioner is deliberately a two-pass heuristic, not an exact
//! min-cut: a fan-in-affinity greedy placement (each gate lands where most
//! of its producers already live, subject to a per-level balance cap)
//! followed by one Fiduccia–Mattheyses-style refinement sweep (each gate
//! may move to the chip where most of its *neighbours* — producers and
//! consumers — live, if the balance cap allows). Both passes are linear in
//! gates + literals, so partitioning never dominates compilation.

use crate::compile::Schedule;

/// A gate→chip assignment over a levelized schedule.
#[derive(Debug, Clone)]
pub(crate) struct Partition {
    /// Number of chips (≥ 1).
    pub chips: usize,
    /// Chip of each scheduled gate, indexed by schedule slot.
    pub chip_of_gate: Vec<u32>,
}

/// Per-chip and aggregate cost of a gate-to-chip partition, in the
/// packaging currency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReport {
    /// Number of chips.
    pub chips: usize,
    /// Gates placed on each chip.
    pub chip_gates: Vec<usize>,
    /// Input pins per chip: distinct wires a chip reads that it does not
    /// itself produce (primary inputs included).
    pub chip_in_pins: Vec<usize>,
    /// Output pins per chip: distinct wires a chip produces that leave it
    /// (read on another chip, or marked as a primary output).
    pub chip_out_pins: Vec<usize>,
    /// Gate-driven wires read on a chip other than their producer's.
    /// Primary outputs alone do not make a wire "cut": they leave the
    /// package no matter how gates are placed.
    pub cut_wires: usize,
    /// Total scheduled gates.
    pub total_gates: usize,
}

impl PartitionReport {
    /// Largest pin count (in + out) over all chips — the packaging
    /// bottleneck the paper's multichip constructions minimize.
    pub fn max_pins(&self) -> usize {
        (0..self.chips)
            .map(|c| self.chip_in_pins[c] + self.chip_out_pins[c])
            .max()
            .unwrap_or(0)
    }

    /// Largest gate count over all chips.
    pub fn max_gates(&self) -> usize {
        self.chip_gates.iter().copied().max().unwrap_or(0)
    }
}

/// Per-level balance cap: a chip may hold at most `cap(level)` gates of a
/// level, with a 1/4 slack over the even split so affinity has room to
/// cluster connected gates.
fn level_cap(level_gates: usize, chips: usize) -> usize {
    let even = level_gates.div_ceil(chips).max(1);
    even + even / 4
}

/// Assign every scheduled gate to one of `chips` chips.
pub(crate) fn partition_schedule(sched: &Schedule, chips: usize) -> Partition {
    let chips = chips.max(1);
    let gate_count = sched.ops.len();
    let mut chip_of_gate = vec![0u32; gate_count];
    if chips == 1 || gate_count == 0 {
        return Partition {
            chips,
            chip_of_gate,
        };
    }

    // Producer chip per wire; u32::MAX marks external producers (primary
    // inputs), which carry no placement affinity.
    let mut chip_of_wire = vec![u32::MAX; sched.wire_count];
    let mut affinity = vec![0u32; chips];

    // Greedy placement, level by level so the balance cap is per level.
    for level in sched.levels.windows(2) {
        let (lo, hi) = (level[0] as usize, level[1] as usize);
        let cap = level_cap(hi - lo, chips);
        let mut load = vec![0usize; chips];
        for g in lo..hi {
            affinity.iter_mut().for_each(|a| *a = 0);
            for &packed in sched.gate_lits(g) {
                let producer = chip_of_wire[(packed >> 1) as usize];
                if producer != u32::MAX {
                    affinity[producer as usize] += 1;
                }
            }
            // Best chip under the cap: max affinity, then least load.
            let mut best = usize::MAX;
            for c in 0..chips {
                if load[c] >= cap {
                    continue;
                }
                if best == usize::MAX
                    || affinity[c] > affinity[best]
                    || (affinity[c] == affinity[best] && load[c] < load[best])
                {
                    best = c;
                }
            }
            debug_assert_ne!(best, usize::MAX, "cap × chips always covers a level");
            chip_of_gate[g] = best as u32;
            load[best] += 1;
            chip_of_wire[sched.outs[g] as usize] = best as u32;
        }
    }

    refine(sched, chips, &mut chip_of_gate);
    Partition {
        chips,
        chip_of_gate,
    }
}

/// One FM-style refinement sweep: move a gate to the chip holding the
/// majority of its neighbours (fan-in producers and fan-out consumers)
/// when that strictly reduces local cut and the level cap allows it.
fn refine(sched: &Schedule, chips: usize, chip_of_gate: &mut [u32]) {
    let gate_count = chip_of_gate.len();
    // Driver slot per wire, for producer lookup.
    let mut driver = vec![u32::MAX; sched.wire_count];
    for (g, &w) in sched.outs.iter().enumerate() {
        driver[w as usize] = g as u32;
    }
    // Consumer adjacency (gate -> reader gates), CSR over the lit arena.
    let mut reader_counts = vec![0u32; gate_count];
    for g in 0..gate_count {
        for &packed in sched.gate_lits(g) {
            let p = driver[(packed >> 1) as usize];
            if p != u32::MAX {
                reader_counts[p as usize] += 1;
            }
        }
    }
    let mut reader_bounds = vec![0u32; gate_count + 1];
    for g in 0..gate_count {
        reader_bounds[g + 1] = reader_bounds[g] + reader_counts[g];
    }
    let mut readers = vec![0u32; reader_bounds[gate_count] as usize];
    let mut cursor = reader_bounds.clone();
    for g in 0..gate_count {
        for &packed in sched.gate_lits(g) {
            let p = driver[(packed >> 1) as usize];
            if p != u32::MAX {
                readers[cursor[p as usize] as usize] = g as u32;
                cursor[p as usize] += 1;
            }
        }
    }

    let mut level_of = vec![0u32; gate_count];
    for (l, level) in sched.levels.windows(2).enumerate() {
        for g in level[0]..level[1] {
            level_of[g as usize] = l as u32;
        }
    }
    let mut level_load = vec![vec![0usize; chips]; sched.levels.len() - 1];
    for g in 0..gate_count {
        level_load[level_of[g] as usize][chip_of_gate[g] as usize] += 1;
    }

    let mut neighbours = vec![0u32; chips];
    for g in 0..gate_count {
        neighbours.iter_mut().for_each(|n| *n = 0);
        for &packed in sched.gate_lits(g) {
            let p = driver[(packed >> 1) as usize];
            if p != u32::MAX {
                neighbours[chip_of_gate[p as usize] as usize] += 1;
            }
        }
        for &r in &readers[reader_bounds[g] as usize..reader_bounds[g + 1] as usize] {
            neighbours[chip_of_gate[r as usize] as usize] += 1;
        }
        let cur = chip_of_gate[g] as usize;
        let lvl = level_of[g] as usize;
        let cap = level_cap((sched.levels[lvl + 1] - sched.levels[lvl]) as usize, chips);
        let mut best = cur;
        for c in 0..chips {
            if c != cur && neighbours[c] > neighbours[best] && level_load[lvl][c] < cap {
                best = c;
            }
        }
        if best != cur {
            chip_of_gate[g] = best as u32;
            level_load[lvl][cur] -= 1;
            level_load[lvl][best] += 1;
        }
    }
}

/// Price `part` in gates, pins, and cut wires.
pub(crate) fn report(sched: &Schedule, part: &Partition) -> PartitionReport {
    let chips = part.chips;
    assert!(chips <= 64, "pin report uses a 64-chip consumer bitmask");
    let mut chip_gates = vec![0usize; chips];
    for &c in &part.chip_of_gate {
        chip_gates[c as usize] += 1;
    }

    // Producer chip per wire (u32::MAX = primary input, off-package).
    let mut producer = vec![u32::MAX; sched.wire_count];
    for (g, &w) in sched.outs.iter().enumerate() {
        producer[w as usize] = part.chip_of_gate[g];
    }
    // Consumer chip set per wire, as a bitmask.
    let mut consumers = vec![0u64; sched.wire_count];
    for g in 0..part.chip_of_gate.len() {
        let c = part.chip_of_gate[g];
        for &packed in sched.gate_lits(g) {
            consumers[(packed >> 1) as usize] |= 1u64 << c;
        }
    }

    let mut chip_in_pins = vec![0usize; chips];
    let mut chip_out_pins = vec![0usize; chips];
    let mut cut_wires = 0usize;
    let mut is_output = vec![false; sched.wire_count];
    for &packed in &sched.outputs {
        is_output[(packed >> 1) as usize] = true;
    }
    for w in 0..sched.wire_count {
        let p = producer[w];
        let mask = consumers[w];
        let off_chip_readers = if p == u32::MAX {
            mask
        } else {
            mask & !(1u64 << p)
        };
        for (c, pins) in chip_in_pins.iter_mut().enumerate() {
            if off_chip_readers >> c & 1 == 1 {
                *pins += 1;
            }
        }
        if p != u32::MAX {
            if off_chip_readers != 0 {
                cut_wires += 1;
            }
            if off_chip_readers != 0 || is_output[w] {
                chip_out_pins[p as usize] += 1;
            }
        }
    }

    PartitionReport {
        chips,
        chip_gates,
        chip_in_pins,
        chip_out_pins,
        cut_wires,
        total_gates: part.chip_of_gate.len(),
    }
}
