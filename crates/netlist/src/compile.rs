//! Compiled netlist engine: levelized schedule, flattened literal arena,
//! and multi-word batch evaluation.
//!
//! [`Netlist::eval`] and [`Netlist::eval_block`] walk the builder's data
//! structures directly: every gate dereferences a `Vec<Literal>` of its own,
//! and every wire dispatches through the driver table. That is fine for
//! one vector, but Monte Carlo verification and load-ratio sweeps push
//! millions of vectors through the same circuit, so this module compiles a
//! netlist **once** into a form built for throughput:
//!
//! * the gate list is **levelized** using the existing depth machinery
//!   ([`Netlist::depth_report`]): gates are re-ordered level by level, so the
//!   schedule makes the circuit's parallel structure explicit and each
//!   level's gates may be evaluated in any order (or concurrently),
//! * every gate's fan-in literals are flattened into **one contiguous
//!   arena** (`lits`), indexed by a prefix-offset table — no per-gate `Vec`,
//!   no pointer chasing, and
//! * evaluation is **bit-parallel over arbitrarily many vectors**: a
//!   [`BitMatrix`] carries `vectors` test patterns as ⌈vectors/64⌉ machine
//!   words per signal, and [`CompiledNetlist::eval_matrix`] sweeps the
//!   compiled schedule once per word, optionally fanning word-chunks out to
//!   scoped threads (each with a private scratch buffer).
//!
//! Literal semantics are shared with the interpreters through
//! [`Literal::apply`] / [`Literal::apply_word`], so all three paths agree by
//! construction; the equivalence is additionally enforced by truth-table and
//! property tests.

use crate::builder::Netlist;
use crate::gate::GateKind;
use crate::wire::{Literal, Wire};

/// How a faulted wire misbehaves (see [`CompiledNetlist::with_faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireFaultKind {
    /// The wire reads constant 0 regardless of its driver.
    Stuck0,
    /// The wire reads constant 1 regardless of its driver.
    Stuck1,
    /// Every reader of the wire sees the complement of the driven value.
    Flip,
}

/// A located wire fault: which wire, and how it misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WireFault {
    /// The faulted wire.
    pub wire: Wire,
    /// The failure mode.
    pub kind: WireFaultKind,
}

impl WireFault {
    /// A stuck-at fault forcing `wire` to `value`.
    pub fn stuck(wire: Wire, value: bool) -> WireFault {
        WireFault {
            wire,
            kind: if value {
                WireFaultKind::Stuck1
            } else {
                WireFaultKind::Stuck0
            },
        }
    }

    /// An inversion fault on `wire`.
    pub fn flip(wire: Wire) -> WireFault {
        WireFault {
            wire,
            kind: WireFaultKind::Flip,
        }
    }
}

/// Compiled gate opcode. [`GateKind::Const`] splits into two opcodes so the
/// hot loop never touches a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    And,
    Or,
    Xor,
    Buf,
    ConstTrue,
    ConstFalse,
}

/// A literal packed into one word: wire index in the high bits, inversion
/// flag in bit 0.
type PackedLit = u32;

#[inline]
fn pack(lit: Literal) -> PackedLit {
    let w = lit.wire.index() as u32;
    assert!(w < (1 << 31), "netlist exceeds 2^31 wires");
    (w << 1) | lit.inverted as u32
}

#[inline]
fn unpack(packed: PackedLit) -> Literal {
    Literal {
        wire: Wire(packed >> 1),
        inverted: packed & 1 == 1,
    }
}

/// A netlist compiled for batch evaluation.
///
/// Construction is `O(wires + literals)` after one depth pass; the compiled
/// form is immutable and holds no reference to the source [`Netlist`], so it
/// can be cached and shared across verification, simulation, and search.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    /// Total wire count (scratch buffer size).
    wire_count: usize,
    /// Wire index of each primary input, in input-ordinal order.
    input_wires: Vec<u32>,
    /// Opcode per scheduled gate, in levelized order.
    ops: Vec<Op>,
    /// Output wire index per scheduled gate.
    outs: Vec<u32>,
    /// Prefix offsets into `lits`: gate `g` reads `lits[bounds[g]..bounds[g+1]]`.
    lit_bounds: Vec<u32>,
    /// Flattened fan-in literal arena.
    lits: Vec<PackedLit>,
    /// Level boundaries over the scheduled gate list: level `l` is the gate
    /// range `levels[l]..levels[l+1]`. Within a level no gate reads another's
    /// output, so a level is a parallel-safe unit of work.
    levels: Vec<u32>,
    /// Packed primary-output literals, in marking order.
    outputs: Vec<PackedLit>,
    /// Stuck-at values applied to *non-gate* wires (primary inputs) after
    /// the input words are loaded and before the sweep: `(wire, value)`.
    /// Empty for healthy circuits, so the hot path never pays for the
    /// fault machinery. Gate-output stucks are compiled into the opcode
    /// stream instead (see [`CompiledNetlist::with_faults`]).
    forces: Vec<(u32, bool)>,
}

impl Netlist {
    /// Compile this netlist for batch evaluation.
    pub fn compile(&self) -> CompiledNetlist {
        CompiledNetlist::new(self)
    }
}

impl CompiledNetlist {
    /// Compile `nl`: levelize via the depth report, then flatten.
    pub fn new(nl: &Netlist) -> Self {
        let depth = nl.depth_report();
        // Stable sort by output-wire depth keeps builder order within a
        // level, so compilation is deterministic.
        let mut order: Vec<u32> = (0..nl.gates.len() as u32).collect();
        order.sort_by_key(|&g| depth.wire_depth[nl.gates[g as usize].output.index()]);

        let lit_total: usize = nl.gates.iter().map(|g| g.inputs.len()).sum();
        let mut ops = Vec::with_capacity(order.len());
        let mut outs = Vec::with_capacity(order.len());
        let mut lit_bounds = Vec::with_capacity(order.len() + 1);
        let mut lits = Vec::with_capacity(lit_total);
        let mut levels = vec![0u32];
        lit_bounds.push(0u32);

        let mut current_depth = None;
        for (slot, &g) in order.iter().enumerate() {
            let gate = &nl.gates[g as usize];
            let d = depth.wire_depth[gate.output.index()];
            match current_depth {
                Some(prev) if prev == d => {}
                Some(_) => levels.push(slot as u32),
                None => {}
            }
            current_depth = Some(d);
            ops.push(match gate.kind {
                GateKind::And => Op::And,
                GateKind::Or => Op::Or,
                GateKind::Xor => Op::Xor,
                GateKind::Buf => Op::Buf,
                GateKind::Const(true) => Op::ConstTrue,
                GateKind::Const(false) => Op::ConstFalse,
            });
            outs.push(gate.output.index() as u32);
            for &lit in &gate.inputs {
                lits.push(pack(lit));
            }
            lit_bounds.push(lits.len() as u32);
        }
        levels.push(order.len() as u32);

        CompiledNetlist {
            wire_count: nl.wire_count(),
            input_wires: nl.inputs().iter().map(|w| w.index() as u32).collect(),
            ops,
            outs,
            lit_bounds,
            lits,
            levels,
            outputs: nl.outputs().iter().map(|&l| pack(l)).collect(),
            forces: Vec::new(),
        }
    }

    /// Derive a *faulted* copy of this compiled netlist: the returned
    /// engine evaluates the same schedule with the given wire faults
    /// permanently injected, at the same batch-evaluation speed.
    ///
    /// Injection strategy, chosen so the sweep hot loop is untouched:
    ///
    /// * **stuck-at on a gate-output wire** — the driving gate's opcode is
    ///   replaced with `ConstTrue`/`ConstFalse` in the schedule;
    /// * **stuck-at on a primary-input wire** — recorded in a force list
    ///   applied once per sweep, right after the input words are loaded;
    /// * **flip** — every reader literal of the wire (fan-in arena and
    ///   primary outputs) has its inversion bit toggled, which is exactly
    ///   "every consumer sees the complement".
    ///
    /// Faults are applied in order; flipping the same wire twice cancels,
    /// and a stuck-at composed with a flip yields the complemented
    /// constant at every reader — the physical semantics of a shorted
    /// line feeding an inverting receiver.
    ///
    /// Cost is `O(gates + literals)` for the copy plus `O(literals)` per
    /// flip — negligible next to one evaluation sweep — and the source
    /// engine is untouched, so cached healthy elaborations stay clean.
    pub fn with_faults(&self, faults: &[WireFault]) -> CompiledNetlist {
        let mut faulted = self.clone();
        // Map wire index -> schedule slot of the gate driving it.
        let mut driver_slot: Vec<Option<u32>> = vec![None; self.wire_count];
        for (slot, &w) in self.outs.iter().enumerate() {
            driver_slot[w as usize] = Some(slot as u32);
        }
        for fault in faults {
            let w = fault.wire.index();
            assert!(w < self.wire_count, "fault names missing wire {w}");
            match fault.kind {
                WireFaultKind::Stuck0 | WireFaultKind::Stuck1 => {
                    let value = fault.kind == WireFaultKind::Stuck1;
                    match driver_slot[w] {
                        Some(slot) => {
                            faulted.ops[slot as usize] =
                                if value { Op::ConstTrue } else { Op::ConstFalse };
                        }
                        None => faulted.forces.push((w as u32, value)),
                    }
                }
                WireFaultKind::Flip => {
                    for lit in &mut faulted.lits {
                        if (*lit >> 1) as usize == w {
                            *lit ^= 1;
                        }
                    }
                    for out in &mut faulted.outputs {
                        if (*out >> 1) as usize == w {
                            *out ^= 1;
                        }
                    }
                }
            }
        }
        faulted
    }

    /// Whether this engine carries injected faults that force primary
    /// input wires (gate-level faults are invisible here by design).
    pub fn has_input_forces(&self) -> bool {
        !self.forces.is_empty()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn input_count(&self) -> usize {
        self.input_wires.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of scheduled gates.
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of wires (scratch words per 64-vector word).
    #[inline]
    pub fn wire_count(&self) -> usize {
        self.wire_count
    }

    /// Number of levels in the schedule.
    #[inline]
    pub fn level_count(&self) -> usize {
        self.levels.len() - 1
    }

    /// Total fan-in literals in the arena.
    #[inline]
    pub fn literal_count(&self) -> usize {
        self.lits.len()
    }

    /// A fresh scratch buffer sized for this circuit.
    pub fn scratch(&self) -> EvalScratch {
        EvalScratch {
            wires: vec![0u64; self.wire_count],
        }
    }

    /// One levelized sweep over 64 lanes. Input wires must already be
    /// written into `wires`; all gate-output wires are overwritten.
    #[inline]
    fn sweep(&self, wires: &mut [u64]) {
        for level in self.levels.windows(2) {
            for g in level[0] as usize..level[1] as usize {
                let span = &self.lits[self.lit_bounds[g] as usize..self.lit_bounds[g + 1] as usize];
                let fetch = |&packed: &PackedLit| -> u64 {
                    let lit = unpack(packed);
                    lit.apply_word(wires[lit.wire.index()])
                };
                let v = match self.ops[g] {
                    Op::And => span.iter().map(fetch).fold(!0u64, |a, b| a & b),
                    Op::Or => span.iter().map(fetch).fold(0u64, |a, b| a | b),
                    Op::Xor => span.iter().map(fetch).fold(0u64, |a, b| a ^ b),
                    Op::Buf => fetch(&span[0]),
                    Op::ConstTrue => !0u64,
                    Op::ConstFalse => 0u64,
                };
                wires[self.outs[g] as usize] = v;
            }
        }
    }

    /// Evaluate 64 vectors: bit `j` of `inputs[i]` is primary input `i` in
    /// vector `j`. Compiled counterpart of [`Netlist::eval_block`], writing
    /// one word per output into `out`.
    pub fn eval_word_into(&self, inputs: &[u64], scratch: &mut EvalScratch, out: &mut [u64]) {
        assert_eq!(
            inputs.len(),
            self.input_wires.len(),
            "wrong number of input blocks"
        );
        assert_eq!(
            out.len(),
            self.outputs.len(),
            "wrong number of output blocks"
        );
        assert_eq!(
            scratch.wires.len(),
            self.wire_count,
            "scratch sized for another circuit"
        );
        let wires = &mut scratch.wires[..];
        for (ord, &w) in self.input_wires.iter().enumerate() {
            wires[w as usize] = inputs[ord];
        }
        for &(w, value) in &self.forces {
            wires[w as usize] = if value { !0u64 } else { 0u64 };
        }
        self.sweep(wires);
        for (o, &packed) in self.outputs.iter().enumerate() {
            let lit = unpack(packed);
            out[o] = lit.apply_word(wires[lit.wire.index()]);
        }
    }

    /// Allocating convenience over [`CompiledNetlist::eval_word_into`].
    pub fn eval_word(&self, inputs: &[u64]) -> Vec<u64> {
        let mut scratch = self.scratch();
        let mut out = vec![0u64; self.outputs.len()];
        self.eval_word_into(inputs, &mut scratch, &mut out);
        out
    }

    /// Evaluate every vector of `inputs` (one row per primary input).
    ///
    /// Unused lanes in the final word of every output row are zeroed, so
    /// row popcounts are exact over the matrix's `vectors` columns.
    pub fn eval_matrix(&self, inputs: &BitMatrix) -> BitMatrix {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.eval_matrix_threads(inputs, threads)
    }

    /// [`CompiledNetlist::eval_matrix`] with an explicit worker count.
    ///
    /// Word-chunks of the matrix fan out to `threads` scoped threads, each
    /// with a private scratch buffer; with one thread (or few words) the
    /// sweep runs inline. Results are identical either way.
    pub fn eval_matrix_threads(&self, inputs: &BitMatrix, threads: usize) -> BitMatrix {
        assert_eq!(
            inputs.rows(),
            self.input_wires.len(),
            "wrong number of input rows"
        );
        let words = inputs.words_per_row();
        let mut out = BitMatrix::zeroed(self.outputs.len(), inputs.vectors());
        let threads = threads.clamp(1, words.max(1));
        if threads <= 1 || words < 2 {
            let mut scratch = self.scratch();
            let mut word_out = vec![0u64; self.outputs.len()];
            let mut word_in = vec![0u64; self.input_wires.len()];
            for w in 0..words {
                for (ord, slot) in word_in.iter_mut().enumerate() {
                    *slot = inputs.word(ord, w);
                }
                self.eval_word_into(&word_in, &mut scratch, &mut word_out);
                for (o, &v) in word_out.iter().enumerate() {
                    *out.word_mut(o, w) = v;
                }
            }
        } else {
            // Chunk the word range; each worker owns disjoint columns and a
            // private scratch, and returns its output slab for stitching.
            let chunk = words.div_ceil(threads);
            let slabs = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(words);
                    if lo >= hi {
                        break;
                    }
                    let inputs = &inputs;
                    handles.push((
                        lo,
                        hi,
                        scope.spawn(move || {
                            let mut scratch = self.scratch();
                            let mut word_in = vec![0u64; self.input_wires.len()];
                            let mut slab = vec![0u64; self.outputs.len() * (hi - lo)];
                            let mut word_out = vec![0u64; self.outputs.len()];
                            for w in lo..hi {
                                for (ord, slot) in word_in.iter_mut().enumerate() {
                                    *slot = inputs.word(ord, w);
                                }
                                self.eval_word_into(&word_in, &mut scratch, &mut word_out);
                                for (o, &v) in word_out.iter().enumerate() {
                                    slab[o * (hi - lo) + (w - lo)] = v;
                                }
                            }
                            slab
                        }),
                    ));
                }
                handles
                    .into_iter()
                    .map(|(lo, hi, h)| (lo, hi, h.join().expect("eval worker panicked")))
                    .collect::<Vec<_>>()
            });
            for (lo, hi, slab) in slabs {
                for o in 0..self.outputs.len() {
                    for w in lo..hi {
                        *out.word_mut(o, w) = slab[o * (hi - lo) + (w - lo)];
                    }
                }
            }
        }
        out.mask_tail();
        out
    }
}

/// Reusable per-evaluation scratch: one 64-lane word per wire.
///
/// Allocated once via [`CompiledNetlist::scratch`] and reused across calls
/// (e.g. across clock cycles of a frame simulation) to keep the hot loop
/// allocation-free.
#[derive(Debug, Clone)]
pub struct EvalScratch {
    wires: Vec<u64>,
}

/// A rows × vectors bit matrix: `rows` signals, each carrying `vectors`
/// independent boolean test patterns packed 64 per machine word.
///
/// Row-major storage: row `r` occupies `words_per_row` consecutive words,
/// vector `j` living in word `j / 64` bit `j % 64`. Inputs to
/// [`CompiledNetlist::eval_matrix`] use one row per primary input; outputs
/// come back with one row per primary output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    vectors: usize,
    words: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix carrying `vectors` patterns over `rows` signals.
    pub fn zeroed(rows: usize, vectors: usize) -> Self {
        let words = vectors.div_ceil(crate::eval::WORD_BITS);
        BitMatrix {
            rows,
            vectors,
            words,
            data: vec![0u64; rows * words],
        }
    }

    /// Build from a per-bit function: `f(row, vector)`.
    pub fn from_fn(rows: usize, vectors: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = BitMatrix::zeroed(rows, vectors);
        for r in 0..rows {
            for v in 0..vectors {
                if f(r, v) {
                    m.set(r, v, true);
                }
            }
        }
        m
    }

    /// Number of signal rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of test vectors (columns).
    #[inline]
    pub fn vectors(&self) -> usize {
        self.vectors
    }

    /// Words per row (`⌈vectors/64⌉`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// Bit of `row` in test vector `vector`.
    #[inline]
    pub fn get(&self, row: usize, vector: usize) -> bool {
        assert!(
            row < self.rows && vector < self.vectors,
            "bit matrix index out of range"
        );
        let w = self.data[row * self.words + vector / 64];
        (w >> (vector % 64)) & 1 == 1
    }

    /// Set the bit of `row` in test vector `vector`.
    #[inline]
    pub fn set(&mut self, row: usize, vector: usize, value: bool) {
        assert!(
            row < self.rows && vector < self.vectors,
            "bit matrix index out of range"
        );
        let slot = &mut self.data[row * self.words + vector / 64];
        let mask = 1u64 << (vector % 64);
        if value {
            *slot |= mask;
        } else {
            *slot &= !mask;
        }
    }

    /// The `w`-th 64-lane word of `row`.
    #[inline]
    pub fn word(&self, row: usize, w: usize) -> u64 {
        self.data[row * self.words + w]
    }

    /// Mutable access to the `w`-th 64-lane word of `row`.
    #[inline]
    pub fn word_mut(&mut self, row: usize, w: usize) -> &mut u64 {
        &mut self.data[row * self.words + w]
    }

    /// The words of one row.
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        &self.data[row * self.words..(row + 1) * self.words]
    }

    /// Extract test vector `vector` as one bit per row.
    pub fn column(&self, vector: usize) -> Vec<bool> {
        (0..self.rows).map(|r| self.get(r, vector)).collect()
    }

    /// Count set bits in `row` across all vectors.
    pub fn row_popcount(&self, row: usize) -> usize {
        self.row_words(row)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Zero the lanes past `vectors` in the final word of every row, so
    /// popcounts never see garbage from inverted or constant signals.
    pub(crate) fn mask_tail(&mut self) {
        let used = self.vectors % 64;
        if used == 0 || self.words == 0 {
            return;
        }
        let mask = (1u64 << used) - 1;
        for r in 0..self.rows {
            self.data[r * self.words + self.words - 1] &= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority3() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let ab = nl.and([a, b]);
        let bc = nl.and([b, c]);
        let ac = nl.and([a, c]);
        let out = nl.or([ab, bc, ac]);
        nl.mark_output(out);
        nl
    }

    /// A circuit hitting every opcode, inverted fan-ins, and an inverted
    /// output literal.
    fn kitchen_sink() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let d = nl.input();
        let t = nl.constant(true);
        let f = nl.constant(false);
        let x1 = nl.xor([Literal::pos(a), Literal::neg(b), t]);
        let x2 = nl.and([x1, Literal::pos(c), f.complement()]);
        let x3 = nl.or([x2, Literal::neg(d), x1.complement()]);
        let x4 = nl.buf(x3);
        nl.mark_output(x4);
        nl.mark_output(x3.complement());
        nl.mark_output(f);
        nl
    }

    fn assert_full_truth_table(nl: &Netlist) {
        let n = nl.input_count();
        assert!(n <= 16, "truth-table check limited to 16 inputs");
        let compiled = nl.compile();
        let vectors = 1usize << n;
        let m = BitMatrix::from_fn(n, vectors, |row, vector| (vector >> row) & 1 == 1);
        let out = compiled.eval_matrix(&m);
        for vector in 0..vectors {
            let bits: Vec<bool> = (0..n).map(|i| (vector >> i) & 1 == 1).collect();
            let expected = nl.eval(&bits);
            assert_eq!(out.column(vector), expected, "vector {vector}");
        }
    }

    #[test]
    fn compiled_matches_eval_on_majority_truth_table() {
        assert_full_truth_table(&majority3());
    }

    #[test]
    fn compiled_matches_eval_on_kitchen_sink_truth_table() {
        assert_full_truth_table(&kitchen_sink());
    }

    #[test]
    fn eval_word_matches_eval_block() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..10 {
            let blocks: Vec<u64> = (0..nl.input_count())
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    state
                })
                .collect();
            assert_eq!(compiled.eval_word(&blocks), nl.eval_block(&blocks));
        }
    }

    #[test]
    fn levels_respect_dependencies() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        assert!(compiled.level_count() >= 3);
        // Every gate's fan-in wires must be written by an earlier level or
        // be primary inputs.
        let mut written_level = vec![0usize; compiled.wire_count()];
        for (l, level) in compiled.levels.windows(2).enumerate() {
            for g in level[0] as usize..level[1] as usize {
                written_level[compiled.outs[g] as usize] = l + 1;
            }
        }
        for (l, level) in compiled.levels.windows(2).enumerate() {
            for g in level[0] as usize..level[1] as usize {
                let span = &compiled.lits
                    [compiled.lit_bounds[g] as usize..compiled.lit_bounds[g + 1] as usize];
                for &p in span {
                    let src = unpack(p).wire.index();
                    assert!(
                        written_level[src] <= l,
                        "gate at level {} reads wire written at level {}",
                        l + 1,
                        written_level[src]
                    );
                }
            }
        }
    }

    #[test]
    fn eval_matrix_handles_ragged_vector_counts() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        for vectors in [1usize, 63, 64, 65, 127, 130, 257] {
            let m = BitMatrix::from_fn(nl.input_count(), vectors, |row, v| {
                (v.wrapping_mul(2654435761) >> row) & 1 == 1
            });
            let out = compiled.eval_matrix(&m);
            assert_eq!(out.vectors(), vectors);
            for v in 0..vectors {
                assert_eq!(out.column(v), nl.eval(&m.column(v)), "vector {v}");
            }
            // Tail lanes must be masked: popcounts bounded by vectors.
            for o in 0..out.rows() {
                assert!(out.row_popcount(o) <= vectors);
            }
        }
    }

    #[test]
    fn eval_matrix_threads_matches_inline() {
        let nl = majority3();
        let compiled = nl.compile();
        let m = BitMatrix::from_fn(3, 1000, |row, v| (v >> row) & 1 == 1);
        let inline = compiled.eval_matrix_threads(&m, 1);
        for threads in [2usize, 3, 7, 16] {
            assert_eq!(compiled.eval_matrix_threads(&m, threads), inline);
        }
    }

    #[test]
    fn const_only_netlist_evaluates() {
        let mut nl = Netlist::new();
        let t = nl.constant(true);
        let f = nl.constant(false);
        nl.mark_output(t);
        nl.mark_output(f.complement());
        let compiled = nl.compile();
        let out = compiled.eval_matrix(&BitMatrix::zeroed(0, 70));
        assert_eq!(out.row_popcount(0), 70);
        assert_eq!(out.row_popcount(1), 70);
    }

    #[test]
    fn empty_netlist_compiles() {
        let compiled = Netlist::new().compile();
        assert_eq!(compiled.gate_count(), 0);
        assert_eq!(compiled.level_count(), 1);
        let out = compiled.eval_matrix(&BitMatrix::zeroed(0, 0));
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let mut scratch = compiled.scratch();
        let mut out1 = vec![0u64; compiled.output_count()];
        let mut out2 = vec![0u64; compiled.output_count()];
        let inputs = vec![0xAAAA_AAAA_AAAA_AAAAu64; compiled.input_count()];
        compiled.eval_word_into(&inputs, &mut scratch, &mut out1);
        compiled.eval_word_into(&inputs, &mut scratch, &mut out2);
        assert_eq!(out1, out2);
    }

    #[test]
    fn bit_matrix_set_get_round_trip() {
        let mut m = BitMatrix::zeroed(2, 130);
        m.set(0, 0, true);
        m.set(0, 129, true);
        m.set(1, 64, true);
        assert!(m.get(0, 0) && m.get(0, 129) && m.get(1, 64));
        assert!(!m.get(0, 1) && !m.get(1, 0));
        assert_eq!(m.row_popcount(0), 2);
        m.set(0, 129, false);
        assert_eq!(m.row_popcount(0), 1);
        assert_eq!(m.words_per_row(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_matrix_get_bounds_checked() {
        BitMatrix::zeroed(1, 64).get(0, 64);
    }

    /// Reference model of a wire fault: re-evaluate the interpreter with
    /// the faulted wire's value overridden at every read.
    fn eval_with_fault(nl: &Netlist, fault: WireFault, bits: &[bool]) -> Vec<bool> {
        // Evaluate healthy wire values in topological order, then replay
        // with the fault applied to every *read* of the wire.
        let mut values = vec![false; nl.wire_count()];
        for (ord, w) in nl.inputs().iter().enumerate() {
            values[w.index()] = bits[ord];
        }
        let read = |values: &[bool], lit: Literal| -> bool {
            let mut v = values[lit.wire.index()];
            if lit.wire == fault.wire {
                v = match fault.kind {
                    WireFaultKind::Stuck0 => false,
                    WireFaultKind::Stuck1 => true,
                    WireFaultKind::Flip => !v,
                };
            }
            v ^ lit.inverted
        };
        for gate in nl.gates() {
            let ins: Vec<bool> = gate.inputs.iter().map(|&l| read(&values, l)).collect();
            values[gate.output.index()] = match gate.kind {
                GateKind::And => ins.iter().all(|&b| b),
                GateKind::Or => ins.iter().any(|&b| b),
                GateKind::Xor => ins.iter().fold(false, |a, b| a ^ b),
                GateKind::Buf => ins[0],
                GateKind::Const(v) => v,
            };
        }
        nl.outputs().iter().map(|&l| read(&values, l)).collect()
    }

    #[test]
    fn single_wire_faults_match_the_reference_model() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let n = nl.input_count();
        for wire in 0..nl.wire_count() as u32 {
            for kind in [
                WireFaultKind::Stuck0,
                WireFaultKind::Stuck1,
                WireFaultKind::Flip,
            ] {
                let fault = WireFault {
                    wire: Wire(wire),
                    kind,
                };
                let faulted = compiled.with_faults(&[fault]);
                for vector in 0..(1usize << n) {
                    let bits: Vec<bool> = (0..n).map(|i| (vector >> i) & 1 == 1).collect();
                    let words: Vec<u64> = bits.iter().map(|&b| if b { !0u64 } else { 0 }).collect();
                    let got: Vec<bool> = faulted
                        .eval_word(&words)
                        .iter()
                        .map(|&w| w & 1 == 1)
                        .collect();
                    assert_eq!(
                        got,
                        eval_with_fault(&nl, fault, &bits),
                        "wire {wire} {kind:?} vector {vector:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn flip_twice_cancels_and_source_is_untouched() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let wire = nl.inputs()[1];
        let twice = compiled.with_faults(&[WireFault::flip(wire), WireFault::flip(wire)]);
        let inputs = vec![0xDEAD_BEEF_0123_4567u64, 0x0F0F_0F0F_0F0F_0F0Fu64, 0, !0u64];
        assert_eq!(twice.eval_word(&inputs), compiled.eval_word(&inputs));
        // The healthy engine must not have been mutated by the derivation.
        let once = compiled.with_faults(&[WireFault::flip(wire)]);
        assert_ne!(once.eval_word(&inputs), compiled.eval_word(&inputs));
        assert_eq!(
            compiled.eval_word(&inputs),
            nl.compile().eval_word(&inputs),
            "with_faults mutated its source engine"
        );
    }

    #[test]
    fn input_wire_stuck_forces_every_lane() {
        let nl = majority3();
        let compiled = nl.compile();
        let stuck = compiled.with_faults(&[WireFault::stuck(nl.inputs()[0], true)]);
        assert!(stuck.has_input_forces());
        assert!(!compiled.has_input_forces());
        // majority(1, b, c) = b | c.
        let b = 0b1100u64;
        let c = 0b1010u64;
        assert_eq!(stuck.eval_word(&[0, b, c])[0], b | c);
        // Matrix path applies the same forces.
        let m = BitMatrix::from_fn(3, 100, |row, v| (v >> row) & 1 == 1);
        let out = stuck.eval_matrix(&m);
        for v in 0..100 {
            let col = m.column(v);
            assert_eq!(out.get(0, v), col[1] | col[2], "vector {v}");
        }
    }

    #[test]
    #[should_panic(expected = "missing wire")]
    fn fault_location_is_validated() {
        majority3()
            .compile()
            .with_faults(&[WireFault::stuck(Wire(1000), false)]);
    }
}
