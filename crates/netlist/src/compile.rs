//! Compiled netlist engine: a two-phase compiler→emulator in the style of
//! hardware emulation engines.
//!
//! [`Netlist::eval`] and [`Netlist::eval_block`] walk the builder's data
//! structures directly: every gate dereferences a `Vec<Literal>` of its own,
//! and every wire dispatches through the driver table. That is fine for
//! one vector, but Monte Carlo verification, fault campaigns, and the
//! serving fabric push millions of vectors through the same circuit, so
//! this module compiles a netlist **once**, in two phases:
//!
//! 1. **Schedule** (phase 1, this file): the gate list is levelized via
//!    the depth machinery and every gate's fan-in literals are flattened
//!    into one contiguous arena. The schedule is the fault-injection
//!    surface — [`CompiledNetlist::with_faults`] edits opcodes, literal
//!    inversion bits, and input forces here — and doubles as a slow
//!    reference interpreter ([`CompiledNetlist::eval_word_reference`])
//!    for differential testing.
//! 2. **Instruction stream** (phase 2, [`crate::insn`]): the schedule is
//!    lowered onto a chip partition ([`crate::partition`]) as a dense
//!    stream of fixed-width op/src-a/src-b/dst records over
//!    liveness-recycled value slots, and the emulator sweeps it over a
//!    [`BitMatrix`] in lane groups of 64, 256, or 512 test vectors
//!    (portable unrolled u64, AVX2, or AVX-512 kernels), either splitting
//!    lanes across threads or splitting each level's instruction range
//!    across a barrier-synchronized team.
//!
//! Literal semantics are shared with the interpreters through
//! [`Literal::apply`] / [`Literal::apply_word`], so all paths agree by
//! construction; the equivalence is additionally enforced by truth-table
//! and property tests at every lane width and thread count.

use crate::builder::Netlist;
use crate::gate::GateKind;
use crate::insn::{detect_simd, lower, InsnStream, Simd};
pub use crate::matrix::BitMatrix;
use crate::partition::{partition_schedule, report, Partition, PartitionReport};
use crate::wire::{Literal, Wire};

/// Chips the default compilation partitions onto — enough for the level-
/// parallel sweep to feed eight workers, cheap to ignore on fewer.
pub const DEFAULT_CHIPS: usize = 8;

/// How a faulted wire misbehaves (see [`CompiledNetlist::with_faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireFaultKind {
    /// The wire reads constant 0 regardless of its driver.
    Stuck0,
    /// The wire reads constant 1 regardless of its driver.
    Stuck1,
    /// Every reader of the wire sees the complement of the driven value.
    Flip,
}

/// A located wire fault: which wire, and how it misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WireFault {
    /// The faulted wire.
    pub wire: Wire,
    /// The failure mode.
    pub kind: WireFaultKind,
}

impl WireFault {
    /// A stuck-at fault forcing `wire` to `value`.
    pub fn stuck(wire: Wire, value: bool) -> WireFault {
        WireFault {
            wire,
            kind: if value {
                WireFaultKind::Stuck1
            } else {
                WireFaultKind::Stuck0
            },
        }
    }

    /// An inversion fault on `wire`.
    pub fn flip(wire: Wire) -> WireFault {
        WireFault {
            wire,
            kind: WireFaultKind::Flip,
        }
    }
}

/// Compiled gate opcode. [`GateKind::Const`] splits into two opcodes so
/// no evaluator ever touches a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    Buf,
    ConstTrue,
    ConstFalse,
}

/// A literal packed into one word: wire index in the high bits, inversion
/// flag in bit 0.
pub(crate) type PackedLit = u32;

#[inline]
pub(crate) fn pack(lit: Literal) -> PackedLit {
    let w = lit.wire.index() as u32;
    assert!(w < (1 << 31), "netlist exceeds 2^31 wires");
    (w << 1) | lit.inverted as u32
}

#[inline]
pub(crate) fn unpack(packed: PackedLit) -> Literal {
    Literal {
        wire: Wire(packed >> 1),
        inverted: packed & 1 == 1,
    }
}

/// Phase-1 compilation output: the levelized, arena-flattened schedule.
///
/// This is the IR faults are lowered onto, the input to the partitioner
/// and the phase-2 lowering, and — via [`Schedule::eval_word`] — a slow
/// reference evaluator the instruction stream is differentially tested
/// against.
#[derive(Debug, Clone)]
pub(crate) struct Schedule {
    /// Total wire count.
    pub wire_count: usize,
    /// Wire index of each primary input, in input-ordinal order.
    pub input_wires: Vec<u32>,
    /// Opcode per scheduled gate, in levelized order.
    pub ops: Vec<Op>,
    /// Output wire index per scheduled gate.
    pub outs: Vec<u32>,
    /// Prefix offsets into `lits`: gate `g` reads `lits[bounds[g]..bounds[g+1]]`.
    pub lit_bounds: Vec<u32>,
    /// Flattened fan-in literal arena.
    pub lits: Vec<PackedLit>,
    /// Level boundaries over the scheduled gate list: level `l` is the gate
    /// range `levels[l]..levels[l+1]`. Within a level no gate reads another's
    /// output, so a level is a parallel-safe unit of work.
    pub levels: Vec<u32>,
    /// Packed primary-output literals, in marking order.
    pub outputs: Vec<PackedLit>,
    /// Stuck-at values applied to *non-gate* wires (primary inputs) after
    /// the input words are loaded and before the sweep: `(wire, value)`.
    /// Empty for healthy circuits. Gate-output stucks are compiled into
    /// the opcode stream instead.
    pub forces: Vec<(u32, bool)>,
}

impl Schedule {
    /// Levelize `nl` via the depth report, then flatten.
    fn new(nl: &Netlist) -> Self {
        let depth = nl.depth_report();
        // Stable sort by output-wire depth keeps builder order within a
        // level, so compilation is deterministic.
        let mut order: Vec<u32> = (0..nl.gates.len() as u32).collect();
        order.sort_by_key(|&g| depth.wire_depth[nl.gates[g as usize].output.index()]);

        let lit_total: usize = nl.gates.iter().map(|g| g.inputs.len()).sum();
        let mut ops = Vec::with_capacity(order.len());
        let mut outs = Vec::with_capacity(order.len());
        let mut lit_bounds = Vec::with_capacity(order.len() + 1);
        let mut lits = Vec::with_capacity(lit_total);
        let mut levels = vec![0u32];
        lit_bounds.push(0u32);

        let mut current_depth = None;
        for (slot, &g) in order.iter().enumerate() {
            let gate = &nl.gates[g as usize];
            let d = depth.wire_depth[gate.output.index()];
            match current_depth {
                Some(prev) if prev == d => {}
                Some(_) => levels.push(slot as u32),
                None => {}
            }
            current_depth = Some(d);
            ops.push(match gate.kind {
                GateKind::And => Op::And,
                GateKind::Or => Op::Or,
                GateKind::Xor => Op::Xor,
                GateKind::Buf => Op::Buf,
                GateKind::Const(true) => Op::ConstTrue,
                GateKind::Const(false) => Op::ConstFalse,
            });
            outs.push(gate.output.index() as u32);
            for &lit in &gate.inputs {
                lits.push(pack(lit));
            }
            lit_bounds.push(lits.len() as u32);
        }
        levels.push(order.len() as u32);

        Schedule {
            wire_count: nl.wire_count(),
            input_wires: nl.inputs().iter().map(|w| w.index() as u32).collect(),
            ops,
            outs,
            lit_bounds,
            lits,
            levels,
            outputs: nl.outputs().iter().map(|&l| pack(l)).collect(),
            forces: Vec::new(),
        }
    }

    /// Fan-in literal span of scheduled gate `g`.
    #[inline]
    pub(crate) fn gate_lits(&self, g: usize) -> &[PackedLit] {
        &self.lits[self.lit_bounds[g] as usize..self.lit_bounds[g + 1] as usize]
    }

    /// Apply `faults` in place (see [`CompiledNetlist::with_faults`] for
    /// the injection strategy and composition semantics).
    fn apply_faults(&mut self, faults: &[WireFault]) {
        // Map wire index -> schedule slot of the gate driving it.
        let mut driver_slot: Vec<Option<u32>> = vec![None; self.wire_count];
        for (slot, &w) in self.outs.iter().enumerate() {
            driver_slot[w as usize] = Some(slot as u32);
        }
        for fault in faults {
            let w = fault.wire.index();
            assert!(w < self.wire_count, "fault names missing wire {w}");
            match fault.kind {
                WireFaultKind::Stuck0 | WireFaultKind::Stuck1 => {
                    let value = fault.kind == WireFaultKind::Stuck1;
                    match driver_slot[w] {
                        Some(slot) => {
                            self.ops[slot as usize] =
                                if value { Op::ConstTrue } else { Op::ConstFalse };
                        }
                        None => self.forces.push((w as u32, value)),
                    }
                }
                WireFaultKind::Flip => {
                    for lit in &mut self.lits {
                        if (*lit >> 1) as usize == w {
                            *lit ^= 1;
                        }
                    }
                    for out in &mut self.outputs {
                        if (*out >> 1) as usize == w {
                            *out ^= 1;
                        }
                    }
                }
            }
        }
    }

    /// One levelized 64-lane sweep over the schedule itself — the
    /// reference semantics the instruction stream must reproduce.
    fn sweep(&self, wires: &mut [u64]) {
        for level in self.levels.windows(2) {
            for g in level[0] as usize..level[1] as usize {
                let span = self.gate_lits(g);
                let fetch = |&packed: &PackedLit| -> u64 {
                    let lit = unpack(packed);
                    lit.apply_word(wires[lit.wire.index()])
                };
                let v = match self.ops[g] {
                    Op::And => span.iter().map(fetch).fold(!0u64, |a, b| a & b),
                    Op::Or => span.iter().map(fetch).fold(0u64, |a, b| a | b),
                    Op::Xor => span.iter().map(fetch).fold(0u64, |a, b| a ^ b),
                    Op::Buf => fetch(&span[0]),
                    Op::ConstTrue => !0u64,
                    Op::ConstFalse => 0u64,
                };
                wires[self.outs[g] as usize] = v;
            }
        }
    }

    /// Evaluate 64 vectors against the schedule directly (one word per
    /// wire, no slot recycling).
    pub(crate) fn eval_word(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(
            inputs.len(),
            self.input_wires.len(),
            "wrong number of input blocks"
        );
        let mut wires = vec![0u64; self.wire_count];
        for (ord, &w) in self.input_wires.iter().enumerate() {
            wires[w as usize] = inputs[ord];
        }
        for &(w, value) in &self.forces {
            wires[w as usize] = if value { !0u64 } else { 0u64 };
        }
        self.sweep(&mut wires);
        self.outputs
            .iter()
            .map(|&packed| {
                let lit = unpack(packed);
                lit.apply_word(wires[lit.wire.index()])
            })
            .collect()
    }
}

/// A netlist compiled for batch evaluation: the phase-1 `Schedule`, its
/// chip partition, and the phase-2 instruction stream the emulator
/// actually runs.
///
/// Construction is `O(wires + literals)` after one depth pass; the
/// compiled form is immutable and holds no reference to the source
/// [`Netlist`], so it can be cached and shared across verification,
/// simulation, serving, and search.
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    schedule: Schedule,
    partition: Partition,
    stream: InsnStream,
    simd: Simd,
}

impl Netlist {
    /// Compile this netlist for batch evaluation, partitioned onto
    /// [`DEFAULT_CHIPS`] chips.
    pub fn compile(&self) -> CompiledNetlist {
        self.compile_partitioned(DEFAULT_CHIPS)
    }

    /// Compile with an explicit chip count (≥ 1). The partition bounds
    /// both the level-parallel sweep's useful worker count and the
    /// chips/pins packaging table.
    pub fn compile_partitioned(&self, chips: usize) -> CompiledNetlist {
        CompiledNetlist::new_partitioned(self, chips)
    }
}

impl CompiledNetlist {
    /// Compile `nl` onto [`DEFAULT_CHIPS`] chips.
    pub fn new(nl: &Netlist) -> Self {
        Self::new_partitioned(nl, DEFAULT_CHIPS)
    }

    /// Compile `nl` onto `chips` chips: levelize, partition, lower.
    pub fn new_partitioned(nl: &Netlist, chips: usize) -> Self {
        let schedule = Schedule::new(nl);
        let partition = partition_schedule(&schedule, chips.max(1));
        let stream = lower(&schedule, &partition);
        CompiledNetlist {
            schedule,
            partition,
            stream,
            simd: detect_simd(),
        }
    }

    /// Derive a *faulted* copy of this compiled netlist: the returned
    /// engine evaluates the same schedule with the given wire faults
    /// permanently injected, at the same batch-evaluation speed.
    ///
    /// Injection strategy, chosen so the emulator hot loop is untouched:
    ///
    /// * **stuck-at on a gate-output wire** — the driving gate's opcode is
    ///   replaced with `ConstTrue`/`ConstFalse` in the schedule;
    /// * **stuck-at on a primary-input wire** — recorded in a force list
    ///   applied once per sweep, right after the input words are loaded;
    /// * **flip** — every reader literal of the wire (fan-in arena and
    ///   primary outputs) has its inversion bit toggled, which is exactly
    ///   "every consumer sees the complement".
    ///
    /// Faults are applied in order; flipping the same wire twice cancels,
    /// and a stuck-at composed with a flip yields the complemented
    /// constant at every reader — the physical semantics of a shorted
    /// line feeding an inverting receiver.
    ///
    /// The edited schedule is then **re-lowered** onto the same chip
    /// partition, so the faulted engine runs the identical instruction
    /// format, slot layout discipline, and SIMD kernels as the healthy
    /// one. Cost is `O(gates + literals)` — negligible next to one
    /// evaluation sweep — and the source engine is untouched, so cached
    /// healthy elaborations stay clean.
    pub fn with_faults(&self, faults: &[WireFault]) -> CompiledNetlist {
        let mut schedule = self.schedule.clone();
        schedule.apply_faults(faults);
        let stream = lower(&schedule, &self.partition);
        CompiledNetlist {
            schedule,
            partition: self.partition.clone(),
            stream,
            simd: self.simd,
        }
    }

    /// Whether this engine carries injected faults that force primary
    /// input wires (gate-level faults are invisible here by design).
    pub fn has_input_forces(&self) -> bool {
        !self.schedule.forces.is_empty()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn input_count(&self) -> usize {
        self.schedule.input_wires.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn output_count(&self) -> usize {
        self.schedule.outputs.len()
    }

    /// Number of scheduled gates.
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.schedule.ops.len()
    }

    /// Number of wires in the source netlist.
    #[inline]
    pub fn wire_count(&self) -> usize {
        self.schedule.wire_count
    }

    /// Number of levels in the schedule.
    #[inline]
    pub fn level_count(&self) -> usize {
        self.schedule.levels.len() - 1
    }

    /// Total fan-in literals in the arena.
    #[inline]
    pub fn literal_count(&self) -> usize {
        self.schedule.lits.len()
    }

    /// Number of emulator instructions in the lowered stream.
    #[inline]
    pub fn insn_count(&self) -> usize {
        self.stream.insns.len()
    }

    /// Value slots the emulator sweeps over — peak live wires after
    /// level-blocked recycling, and the scratch words per lane. For the
    /// switch netlists this is a small fraction of [`Self::wire_count`],
    /// which is what keeps wide sweeps cache-resident.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.stream.slot_count
    }

    /// Number of chips the schedule is partitioned onto.
    #[inline]
    pub fn chip_count(&self) -> usize {
        self.partition.chips
    }

    /// Price this compilation's chip partition in the paper's packaging
    /// currency: gates, pins, and cut wires per chip.
    pub fn partition_report(&self) -> PartitionReport {
        report(&self.schedule, &self.partition)
    }

    /// Validate the lowered stream's slot bounds and per-level cross-chip
    /// write/read disjointness. Cheap relative to compilation; runs
    /// automatically in debug builds, callable from tests and benches.
    pub fn self_check(&self) {
        self.stream.self_check();
    }

    /// A fresh scratch buffer sized for this circuit (64-lane sweeps).
    pub fn scratch(&self) -> EvalScratch {
        EvalScratch {
            vals: vec![0u64; self.stream.slot_count],
        }
    }

    /// Evaluate 64 vectors: bit `j` of `inputs[i]` is primary input `i` in
    /// vector `j`. Compiled counterpart of [`Netlist::eval_block`], writing
    /// one word per output into `out`.
    pub fn eval_word_into(&self, inputs: &[u64], scratch: &mut EvalScratch, out: &mut [u64]) {
        assert_eq!(
            inputs.len(),
            self.stream.input_slots.len(),
            "wrong number of input blocks"
        );
        assert_eq!(
            out.len(),
            self.stream.outputs.len(),
            "wrong number of output blocks"
        );
        assert_eq!(
            scratch.vals.len(),
            self.stream.slot_count,
            "scratch sized for another circuit"
        );
        let vals = &mut scratch.vals[..];
        for (ord, &slot) in self.stream.input_slots.iter().enumerate() {
            vals[slot as usize] = inputs[ord];
        }
        for &(slot, value) in &self.stream.forces {
            vals[slot as usize] = if value { !0u64 } else { 0u64 };
        }
        self.stream.sweep(1, vals, self.simd);
        for (o, &(slot, inverted)) in self.stream.outputs.iter().enumerate() {
            out[o] = vals[slot as usize] ^ (inverted as u64).wrapping_neg();
        }
    }

    /// Allocating convenience over [`CompiledNetlist::eval_word_into`].
    pub fn eval_word(&self, inputs: &[u64]) -> Vec<u64> {
        let mut scratch = self.scratch();
        let mut out = vec![0u64; self.stream.outputs.len()];
        self.eval_word_into(inputs, &mut scratch, &mut out);
        out
    }

    /// Evaluate 64 vectors against the phase-1 schedule instead of the
    /// instruction stream — the "old" compiled engine, kept as a
    /// reference implementation for differential tests. Slow path:
    /// allocates a full wire-indexed buffer per call.
    pub fn eval_word_reference(&self, inputs: &[u64]) -> Vec<u64> {
        self.schedule.eval_word(inputs)
    }

    /// Evaluate every vector of `inputs` (one row per primary input).
    ///
    /// Picks a strategy from the batch shape: wide batches split lanes
    /// across threads (no synchronization inside a sweep); narrow batches
    /// over large circuits run the level-parallel team sweep. Results are
    /// bit-identical either way. Unused lanes in the final word of every
    /// output row are zeroed, so row popcounts are exact over the
    /// matrix's `vectors` columns.
    pub fn eval_matrix(&self, inputs: &BitMatrix) -> BitMatrix {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let words = inputs.words_per_row();
        if threads > 1 && words < 2 * threads && self.insn_count() >= 1 << 15 {
            self.eval_matrix_level_threads(inputs, threads)
        } else {
            self.eval_matrix_threads(inputs, threads)
        }
    }

    /// [`CompiledNetlist::eval_matrix`] with an explicit worker count,
    /// splitting the lane dimension: word-chunks of the matrix fan out to
    /// `threads` scoped threads, each sweeping its chunk in 512-lane
    /// groups with a private scratch. With one thread (or few words) the
    /// sweep runs inline. Results are identical either way.
    pub fn eval_matrix_threads(&self, inputs: &BitMatrix, threads: usize) -> BitMatrix {
        self.eval_matrix_lanes(inputs, 512, threads)
    }

    /// Lane-splitting evaluation with an explicit maximum lane-group
    /// width (64, 256, or 512 test vectors per instruction fetch) — the
    /// ablation and equivalence-test surface for the emulator's width.
    pub fn eval_matrix_lanes(
        &self,
        inputs: &BitMatrix,
        max_lanes: usize,
        threads: usize,
    ) -> BitMatrix {
        assert_eq!(
            inputs.rows(),
            self.stream.input_slots.len(),
            "wrong number of input rows"
        );
        let max_lw = match max_lanes {
            64 => 1,
            256 => 4,
            512 => 8,
            _ => panic!("lane width must be 64, 256, or 512"),
        };
        let words = inputs.words_per_row();
        let mut out = BitMatrix::zeroed(self.stream.outputs.len(), inputs.vectors());
        let threads = threads.clamp(1, words.max(1));
        if threads <= 1 || words < 2 {
            let mut vals = vec![0u64; self.stream.slot_count * max_lw];
            let mut sink = |o: usize, w: usize, v: u64| *out.word_mut(o, w) = v;
            self.stream
                .sweep_word_range(inputs, 0, words, max_lw, &mut vals, self.simd, &mut sink);
        } else {
            // Chunk the word range; each worker owns disjoint columns and a
            // private scratch, and returns its output slab for stitching.
            let chunk = words.div_ceil(threads);
            let outputs = self.stream.outputs.len();
            let slabs = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(words);
                    if lo >= hi {
                        break;
                    }
                    let inputs = &inputs;
                    handles.push((
                        lo,
                        hi,
                        scope.spawn(move || {
                            let mut vals = vec![0u64; self.stream.slot_count * max_lw];
                            let mut slab = vec![0u64; outputs * (hi - lo)];
                            let width = hi - lo;
                            let mut sink =
                                |o: usize, w: usize, v: u64| slab[o * width + (w - lo)] = v;
                            self.stream.sweep_word_range(
                                inputs, lo, hi, max_lw, &mut vals, self.simd, &mut sink,
                            );
                            slab
                        }),
                    ));
                }
                handles
                    .into_iter()
                    .map(|(lo, hi, h)| (lo, hi, h.join().expect("eval worker panicked")))
                    .collect::<Vec<_>>()
            });
            for (lo, hi, slab) in slabs {
                for o in 0..outputs {
                    for w in lo..hi {
                        *out.word_mut(o, w) = slab[o * (hi - lo) + (w - lo)];
                    }
                }
            }
        }
        out.mask_tail();
        debug_assert!(out.tail_is_clear());
        out
    }

    /// Level-parallel evaluation: instead of splitting lanes, a
    /// barrier-synchronized team of `threads` workers executes each
    /// level's instruction range concurrently, chips striped across
    /// workers — the emulator-side use of the chip partition. Profitable
    /// when the circuit is much wider than the batch; bit-identical to
    /// the lane-splitting path.
    pub fn eval_matrix_level_threads(&self, inputs: &BitMatrix, threads: usize) -> BitMatrix {
        assert_eq!(
            inputs.rows(),
            self.stream.input_slots.len(),
            "wrong number of input rows"
        );
        let mut out = BitMatrix::zeroed(self.stream.outputs.len(), inputs.vectors());
        self.stream
            .eval_level_parallel(inputs, &mut out, threads, self.simd);
        out.mask_tail();
        debug_assert!(out.tail_is_clear());
        out
    }
}

/// Reusable per-evaluation scratch: one 64-lane word per value slot.
///
/// Allocated once via [`CompiledNetlist::scratch`] and reused across calls
/// (e.g. across clock cycles of a frame simulation) to keep the hot loop
/// allocation-free. Sweeps overwrite every slot they read, so no state
/// leaks between calls.
#[derive(Debug, Clone)]
pub struct EvalScratch {
    vals: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority3() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let ab = nl.and([a, b]);
        let bc = nl.and([b, c]);
        let ac = nl.and([a, c]);
        let out = nl.or([ab, bc, ac]);
        nl.mark_output(out);
        nl
    }

    /// A circuit hitting every opcode, inverted fan-ins, wide fan-in
    /// (accumulator chains), and an inverted output literal.
    fn kitchen_sink() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let d = nl.input();
        let t = nl.constant(true);
        let f = nl.constant(false);
        let x1 = nl.xor([Literal::pos(a), Literal::neg(b), t]);
        let x2 = nl.and([x1, Literal::pos(c), f.complement()]);
        let x3 = nl.or([x2, Literal::neg(d), x1.complement()]);
        let x4 = nl.buf(x3);
        let x5 = nl.and([x1, x2, x3, x4, Literal::neg(a)]);
        nl.mark_output(x4);
        nl.mark_output(x3.complement());
        nl.mark_output(f);
        nl.mark_output(x5);
        nl
    }

    fn assert_full_truth_table(nl: &Netlist) {
        let n = nl.input_count();
        assert!(n <= 16, "truth-table check limited to 16 inputs");
        let compiled = nl.compile();
        compiled.self_check();
        let vectors = 1usize << n;
        let m = BitMatrix::from_fn(n, vectors, |row, vector| (vector >> row) & 1 == 1);
        let out = compiled.eval_matrix(&m);
        for vector in 0..vectors {
            let bits: Vec<bool> = (0..n).map(|i| (vector >> i) & 1 == 1).collect();
            let expected = nl.eval(&bits);
            assert_eq!(out.column(vector), expected, "vector {vector}");
        }
    }

    #[test]
    fn compiled_matches_eval_on_majority_truth_table() {
        assert_full_truth_table(&majority3());
    }

    #[test]
    fn compiled_matches_eval_on_kitchen_sink_truth_table() {
        assert_full_truth_table(&kitchen_sink());
    }

    #[test]
    fn eval_word_matches_eval_block_and_reference() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..10 {
            let blocks: Vec<u64> = (0..nl.input_count())
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    state
                })
                .collect();
            assert_eq!(compiled.eval_word(&blocks), nl.eval_block(&blocks));
            assert_eq!(
                compiled.eval_word(&blocks),
                compiled.eval_word_reference(&blocks)
            );
        }
    }

    #[test]
    fn levels_respect_dependencies() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let sched = &compiled.schedule;
        assert!(compiled.level_count() >= 3);
        // Every gate's fan-in wires must be written by an earlier level or
        // be primary inputs.
        let mut written_level = vec![0usize; compiled.wire_count()];
        for (l, level) in sched.levels.windows(2).enumerate() {
            for g in level[0] as usize..level[1] as usize {
                written_level[sched.outs[g] as usize] = l + 1;
            }
        }
        for (l, level) in sched.levels.windows(2).enumerate() {
            for g in level[0] as usize..level[1] as usize {
                for &p in sched.gate_lits(g) {
                    let src = unpack(p).wire.index();
                    assert!(
                        written_level[src] <= l,
                        "gate at level {} reads wire written at level {}",
                        l + 1,
                        written_level[src]
                    );
                }
            }
        }
    }

    #[test]
    fn slot_recycling_shrinks_the_working_set() {
        // The kitchen sink is tiny, so check on a deliberately deep
        // chain: n stages, each reading only the previous one, should
        // need O(1) slots, not O(n).
        let mut nl = Netlist::new();
        let mut cur = Literal::pos(nl.input());
        for i in 0..200 {
            cur = if i % 2 == 0 {
                nl.and([cur, cur.complement()])
            } else {
                nl.or([cur, cur])
            };
        }
        nl.mark_output(cur);
        let compiled = nl.compile();
        compiled.self_check();
        assert!(
            compiled.slot_count() <= 8,
            "deep chain should recycle slots, used {}",
            compiled.slot_count()
        );
        assert_eq!(compiled.wire_count(), 201);
        // Function survives the recycling.
        assert_eq!(compiled.eval_word(&[!0u64])[0], nl.eval_block(&[!0u64])[0]);
    }

    #[test]
    fn eval_matrix_handles_ragged_vector_counts() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        for vectors in [1usize, 63, 64, 65, 127, 130, 257, 300, 530] {
            let m = BitMatrix::from_fn(nl.input_count(), vectors, |row, v| {
                (v.wrapping_mul(2654435761) >> row) & 1 == 1
            });
            let out = compiled.eval_matrix(&m);
            assert_eq!(out.vectors(), vectors);
            for v in 0..vectors {
                assert_eq!(out.column(v), nl.eval(&m.column(v)), "vector {v}");
            }
            // Tail lanes must be masked: popcounts bounded by vectors.
            assert!(out.tail_is_clear());
            for o in 0..out.rows() {
                assert!(out.row_popcount(o) <= vectors);
            }
        }
    }

    #[test]
    fn eval_matrix_threads_matches_inline_at_every_lane_width() {
        let nl = majority3();
        let compiled = nl.compile();
        let m = BitMatrix::from_fn(3, 1000, |row, v| (v >> row) & 1 == 1);
        let inline = compiled.eval_matrix_threads(&m, 1);
        for lanes in [64usize, 256, 512] {
            for threads in [1usize, 2, 3, 7, 16] {
                assert_eq!(
                    compiled.eval_matrix_lanes(&m, lanes, threads),
                    inline,
                    "lanes {lanes} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn eval_matrix_level_threads_matches_lane_split() {
        let nl = kitchen_sink();
        for chips in [1usize, 2, 4, 8] {
            let compiled = nl.compile_partitioned(chips);
            compiled.self_check();
            let m = BitMatrix::from_fn(nl.input_count(), 530, |row, v| {
                (v.wrapping_mul(0x9E37_79B9) >> (row % 31)) & 1 == 1
            });
            let inline = compiled.eval_matrix_threads(&m, 1);
            for threads in [1usize, 2, 4, 8] {
                assert_eq!(
                    compiled.eval_matrix_level_threads(&m, threads),
                    inline,
                    "chips {chips} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn const_only_netlist_evaluates() {
        let mut nl = Netlist::new();
        let t = nl.constant(true);
        let f = nl.constant(false);
        nl.mark_output(t);
        nl.mark_output(f.complement());
        let compiled = nl.compile();
        let out = compiled.eval_matrix(&BitMatrix::zeroed(0, 70));
        assert_eq!(out.row_popcount(0), 70);
        assert_eq!(out.row_popcount(1), 70);
    }

    #[test]
    fn empty_netlist_compiles() {
        let compiled = Netlist::new().compile();
        assert_eq!(compiled.gate_count(), 0);
        assert_eq!(compiled.insn_count(), 0);
        assert_eq!(compiled.level_count(), 1);
        let out = compiled.eval_matrix(&BitMatrix::zeroed(0, 0));
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let mut scratch = compiled.scratch();
        let mut out1 = vec![0u64; compiled.output_count()];
        let mut out2 = vec![0u64; compiled.output_count()];
        let inputs = vec![0xAAAA_AAAA_AAAA_AAAAu64; compiled.input_count()];
        compiled.eval_word_into(&inputs, &mut scratch, &mut out1);
        compiled.eval_word_into(&inputs, &mut scratch, &mut out2);
        assert_eq!(out1, out2);
    }

    #[test]
    fn partition_report_is_consistent() {
        let nl = kitchen_sink();
        for chips in [1usize, 2, 4] {
            let compiled = nl.compile_partitioned(chips);
            let report = compiled.partition_report();
            assert_eq!(report.chips, chips);
            assert_eq!(report.total_gates, compiled.gate_count());
            assert_eq!(
                report.chip_gates.iter().sum::<usize>(),
                compiled.gate_count()
            );
            if chips == 1 {
                // Everything on one chip: nothing is cut, and the only
                // pins are primary I/O.
                assert_eq!(report.cut_wires, 0);
                assert_eq!(report.chip_in_pins[0], compiled.input_count());
            }
            assert!(report.max_gates() >= compiled.gate_count() / chips);
        }
    }

    /// Reference model of a wire fault: re-evaluate the interpreter with
    /// the faulted wire's value overridden at every read.
    fn eval_with_fault(nl: &Netlist, fault: WireFault, bits: &[bool]) -> Vec<bool> {
        // Evaluate healthy wire values in topological order, then replay
        // with the fault applied to every *read* of the wire.
        let mut values = vec![false; nl.wire_count()];
        for (ord, w) in nl.inputs().iter().enumerate() {
            values[w.index()] = bits[ord];
        }
        let read = |values: &[bool], lit: Literal| -> bool {
            let mut v = values[lit.wire.index()];
            if lit.wire == fault.wire {
                v = match fault.kind {
                    WireFaultKind::Stuck0 => false,
                    WireFaultKind::Stuck1 => true,
                    WireFaultKind::Flip => !v,
                };
            }
            v ^ lit.inverted
        };
        for gate in nl.gates() {
            let ins: Vec<bool> = gate.inputs.iter().map(|&l| read(&values, l)).collect();
            values[gate.output.index()] = match gate.kind {
                GateKind::And => ins.iter().all(|&b| b),
                GateKind::Or => ins.iter().any(|&b| b),
                GateKind::Xor => ins.iter().fold(false, |a, b| a ^ b),
                GateKind::Buf => ins[0],
                GateKind::Const(v) => v,
            };
        }
        nl.outputs().iter().map(|&l| read(&values, l)).collect()
    }

    #[test]
    fn single_wire_faults_match_the_reference_model() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let n = nl.input_count();
        for wire in 0..nl.wire_count() as u32 {
            for kind in [
                WireFaultKind::Stuck0,
                WireFaultKind::Stuck1,
                WireFaultKind::Flip,
            ] {
                let fault = WireFault {
                    wire: Wire(wire),
                    kind,
                };
                let faulted = compiled.with_faults(&[fault]);
                for vector in 0..(1usize << n) {
                    let bits: Vec<bool> = (0..n).map(|i| (vector >> i) & 1 == 1).collect();
                    let words: Vec<u64> = bits.iter().map(|&b| if b { !0u64 } else { 0 }).collect();
                    let got: Vec<bool> = faulted
                        .eval_word(&words)
                        .iter()
                        .map(|&w| w & 1 == 1)
                        .collect();
                    assert_eq!(
                        got,
                        eval_with_fault(&nl, fault, &bits),
                        "wire {wire} {kind:?} vector {vector:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn flip_twice_cancels_and_source_is_untouched() {
        let nl = kitchen_sink();
        let compiled = nl.compile();
        let wire = nl.inputs()[1];
        let twice = compiled.with_faults(&[WireFault::flip(wire), WireFault::flip(wire)]);
        let inputs = vec![0xDEAD_BEEF_0123_4567u64, 0x0F0F_0F0F_0F0F_0F0Fu64, 0, !0u64];
        assert_eq!(twice.eval_word(&inputs), compiled.eval_word(&inputs));
        // The healthy engine must not have been mutated by the derivation.
        let once = compiled.with_faults(&[WireFault::flip(wire)]);
        assert_ne!(once.eval_word(&inputs), compiled.eval_word(&inputs));
        assert_eq!(
            compiled.eval_word(&inputs),
            nl.compile().eval_word(&inputs),
            "with_faults mutated its source engine"
        );
    }

    #[test]
    fn input_wire_stuck_forces_every_lane() {
        let nl = majority3();
        let compiled = nl.compile();
        let stuck = compiled.with_faults(&[WireFault::stuck(nl.inputs()[0], true)]);
        assert!(stuck.has_input_forces());
        assert!(!compiled.has_input_forces());
        // majority(1, b, c) = b | c.
        let b = 0b1100u64;
        let c = 0b1010u64;
        assert_eq!(stuck.eval_word(&[0, b, c])[0], b | c);
        // Matrix path applies the same forces.
        let m = BitMatrix::from_fn(3, 100, |row, v| (v >> row) & 1 == 1);
        let out = stuck.eval_matrix(&m);
        for v in 0..100 {
            let col = m.column(v);
            assert_eq!(out.get(0, v), col[1] | col[2], "vector {v}");
        }
    }

    #[test]
    #[should_panic(expected = "missing wire")]
    fn fault_location_is_validated() {
        majority3()
            .compile()
            .with_faults(&[WireFault::stuck(Wire(1000), false)]);
    }
}
