//! Gate kinds and their delay semantics.

use serde::{Deserialize, Serialize};

use crate::wire::{Literal, Wire};

/// The logic function computed by a gate.
///
/// All kinds accept unbounded fan-in, matching the wide ratioed-nMOS
/// NOR/NAND structures the 1987 designs are costed for. Inverters do not
/// appear: complementation lives on [`Literal`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Conjunction of all input literals. Empty AND is `true`.
    And,
    /// Disjunction of all input literals. Empty OR is `false`.
    Or,
    /// Parity of all input literals. Empty XOR is `false`.
    ///
    /// XOR is not used by the concentrator data path (it is not a one-level
    /// structure in nMOS) but is provided for test circuitry; it costs two
    /// levels to reflect its two-plane realization.
    Xor,
    /// Identity. Used to model I/O pad drivers, which the paper counts as
    /// the `O(1)` additive term in every per-chip delay bound.
    Buf,
    /// Constant driver; the `bool` is the driven value. Zero delay.
    Const(bool),
}

impl GateKind {
    /// Gate delay contributed by this gate, in levels.
    ///
    /// One level per AND/OR plane and per pad driver; constants are wiring.
    #[inline]
    pub fn delay(self) -> u32 {
        match self {
            GateKind::And | GateKind::Or | GateKind::Buf => 1,
            GateKind::Xor => 2,
            GateKind::Const(_) => 0,
        }
    }

    /// Evaluate the gate function over an iterator of already-applied input
    /// bit values.
    pub fn eval<I: IntoIterator<Item = bool>>(self, inputs: I) -> bool {
        match self {
            GateKind::And => inputs.into_iter().all(|b| b),
            GateKind::Or => inputs.into_iter().any(|b| b),
            GateKind::Xor => inputs.into_iter().fold(false, |acc, b| acc ^ b),
            GateKind::Buf => {
                let mut it = inputs.into_iter();
                let v = it.next().expect("Buf gate requires exactly one input");
                debug_assert!(it.next().is_none(), "Buf gate requires exactly one input");
                v
            }
            GateKind::Const(v) => v,
        }
    }
}

/// A gate instance: a function applied to input literals, driving one wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Input literals, in builder order.
    pub inputs: Vec<Literal>,
    /// The single wire driven by this gate.
    pub output: Wire,
}

impl Gate {
    /// Fan-in of the gate.
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.inputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_semantics() {
        assert!(GateKind::And.eval([true, true, true]));
        assert!(!GateKind::And.eval([true, false, true]));
        assert!(GateKind::And.eval(std::iter::empty()));
    }

    #[test]
    fn or_semantics() {
        assert!(GateKind::Or.eval([false, true]));
        assert!(!GateKind::Or.eval([false, false]));
        assert!(!GateKind::Or.eval(std::iter::empty()));
    }

    #[test]
    fn xor_semantics() {
        assert!(GateKind::Xor.eval([true, false, false]));
        assert!(!GateKind::Xor.eval([true, true]));
        assert!(GateKind::Xor.eval([true, true, true]));
    }

    #[test]
    fn buf_and_const_semantics() {
        assert!(GateKind::Buf.eval([true]));
        assert!(!GateKind::Buf.eval([false]));
        assert!(GateKind::Const(true).eval(std::iter::empty()));
        assert!(!GateKind::Const(false).eval(std::iter::empty()));
    }

    #[test]
    fn delay_model_matches_technology_assumptions() {
        assert_eq!(GateKind::And.delay(), 1);
        assert_eq!(GateKind::Or.delay(), 1);
        assert_eq!(GateKind::Buf.delay(), 1);
        assert_eq!(GateKind::Xor.delay(), 2);
        assert_eq!(GateKind::Const(false).delay(), 0);
    }
}
