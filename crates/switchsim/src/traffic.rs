//! Synthetic traffic sources.
//!
//! The paper's switches sit in "a parallel supercomputer" whose traffic it
//! never characterizes beyond the load ratio; per the reproduction's
//! substitution rule we synthesize sources that sweep the interesting
//! operating range: independent Bernoulli offers, bursty on/off sources
//! (the two standard stress shapes for concentration stages), skewed
//! hotspot sources (for shard-imbalance stress), and the adversarial
//! all-inputs-fire pattern that pins the switch at its capacity bound.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::message::Message;

/// Ranks of the zipf distribution sampled exactly (inverse CDF over a
/// cumulative table); the remaining tail is sampled by inverting the
/// continuous power-law integral. Keeping the table bounded makes
/// generator construction O(1) in the population size.
const ZIPF_HEAD: u64 = 4096;

/// Per-frame message generation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Each input offers a message independently with probability `p`.
    Bernoulli {
        /// Offer probability per input per frame.
        p: f64,
    },
    /// Two-state on/off sources: an *on* source offers every frame and
    /// falls back off with probability `1/mean_burst`; an *off* source
    /// turns on with probability chosen so the long-run offered load is
    /// `p`. This is the degenerate corner of the trace layer's 2-state
    /// MMPP model (`fabric::trace::TraceModel::Mmpp` with
    /// `rate_on = 1, rate_off = 0` — see `mmpp_from_bursty`); it stays
    /// here as the inline special case, pinned equivalent by test.
    Bursty {
        /// Long-run offered load per input.
        p: f64,
        /// Mean frames per burst.
        mean_burst: f64,
    },
    /// Skewed per-input weights: the first `hot_inputs` inputs offer with
    /// probability `p_hot` per frame, every other input with `p_cold`.
    /// Stresses placement imbalance in sharded serving setups.
    Hotspot {
        /// Offer probability of a hot input.
        p_hot: f64,
        /// Offer probability of every other input.
        p_cold: f64,
        /// How many of the lowest-numbered inputs are hot.
        hot_inputs: usize,
    },
    /// Every input offers a message every frame — the adversarial pattern
    /// that holds the switch at its congestion bound indefinitely.
    Adversarial,
    /// A population of distinct sources (users) with zipf-distributed
    /// activity, hashed onto the switch's input wires. Each frame draws
    /// ~`p·n` active users from the power-law distribution
    /// `P(rank) ∝ rank^-exponent` and maps each onto a wire by
    /// multiplicative hashing; at most one offer per wire survives, so
    /// hot-user collisions fold into a single offer and `p` is an upper
    /// bound on the realized load. Models millions of users funneling
    /// into a concentrator tier without materializing per-user state.
    Zipf {
        /// Target offered load per input per frame (upper bound — wire
        /// collisions between users dedupe).
        p: f64,
        /// Distinct users in the population.
        population: u64,
        /// Zipf exponent (`0` = uniform; larger = more skew).
        exponent: f64,
    },
}

impl TrafficModel {
    /// The long-run offered load per input (expected fraction of
    /// input-frames carrying a fresh message) over `n` inputs.
    pub fn offered_load(&self, n: usize) -> f64 {
        match *self {
            TrafficModel::Bernoulli { p } | TrafficModel::Bursty { p, .. } => p,
            TrafficModel::Hotspot {
                p_hot,
                p_cold,
                hot_inputs,
            } => {
                if n == 0 {
                    return 0.0;
                }
                let hot = hot_inputs.min(n);
                (hot as f64 * p_hot + (n - hot) as f64 * p_cold) / n as f64
            }
            TrafficModel::Adversarial => 1.0,
            TrafficModel::Zipf { p, .. } => p,
        }
    }
}

/// An inverse-CDF sampler for `P(rank) ∝ (rank + 1)^-exponent` over
/// ranks `0..population` (rank 0 is the hottest user). The first
/// `ZIPF_HEAD` (4096) ranks are sampled exactly from a cumulative table; the
/// tail is sampled by inverting the continuous integral of `x^-s`, an
/// approximation that preserves the power-law shape while keeping
/// construction cost independent of the population size.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    population: u64,
    exponent: f64,
    /// Cumulative (unnormalized) weights of ranks `0..head_cdf.len()`.
    head_cdf: Vec<f64>,
    /// Head mass plus the tail integral.
    total: f64,
}

/// `∫ x^-s dx` over `[a, b]`, with the `s = 1` logarithm special case.
fn power_integral(a: f64, b: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        (b / a).ln()
    } else {
        (b.powf(1.0 - s) - a.powf(1.0 - s)) / (1.0 - s)
    }
}

/// Solve `∫ t^-s dt = mass` over `[a, x]` for `x`.
fn power_integral_invert(a: f64, mass: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        a * mass.exp()
    } else {
        ((1.0 - s) * mass + a.powf(1.0 - s)).powf(1.0 / (1.0 - s))
    }
}

impl ZipfSampler {
    /// Build a sampler over `population ≥ 1` users with `exponent ≥ 0`.
    pub fn new(population: u64, exponent: f64) -> Self {
        assert!(population >= 1, "zipf population must be at least 1");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "zipf exponent must be finite and non-negative"
        );
        let head = population.min(ZIPF_HEAD);
        let mut head_cdf = Vec::with_capacity(head as usize);
        let mut acc = 0.0f64;
        for rank in 1..=head {
            acc += (rank as f64).powf(-exponent);
            head_cdf.push(acc);
        }
        // Tail mass of ranks head..population via the midpoint-anchored
        // continuous integral (empty when the head covers everyone).
        let tail = if head < population {
            power_integral(head as f64 + 0.5, population as f64 + 0.5, exponent)
        } else {
            0.0
        };
        ZipfSampler {
            population,
            exponent,
            total: acc + tail,
            head_cdf,
        }
    }

    /// Users in the population.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Draw one user rank in `0..population` (0 = hottest).
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = rng.random::<f64>() * self.total;
        let head_mass = *self.head_cdf.last().expect("population >= 1");
        let head = self.head_cdf.len() as u64;
        if u < head_mass || head == self.population {
            let rank = self.head_cdf.partition_point(|&c| c <= u) as u64;
            return rank.min(head - 1);
        }
        let x = power_integral_invert(head as f64 + 0.5, u - head_mass, self.exponent);
        (x.floor() as u64).clamp(head, self.population - 1)
    }
}

/// SplitMix64 finalizer: the user-rank → input-wire hash. Spreads
/// adjacent ranks (the hottest users) across the wire space. Public so
/// the trace replay layer (`fabric::trace`) maps user-space source ids
/// onto wires with exactly this hash — a trace generated here and one
/// replayed there land the same users on the same wires.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable traffic generator over `n` inputs.
#[derive(Debug)]
pub struct TrafficGenerator {
    model: TrafficModel,
    n: usize,
    payload_bytes: usize,
    rng: StdRng,
    on: Vec<bool>,
    zipf: Option<ZipfSampler>,
    next_id: u64,
}

impl TrafficGenerator {
    /// Create a generator for `n` inputs with fixed-size payloads.
    pub fn new(model: TrafficModel, n: usize, payload_bytes: usize, seed: u64) -> Self {
        let unit = 0.0..=1.0;
        match model {
            TrafficModel::Bernoulli { p } | TrafficModel::Bursty { p, .. } => {
                assert!(unit.contains(&p), "offer probability must be in [0, 1]");
            }
            TrafficModel::Hotspot {
                p_hot,
                p_cold,
                hot_inputs,
            } => {
                assert!(
                    unit.contains(&p_hot) && unit.contains(&p_cold),
                    "offer probabilities must be in [0, 1]"
                );
                assert!(hot_inputs <= n, "hot_inputs {hot_inputs} exceeds n = {n}");
            }
            TrafficModel::Adversarial => {}
            TrafficModel::Zipf { p, .. } => {
                assert!(unit.contains(&p), "offer probability must be in [0, 1]");
            }
        }
        let zipf = match model {
            TrafficModel::Zipf {
                population,
                exponent,
                ..
            } => Some(ZipfSampler::new(population, exponent)),
            _ => None,
        };
        TrafficGenerator {
            model,
            n,
            payload_bytes,
            rng: StdRng::seed_from_u64(seed),
            on: vec![false; n],
            zipf,
            next_id: 0,
        }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Generate the next frame's fresh offers (at most one per input).
    pub fn next_frame(&mut self) -> Vec<Message> {
        if let TrafficModel::Zipf { p, .. } = self.model {
            return self.next_frame_zipf(p);
        }
        let mut offered = Vec::new();
        for source in 0..self.n {
            let offers = match self.model {
                TrafficModel::Bernoulli { p } => self.rng.random_bool(p),
                TrafficModel::Bursty { p, mean_burst } => {
                    let off_rate = 1.0 / mean_burst.max(1.0);
                    // Long-run on-fraction p: on_rate/(on_rate+off_rate)=p.
                    let on_rate = if p >= 1.0 {
                        1.0
                    } else {
                        (off_rate * p / (1.0 - p)).min(1.0)
                    };
                    if self.on[source] {
                        if self.rng.random_bool(off_rate) {
                            self.on[source] = false;
                        }
                    } else if self.rng.random_bool(on_rate) {
                        self.on[source] = true;
                    }
                    self.on[source]
                }
                TrafficModel::Hotspot {
                    p_hot,
                    p_cold,
                    hot_inputs,
                } => {
                    let p = if source < hot_inputs { p_hot } else { p_cold };
                    self.rng.random_bool(p)
                }
                TrafficModel::Adversarial => true,
                TrafficModel::Zipf { .. } => unreachable!("handled by next_frame_zipf"),
            };
            if offers {
                let payload: Vec<u8> = (0..self.payload_bytes).map(|_| self.rng.random()).collect();
                offered.push(Message::new(self.next_id, source, payload));
                self.next_id += 1;
            }
        }
        offered
    }

    /// The zipf-population frame: `n` Bernoulli(`p`) trials each draw an
    /// active user and hash it onto a wire; later draws landing on an
    /// occupied wire are folded away, preserving the at-most-one-offer-
    /// per-input frame invariant.
    fn next_frame_zipf(&mut self, p: f64) -> Vec<Message> {
        let sampler = self.zipf.as_ref().expect("zipf model has a sampler");
        let mut taken = vec![false; self.n];
        let mut offered = Vec::new();
        for _ in 0..self.n {
            if !self.rng.random_bool(p) {
                continue;
            }
            let user = sampler.sample(&mut self.rng);
            let wire = (mix64(user) >> 32) as usize % self.n.max(1);
            if taken[wire] {
                continue;
            }
            taken[wire] = true;
            let payload: Vec<u8> = (0..self.payload_bytes).map(|_| self.rng.random()).collect();
            offered.push(Message::new(self.next_id, wire, payload));
            self.next_id += 1;
        }
        offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_hits_target_load() {
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.3 }, 64, 2, 42);
        let frames = 500;
        let total: usize = (0..frames).map(|_| generator.next_frame().len()).sum();
        let load = total as f64 / (frames * 64) as f64;
        assert!((load - 0.3).abs() < 0.03, "measured load {load}");
    }

    #[test]
    fn bursty_hits_target_load_with_runs() {
        let mut generator = TrafficGenerator::new(
            TrafficModel::Bursty {
                p: 0.4,
                mean_burst: 8.0,
            },
            64,
            2,
            7,
        );
        let frames = 3000;
        let total: usize = (0..frames).map(|_| generator.next_frame().len()).sum();
        let load = total as f64 / (frames * 64) as f64;
        assert!((load - 0.4).abs() < 0.05, "measured load {load}");
    }

    #[test]
    fn ids_are_unique_and_sources_in_range() {
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.9 }, 16, 1, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for msg in generator.next_frame() {
                assert!(msg.source < 16);
                assert!(seen.insert(msg.id), "duplicate id {}", msg.id);
            }
        }
    }

    #[test]
    fn hotspot_hits_skewed_target_load() {
        let model = TrafficModel::Hotspot {
            p_hot: 0.9,
            p_cold: 0.1,
            hot_inputs: 8,
        };
        // 8 hot of 64 inputs: long-run load = (8·0.9 + 56·0.1)/64 = 0.2.
        assert!((model.offered_load(64) - 0.2).abs() < 1e-12);
        let mut generator = TrafficGenerator::new(model, 64, 1, 17);
        let frames = 2000;
        let mut hot_msgs = 0usize;
        let mut total = 0usize;
        for _ in 0..frames {
            for msg in generator.next_frame() {
                total += 1;
                if msg.source < 8 {
                    hot_msgs += 1;
                }
            }
        }
        let load = total as f64 / (frames * 64) as f64;
        assert!((load - 0.2).abs() < 0.02, "measured load {load}");
        // The hot inputs really are skewed: they carry (8·0.9)/12.8 = 56%
        // of the traffic from 12.5% of the inputs.
        let hot_share = hot_msgs as f64 / total as f64;
        assert!((hot_share - 0.5625).abs() < 0.05, "hot share {hot_share}");
    }

    #[test]
    fn adversarial_fires_every_input_every_frame() {
        assert_eq!(TrafficModel::Adversarial.offered_load(16), 1.0);
        let mut generator = TrafficGenerator::new(TrafficModel::Adversarial, 16, 2, 3);
        for _ in 0..20 {
            let frame = generator.next_frame();
            assert_eq!(frame.len(), 16);
            let sources: Vec<usize> = frame.iter().map(|m| m.source).collect();
            assert_eq!(sources, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "hot_inputs")]
    fn hotspot_rejects_more_hot_inputs_than_n() {
        TrafficGenerator::new(
            TrafficModel::Hotspot {
                p_hot: 0.5,
                p_cold: 0.1,
                hot_inputs: 9,
            },
            8,
            1,
            0,
        );
    }

    #[test]
    fn zipf_load_is_bounded_and_skewed() {
        let model = TrafficModel::Zipf {
            p: 0.6,
            population: 1_000_000,
            exponent: 1.2,
        };
        assert!((model.offered_load(64) - 0.6).abs() < 1e-12);
        let mut generator = TrafficGenerator::new(model, 64, 2, 11);
        let mut per_wire = vec![0u64; 64];
        let mut total = 0u64;
        for _ in 0..2000 {
            for msg in generator.next_frame() {
                assert!(msg.source < 64);
                per_wire[msg.source] += 1;
                total += 1;
            }
        }
        let load = total as f64 / (2000 * 64) as f64;
        // p is an upper bound (collisions dedupe) but most offers land.
        assert!(load <= 0.6 + 1e-9, "load {load} exceeds p");
        assert!(load > 0.3, "load {load} implausibly low");
        // Skew: the busiest wire (carrying the hottest hashed users) sees
        // well above the mean per-wire traffic.
        let max = *per_wire.iter().max().unwrap() as f64;
        let mean = total as f64 / 64.0;
        assert!(max > 1.5 * mean, "max {max} vs mean {mean}: no skew");
    }

    #[test]
    fn zipf_sampler_head_ranks_dominate() {
        let sampler = ZipfSampler::new(2_000_000, 1.1);
        let mut rng = StdRng::seed_from_u64(5);
        let draws = 20_000;
        let mut head = 0u64;
        for _ in 0..draws {
            let rank = sampler.sample(&mut rng);
            assert!(rank < 2_000_000);
            if rank < 100 {
                head += 1;
            }
        }
        // For s = 1.1 over 2M users, the top 100 ranks carry a large
        // share of the mass; uniform sampling would give 100/2M ≈ 0.005%.
        let share = head as f64 / draws as f64;
        assert!(share > 0.2, "head share {share} not zipf-skewed");
    }

    #[test]
    fn zipf_exponent_zero_is_near_uniform() {
        let sampler = ZipfSampler::new(10_000, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut below_half = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if sampler.sample(&mut rng) < 5_000 {
                below_half += 1;
            }
        }
        let share = below_half as f64 / draws as f64;
        assert!((share - 0.5).abs() < 0.05, "uniform share {share}");
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zipf_rejects_empty_population() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.5 }, 8, 1, 9);
        let mut b = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.5 }, 8, 1, 9);
        for _ in 0..20 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }
}
