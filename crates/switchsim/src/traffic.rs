//! Synthetic traffic sources.
//!
//! The paper's switches sit in "a parallel supercomputer" whose traffic it
//! never characterizes beyond the load ratio; per the reproduction's
//! substitution rule we synthesize sources that sweep the interesting
//! operating range: independent Bernoulli offers, bursty on/off sources
//! (the two standard stress shapes for concentration stages), skewed
//! hotspot sources (for shard-imbalance stress), and the adversarial
//! all-inputs-fire pattern that pins the switch at its capacity bound.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::message::Message;

/// Per-frame message generation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Each input offers a message independently with probability `p`.
    Bernoulli {
        /// Offer probability per input per frame.
        p: f64,
    },
    /// Two-state on/off sources: an *on* source offers every frame and
    /// falls back off with probability `1/mean_burst`; an *off* source
    /// turns on with probability chosen so the long-run offered load is
    /// `p`.
    Bursty {
        /// Long-run offered load per input.
        p: f64,
        /// Mean frames per burst.
        mean_burst: f64,
    },
    /// Skewed per-input weights: the first `hot_inputs` inputs offer with
    /// probability `p_hot` per frame, every other input with `p_cold`.
    /// Stresses placement imbalance in sharded serving setups.
    Hotspot {
        /// Offer probability of a hot input.
        p_hot: f64,
        /// Offer probability of every other input.
        p_cold: f64,
        /// How many of the lowest-numbered inputs are hot.
        hot_inputs: usize,
    },
    /// Every input offers a message every frame — the adversarial pattern
    /// that holds the switch at its congestion bound indefinitely.
    Adversarial,
}

impl TrafficModel {
    /// The long-run offered load per input (expected fraction of
    /// input-frames carrying a fresh message) over `n` inputs.
    pub fn offered_load(&self, n: usize) -> f64 {
        match *self {
            TrafficModel::Bernoulli { p } | TrafficModel::Bursty { p, .. } => p,
            TrafficModel::Hotspot {
                p_hot,
                p_cold,
                hot_inputs,
            } => {
                if n == 0 {
                    return 0.0;
                }
                let hot = hot_inputs.min(n);
                (hot as f64 * p_hot + (n - hot) as f64 * p_cold) / n as f64
            }
            TrafficModel::Adversarial => 1.0,
        }
    }
}

/// A deterministic, seedable traffic generator over `n` inputs.
#[derive(Debug)]
pub struct TrafficGenerator {
    model: TrafficModel,
    n: usize,
    payload_bytes: usize,
    rng: StdRng,
    on: Vec<bool>,
    next_id: u64,
}

impl TrafficGenerator {
    /// Create a generator for `n` inputs with fixed-size payloads.
    pub fn new(model: TrafficModel, n: usize, payload_bytes: usize, seed: u64) -> Self {
        let unit = 0.0..=1.0;
        match model {
            TrafficModel::Bernoulli { p } | TrafficModel::Bursty { p, .. } => {
                assert!(unit.contains(&p), "offer probability must be in [0, 1]");
            }
            TrafficModel::Hotspot {
                p_hot,
                p_cold,
                hot_inputs,
            } => {
                assert!(
                    unit.contains(&p_hot) && unit.contains(&p_cold),
                    "offer probabilities must be in [0, 1]"
                );
                assert!(hot_inputs <= n, "hot_inputs {hot_inputs} exceeds n = {n}");
            }
            TrafficModel::Adversarial => {}
        }
        TrafficGenerator {
            model,
            n,
            payload_bytes,
            rng: StdRng::seed_from_u64(seed),
            on: vec![false; n],
            next_id: 0,
        }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Generate the next frame's fresh offers (at most one per input).
    pub fn next_frame(&mut self) -> Vec<Message> {
        let mut offered = Vec::new();
        for source in 0..self.n {
            let offers = match self.model {
                TrafficModel::Bernoulli { p } => self.rng.random_bool(p),
                TrafficModel::Bursty { p, mean_burst } => {
                    let off_rate = 1.0 / mean_burst.max(1.0);
                    // Long-run on-fraction p: on_rate/(on_rate+off_rate)=p.
                    let on_rate = if p >= 1.0 {
                        1.0
                    } else {
                        (off_rate * p / (1.0 - p)).min(1.0)
                    };
                    if self.on[source] {
                        if self.rng.random_bool(off_rate) {
                            self.on[source] = false;
                        }
                    } else if self.rng.random_bool(on_rate) {
                        self.on[source] = true;
                    }
                    self.on[source]
                }
                TrafficModel::Hotspot {
                    p_hot,
                    p_cold,
                    hot_inputs,
                } => {
                    let p = if source < hot_inputs { p_hot } else { p_cold };
                    self.rng.random_bool(p)
                }
                TrafficModel::Adversarial => true,
            };
            if offers {
                let payload: Vec<u8> = (0..self.payload_bytes).map(|_| self.rng.random()).collect();
                offered.push(Message::new(self.next_id, source, payload));
                self.next_id += 1;
            }
        }
        offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_hits_target_load() {
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.3 }, 64, 2, 42);
        let frames = 500;
        let total: usize = (0..frames).map(|_| generator.next_frame().len()).sum();
        let load = total as f64 / (frames * 64) as f64;
        assert!((load - 0.3).abs() < 0.03, "measured load {load}");
    }

    #[test]
    fn bursty_hits_target_load_with_runs() {
        let mut generator = TrafficGenerator::new(
            TrafficModel::Bursty {
                p: 0.4,
                mean_burst: 8.0,
            },
            64,
            2,
            7,
        );
        let frames = 3000;
        let total: usize = (0..frames).map(|_| generator.next_frame().len()).sum();
        let load = total as f64 / (frames * 64) as f64;
        assert!((load - 0.4).abs() < 0.05, "measured load {load}");
    }

    #[test]
    fn ids_are_unique_and_sources_in_range() {
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.9 }, 16, 1, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for msg in generator.next_frame() {
                assert!(msg.source < 16);
                assert!(seen.insert(msg.id), "duplicate id {}", msg.id);
            }
        }
    }

    #[test]
    fn hotspot_hits_skewed_target_load() {
        let model = TrafficModel::Hotspot {
            p_hot: 0.9,
            p_cold: 0.1,
            hot_inputs: 8,
        };
        // 8 hot of 64 inputs: long-run load = (8·0.9 + 56·0.1)/64 = 0.2.
        assert!((model.offered_load(64) - 0.2).abs() < 1e-12);
        let mut generator = TrafficGenerator::new(model, 64, 1, 17);
        let frames = 2000;
        let mut hot_msgs = 0usize;
        let mut total = 0usize;
        for _ in 0..frames {
            for msg in generator.next_frame() {
                total += 1;
                if msg.source < 8 {
                    hot_msgs += 1;
                }
            }
        }
        let load = total as f64 / (frames * 64) as f64;
        assert!((load - 0.2).abs() < 0.02, "measured load {load}");
        // The hot inputs really are skewed: they carry (8·0.9)/12.8 = 56%
        // of the traffic from 12.5% of the inputs.
        let hot_share = hot_msgs as f64 / total as f64;
        assert!((hot_share - 0.5625).abs() < 0.05, "hot share {hot_share}");
    }

    #[test]
    fn adversarial_fires_every_input_every_frame() {
        assert_eq!(TrafficModel::Adversarial.offered_load(16), 1.0);
        let mut generator = TrafficGenerator::new(TrafficModel::Adversarial, 16, 2, 3);
        for _ in 0..20 {
            let frame = generator.next_frame();
            assert_eq!(frame.len(), 16);
            let sources: Vec<usize> = frame.iter().map(|m| m.source).collect();
            assert_eq!(sources, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "hot_inputs")]
    fn hotspot_rejects_more_hot_inputs_than_n() {
        TrafficGenerator::new(
            TrafficModel::Hotspot {
                p_hot: 0.5,
                p_cold: 0.1,
                hot_inputs: 9,
            },
            8,
            1,
            0,
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.5 }, 8, 1, 9);
        let mut b = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.5 }, 8, 1, 9);
        for _ in 0..20 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }
}
