//! Synthetic traffic sources.
//!
//! The paper's switches sit in "a parallel supercomputer" whose traffic it
//! never characterizes beyond the load ratio; per the reproduction's
//! substitution rule we synthesize sources that sweep the interesting
//! operating range: independent Bernoulli offers and bursty on/off sources
//! (the two standard stress shapes for concentration stages).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::message::Message;

/// Per-frame message generation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Each input offers a message independently with probability `p`.
    Bernoulli {
        /// Offer probability per input per frame.
        p: f64,
    },
    /// Two-state on/off sources: an *on* source offers every frame and
    /// falls back off with probability `1/mean_burst`; an *off* source
    /// turns on with probability chosen so the long-run offered load is
    /// `p`.
    Bursty {
        /// Long-run offered load per input.
        p: f64,
        /// Mean frames per burst.
        mean_burst: f64,
    },
}

/// A deterministic, seedable traffic generator over `n` inputs.
#[derive(Debug)]
pub struct TrafficGenerator {
    model: TrafficModel,
    n: usize,
    payload_bytes: usize,
    rng: StdRng,
    on: Vec<bool>,
    next_id: u64,
}

impl TrafficGenerator {
    /// Create a generator for `n` inputs with fixed-size payloads.
    pub fn new(model: TrafficModel, n: usize, payload_bytes: usize, seed: u64) -> Self {
        let (TrafficModel::Bernoulli { p } | TrafficModel::Bursty { p, .. }) = model;
        assert!(
            (0.0..=1.0).contains(&p),
            "offer probability must be in [0, 1]"
        );
        TrafficGenerator {
            model,
            n,
            payload_bytes,
            rng: StdRng::seed_from_u64(seed),
            on: vec![false; n],
            next_id: 0,
        }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Generate the next frame's fresh offers (at most one per input).
    pub fn next_frame(&mut self) -> Vec<Message> {
        let mut offered = Vec::new();
        for source in 0..self.n {
            let offers = match self.model {
                TrafficModel::Bernoulli { p } => self.rng.random_bool(p),
                TrafficModel::Bursty { p, mean_burst } => {
                    let off_rate = 1.0 / mean_burst.max(1.0);
                    // Long-run on-fraction p: on_rate/(on_rate+off_rate)=p.
                    let on_rate = if p >= 1.0 {
                        1.0
                    } else {
                        (off_rate * p / (1.0 - p)).min(1.0)
                    };
                    if self.on[source] {
                        if self.rng.random_bool(off_rate) {
                            self.on[source] = false;
                        }
                    } else if self.rng.random_bool(on_rate) {
                        self.on[source] = true;
                    }
                    self.on[source]
                }
            };
            if offers {
                let payload: Vec<u8> = (0..self.payload_bytes).map(|_| self.rng.random()).collect();
                offered.push(Message::new(self.next_id, source, payload));
                self.next_id += 1;
            }
        }
        offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_hits_target_load() {
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.3 }, 64, 2, 42);
        let frames = 500;
        let total: usize = (0..frames).map(|_| generator.next_frame().len()).sum();
        let load = total as f64 / (frames * 64) as f64;
        assert!((load - 0.3).abs() < 0.03, "measured load {load}");
    }

    #[test]
    fn bursty_hits_target_load_with_runs() {
        let mut generator = TrafficGenerator::new(
            TrafficModel::Bursty {
                p: 0.4,
                mean_burst: 8.0,
            },
            64,
            2,
            7,
        );
        let frames = 3000;
        let total: usize = (0..frames).map(|_| generator.next_frame().len()).sum();
        let load = total as f64 / (frames * 64) as f64;
        assert!((load - 0.4).abs() < 0.05, "measured load {load}");
    }

    #[test]
    fn ids_are_unique_and_sources_in_range() {
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.9 }, 16, 1, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for msg in generator.next_frame() {
                assert!(msg.source < 16);
                assert!(seen.insert(msg.id), "duplicate id {}", msg.id);
            }
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.5 }, 8, 1, 9);
        let mut b = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.5 }, 8, 1, 9);
        for _ in 0..20 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }
}
