//! Multistage concentration: trees of concentrator switches, the routing-
//! network setting §1 places the switches in ("the switches that route
//! these messages" in a parallel computing system).
//!
//! Because every switch in this library is combinational, a whole cascade
//! still routes within a single frame: level-0 groups of processors feed
//! concentrators whose outputs concatenate into the next level's inputs,
//! down to the root's resource ports. This module composes arbitrary
//! [`ConcentratorSwitch`]es into such a cascade, itself a
//! `ConcentratorSwitch`, so all the frame/congestion machinery applies
//! unchanged.

use concentrator::spec::{ConcentratorKind, ConcentratorSwitch, Routing};
use concentrator::StagedSwitch;
use netlist::BitMatrix;

/// A cascade of concentrator levels. Level `ℓ`'s switches partition the
/// concatenated outputs of level `ℓ−1` (level 0 partitions the network
/// inputs), in order.
pub struct MultistageNetwork {
    levels: Vec<Vec<Box<dyn ConcentratorSwitch + Send + Sync>>>,
    n: usize,
    m: usize,
}

impl MultistageNetwork {
    /// Build a cascade from per-level switch lists.
    ///
    /// # Panics
    /// If any level's total input count does not match the previous
    /// level's total output count, or the cascade is empty.
    pub fn new(levels: Vec<Vec<Box<dyn ConcentratorSwitch + Send + Sync>>>) -> Self {
        assert!(!levels.is_empty(), "cascade needs at least one level");
        assert!(levels.iter().all(|l| !l.is_empty()), "levels need switches");
        let n = levels[0].iter().map(|s| s.inputs()).sum();
        let mut carry: usize = n;
        for (idx, level) in levels.iter().enumerate() {
            let ins: usize = level.iter().map(|s| s.inputs()).sum();
            assert_eq!(
                ins, carry,
                "level {idx} consumes {ins} wires but {carry} arrive"
            );
            carry = level.iter().map(|s| s.outputs()).sum();
        }
        MultistageNetwork {
            n,
            m: carry,
            levels,
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total switches across all levels.
    pub fn switch_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Wires entering each level (diagnostic).
    pub fn level_widths(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|level| level.iter().map(|s| s.inputs()).sum())
            .collect()
    }
}

impl ConcentratorSwitch for MultistageNetwork {
    fn inputs(&self) -> usize {
        self.n
    }

    fn outputs(&self) -> usize {
        self.m
    }

    fn kind(&self) -> ConcentratorKind {
        // No closed-form end-to-end guarantee: a single over-subscribed
        // group can lose messages below global capacity, so the cascade
        // promises nothing and the simulator measures actual delivery.
        ConcentratorKind::Partial { alpha: 0.0 }
    }

    fn route(&self, valid: &[bool]) -> Routing {
        assert_eq!(valid.len(), self.n);
        // (valid, original input) per wire between levels.
        let mut wires: Vec<(bool, Option<usize>)> = valid
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, v.then_some(i)))
            .collect();
        for level in &self.levels {
            let mut next: Vec<(bool, Option<usize>)> = Vec::new();
            let mut cursor = 0usize;
            for switch in level {
                let group = &wires[cursor..cursor + switch.inputs()];
                cursor += switch.inputs();
                let group_valid: Vec<bool> = group.iter().map(|&(v, _)| v).collect();
                let routing = switch.route(&group_valid);
                let base = next.len();
                next.resize(base + switch.outputs(), (false, None));
                for (local_in, slot) in routing.assignment.iter().enumerate() {
                    if let Some(local_out) = slot {
                        next[base + local_out] = group[local_in];
                    }
                }
            }
            wires = next;
        }
        let mut assignment = vec![None; self.n];
        for (out, &(v, source)) in wires.iter().enumerate() {
            if v {
                if let Some(src) = source {
                    assignment[src] = Some(out);
                }
            }
        }
        Routing::from_assignment(assignment, self.m)
    }
}

/// A cascade of [`StagedSwitch`] levels evaluated entirely at the gate
/// level through each switch's cached compiled control netlist.
///
/// Where [`MultistageNetwork`] routes one valid-bit pattern at a time
/// through routing tables, this cascade pushes up to 64 setup patterns per
/// sweep through every switch's [`netlist::CompiledNetlist`]. Each switch
/// compiles once — on first use, into its shared elaboration cache — and
/// the compiled form is reused across levels, lanes, and calls.
pub struct CompiledCascade {
    levels: Vec<Vec<StagedSwitch>>,
    n: usize,
    m: usize,
}

impl CompiledCascade {
    /// Build a cascade from per-level switch lists, with the same wiring
    /// validation as [`MultistageNetwork::new`].
    pub fn new(levels: Vec<Vec<StagedSwitch>>) -> Self {
        assert!(!levels.is_empty(), "cascade needs at least one level");
        assert!(levels.iter().all(|l| !l.is_empty()), "levels need switches");
        let n = levels[0].iter().map(|s| s.n).sum();
        let mut carry: usize = n;
        for (idx, level) in levels.iter().enumerate() {
            let ins: usize = level.iter().map(|s| s.n).sum();
            assert_eq!(
                ins, carry,
                "level {idx} consumes {ins} wires but {carry} arrive"
            );
            carry = level.iter().map(|s| s.m).sum();
        }
        CompiledCascade {
            n,
            m: carry,
            levels,
        }
    }

    /// Network inputs.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Root resource ports.
    pub fn outputs(&self) -> usize {
        self.m
    }

    /// Propagate a batch of setup patterns (one per lane) through every
    /// level's compiled netlists, returning the valid bits arriving at the
    /// root ports — which output wires carry messages for each pattern.
    pub fn deliver_matrix(&self, patterns: &BitMatrix) -> BitMatrix {
        assert_eq!(patterns.rows(), self.n, "pattern rows must match inputs");
        let lanes = patterns.vectors();
        let words = patterns.words_per_row();
        let mut wires = patterns.clone();
        for level in &self.levels {
            let width: usize = level.iter().map(|s| s.m).sum();
            let mut next = BitMatrix::zeroed(width, lanes);
            let mut in_cursor = 0usize;
            let mut out_cursor = 0usize;
            for switch in level {
                let mut group = BitMatrix::zeroed(switch.n, lanes);
                for row in 0..switch.n {
                    for w in 0..words {
                        *group.word_mut(row, w) = wires.word(in_cursor + row, w);
                    }
                }
                let out = switch.control_logic(false).compiled.eval_matrix(&group);
                for row in 0..switch.m {
                    for w in 0..words {
                        *next.word_mut(out_cursor + row, w) = out.word(row, w);
                    }
                }
                in_cursor += switch.n;
                out_cursor += switch.m;
            }
            wires = next;
        }
        wires
    }

    /// Single-pattern convenience over [`CompiledCascade::deliver_matrix`].
    pub fn deliver(&self, valid: &[bool]) -> Vec<bool> {
        let patterns = BitMatrix::from_fn(self.n, 1, |row, _| valid[row]);
        self.deliver_matrix(&patterns).column(0)
    }
}

/// Convenience constructor: a regular tree where every level splits its
/// wires into groups of `group_in` feeding identical `group_in → group_out`
/// switches, built by `make_switch`, until at most `group_in` wires remain
/// (a final root switch concentrates those onto `root_out` ports).
pub fn regular_tree<F>(
    n: usize,
    group_in: usize,
    group_out: usize,
    root_out: usize,
    make_switch: F,
) -> MultistageNetwork
where
    F: Fn(usize, usize) -> Box<dyn ConcentratorSwitch + Send + Sync>,
{
    assert!(group_out < group_in, "levels must concentrate");
    assert!(n.is_multiple_of(group_in), "n must split into whole groups");
    let mut levels: Vec<Vec<Box<dyn ConcentratorSwitch + Send + Sync>>> = Vec::new();
    let mut width = n;
    while width > group_in {
        assert!(
            width.is_multiple_of(group_in),
            "level width {width} does not split into groups of {group_in}"
        );
        let groups = width / group_in;
        levels.push(
            (0..groups)
                .map(|_| make_switch(group_in, group_out))
                .collect(),
        );
        width = groups * group_out;
    }
    levels.push(vec![make_switch(width, root_out.min(width))]);
    MultistageNetwork::new(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::simulate_frame;
    use crate::message::Message;
    use concentrator::{ColumnsortSwitch, Hyperconcentrator};

    fn hyper_tree() -> MultistageNetwork {
        // 64 inputs, groups of 16 concentrated onto 8 wires per level
        // (Columnsort 8x2 partial switches), 8 root ports:
        // 64 -> 32 -> 16 -> 8.
        regular_tree(64, 16, 8, 8, |ins, outs| {
            debug_assert_eq!(ins, 16);
            Box::new(ColumnsortSwitch::new(8, 2, outs))
        })
    }

    #[test]
    fn widths_and_counts() {
        let net = hyper_tree();
        assert_eq!(net.inputs(), 64);
        assert_eq!(net.outputs(), 8);
        assert_eq!(net.depth(), 3);
        assert_eq!(net.switch_count(), 7);
        assert_eq!(net.level_widths(), vec![64, 32, 16]);
    }

    #[test]
    fn light_load_routes_everything_end_to_end() {
        let net = hyper_tree();
        // 6 messages spread across groups: well under every group's
        // capacity (15 per leaf, 8 at root... root m=8 with eps 9 -> cap 0;
        // but actual routing still succeeds for spread-out traffic).
        let mut valid = vec![false; 64];
        for i in [1usize, 18, 30, 40, 52, 63] {
            valid[i] = true;
        }
        let routing = net.route(&valid);
        assert_eq!(routing.routed(), 6);
    }

    #[test]
    fn overload_is_bounded_by_root_ports() {
        let net = hyper_tree();
        let valid = vec![true; 64];
        let routing = net.route(&valid);
        assert!(routing.routed() <= net.outputs());
        assert!(routing.routed() > 0);
    }

    #[test]
    fn frames_flow_through_the_cascade() {
        let net = hyper_tree();
        let offered: Vec<Message> = [2usize, 21, 37, 55]
            .iter()
            .enumerate()
            .map(|(i, &src)| Message::new(i as u64, src, vec![0xA0 | i as u8]))
            .collect();
        let outcome = simulate_frame(&net, &offered);
        assert_eq!(outcome.delivered.len(), 4);
        assert!(outcome.payloads_intact(&offered));
    }

    #[test]
    fn single_level_tree_equals_its_switch() {
        let inner = Hyperconcentrator::new(16);
        let net = MultistageNetwork::new(vec![vec![Box::new(Hyperconcentrator::new(16))]]);
        for pattern in [0u64, 0xF0F0, 0xFFFF, 0x8421] {
            let valid: Vec<bool> = (0..16).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(
                net.route(&valid),
                inner.route(&valid),
                "pattern {pattern:#x}"
            );
        }
    }

    fn compiled_hyper_tree() -> CompiledCascade {
        CompiledCascade::new(
            (0..3)
                .map(|level| {
                    let groups = [4usize, 2, 1][level];
                    (0..groups)
                        .map(|_| ColumnsortSwitch::new(8, 2, 8).staged().clone())
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn compiled_cascade_matches_routed_network() {
        let net = hyper_tree();
        let cascade = compiled_hyper_tree();
        assert_eq!(cascade.inputs(), net.inputs());
        assert_eq!(cascade.outputs(), net.outputs());
        let mut state = 0xCA5CADEu64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid: Vec<bool> = (0..64).map(|i| state >> i & 1 == 1).collect();
            let routing = net.route(&valid);
            let expected: Vec<bool> = routing.output_source.iter().map(|s| s.is_some()).collect();
            assert_eq!(cascade.deliver(&valid), expected, "state {state:#x}");
        }
    }

    #[test]
    fn compiled_cascade_batches_lanes() {
        let cascade = compiled_hyper_tree();
        let mut state = 7u64;
        let patterns: Vec<Vec<bool>> = (0..100)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (0..64).map(|i| state >> i & 1 == 1).collect()
            })
            .collect();
        let batch = BitMatrix::from_fn(64, patterns.len(), |row, v| patterns[v][row]);
        let delivered = cascade.deliver_matrix(&batch);
        for (v, pattern) in patterns.iter().enumerate() {
            assert_eq!(delivered.column(v), cascade.deliver(pattern), "lane {v}");
        }
    }

    #[test]
    #[should_panic(expected = "consumes")]
    fn mismatched_levels_rejected() {
        MultistageNetwork::new(vec![
            vec![Box::new(Hyperconcentrator::new(16))],
            vec![Box::new(Hyperconcentrator::new(8))],
        ]);
    }
}
