//! VCD (Value Change Dump) export of bit-serial frames.
//!
//! The simulator's cycle-by-cycle wire activity, in the standard waveform
//! format every EDA viewer reads (GTKWave etc.): the setup cycle's valid
//! bits followed by the payload cycles on every input and output wire of
//! a switch. This is the artifact a 1987 chip designer would have put on
//! a logic analyzer.

use std::fmt::Write as _;

use concentrator::spec::ConcentratorSwitch;

use crate::message::Message;

/// One recorded signal: name and per-cycle values (index 0 = setup).
#[derive(Debug, Clone)]
struct Track {
    name: String,
    values: Vec<bool>,
}

/// A VCD document under construction.
#[derive(Debug, Default)]
pub struct VcdBuilder {
    tracks: Vec<Track>,
    cycles: usize,
}

impl VcdBuilder {
    /// Start an empty dump.
    pub fn new() -> Self {
        VcdBuilder::default()
    }

    /// Add a signal with one value per cycle.
    ///
    /// # Panics
    /// If the track length disagrees with previously added tracks.
    pub fn track(&mut self, name: impl Into<String>, values: Vec<bool>) -> &mut Self {
        if self.tracks.is_empty() {
            self.cycles = values.len();
        } else {
            assert_eq!(values.len(), self.cycles, "track length mismatch");
        }
        self.tracks.push(Track {
            name: name.into(),
            values,
        });
        self
    }

    /// Render the VCD text (timescale 1 cycle = 1 ns nominal).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$date reproduction run $end\n");
        out.push_str("$version multichip-concentrators switchsim $end\n");
        out.push_str("$timescale 1ns $end\n");
        out.push_str("$scope module switch $end\n");
        for (i, track) in self.tracks.iter().enumerate() {
            writeln!(out, "$var wire 1 {} {} $end", ident(i), track.name).unwrap();
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last: Vec<Option<bool>> = vec![None; self.tracks.len()];
        for cycle in 0..self.cycles {
            writeln!(out, "#{cycle}").unwrap();
            for (i, track) in self.tracks.iter().enumerate() {
                let v = track.values[cycle];
                if last[i] != Some(v) {
                    writeln!(out, "{}{}", u8::from(v), ident(i)).unwrap();
                    last[i] = Some(v);
                }
            }
        }
        writeln!(out, "#{}", self.cycles).unwrap();
        out
    }
}

/// Short VCD identifier for track `i` (printable ASCII 33..=126).
fn ident(i: usize) -> String {
    let mut i = i;
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// Dump one frame through a switch as VCD: every input wire's bit stream
/// (valid bit at cycle 0, payload after) and every output wire's.
pub fn frame_vcd<S: ConcentratorSwitch + ?Sized>(switch: &S, offered: &[Message]) -> String {
    let n = switch.inputs();
    let m = switch.outputs();
    let outcome = crate::frame::simulate_frame(switch, offered);
    let cycles = 1 + offered.iter().map(Message::bit_len).max().unwrap_or(0);

    let mut builder = VcdBuilder::new();
    for input in 0..n {
        let msg = offered.iter().find(|msg| msg.source == input);
        let mut bits = Vec::with_capacity(cycles);
        bits.push(msg.is_some()); // valid bit at setup
        for cycle in 0..cycles - 1 {
            bits.push(msg.is_some_and(|msg| cycle < msg.bit_len() && msg.bit(cycle)));
        }
        builder.track(format!("X{input}"), bits);
    }
    for output in 0..m {
        let source = outcome.routing.output_source[output];
        let msg = source.and_then(|src| offered.iter().find(|msg| msg.source == src));
        let mut bits = Vec::with_capacity(cycles);
        bits.push(msg.is_some());
        for cycle in 0..cycles - 1 {
            bits.push(msg.is_some_and(|msg| cycle < msg.bit_len() && msg.bit(cycle)));
        }
        builder.track(format!("Y{output}"), bits);
    }
    builder.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use concentrator::Hyperconcentrator;

    #[test]
    fn vcd_structure_is_well_formed() {
        let switch = Hyperconcentrator::new(4);
        let offered = vec![Message::new(1, 2, vec![0xA5u8])];
        let vcd = frame_vcd(&switch, &offered);
        assert!(vcd.contains("$enddefinitions $end"));
        // 4 inputs + 4 outputs declared.
        assert_eq!(vcd.matches("$var wire 1 ").count(), 8);
        // Timesteps 0..=9 (setup + 8 payload cycles + final marker).
        assert!(vcd.contains("#0\n"));
        assert!(vcd.contains("#9\n"));
    }

    #[test]
    fn vcd_reflects_the_routing() {
        let switch = Hyperconcentrator::new(4);
        let offered = vec![Message::new(1, 3, vec![0xFFu8])];
        let vcd = frame_vcd(&switch, &offered);
        // Input X3 and output Y0 carry the message; their setup values at
        // #0 must be 1 while X0..X2 are 0.
        let after_t0: &str = vcd
            .split("#0\n")
            .nth(1)
            .unwrap()
            .split("#1\n")
            .next()
            .unwrap();
        // Track idents: inputs 0..3 are !,",#,$ and outputs 4..7 are %,&,',(.
        assert!(after_t0.contains("0!"), "X0 idle at setup");
        assert!(after_t0.contains("1$"), "X3 valid at setup");
        assert!(after_t0.contains("1%"), "Y0 carries the message");
        assert!(after_t0.contains("0&"), "Y1 idle");
    }

    #[test]
    fn only_changes_are_emitted() {
        let mut b = VcdBuilder::new();
        b.track("constant_high", vec![true; 5]);
        let vcd = b.render();
        // One initial change, no repeats.
        assert_eq!(vcd.matches("1!").count(), 1);
    }

    #[test]
    fn identifiers_stay_printable_and_unique() {
        let ids: Vec<String> = (0..300).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_tracks_are_rejected() {
        let mut b = VcdBuilder::new();
        b.track("a", vec![true, false]);
        b.track("b", vec![true]);
    }
}
