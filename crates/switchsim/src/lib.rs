//! Clocked bit-serial message routing through concentrator switches.
//!
//! §2 of the paper fixes the message format the switches route: "each
//! message is formed by a stream of bits arriving at a wire at the rate of
//! one bit per clock cycle. The first bit of each message that arrives at
//! an input wire is the valid bit … The valid bits all arrive at the input
//! wires of a switch during the same clock cycle, which we call *setup* …
//! Message bits entering through input wires at cycles after setup follow
//! the electrical paths in the switch that are established during setup."
//!
//! This crate simulates exactly that discipline:
//!
//! * [`message`] — bit-serial messages (valid bit + payload);
//! * [`frame`] — one routing frame: setup, then payload cycles along the
//!   frozen paths;
//! * [`congestion`] — what happens to unsuccessfully routed messages:
//!   "to buffer them, to misroute them, or to simply drop them and rely on
//!   a higher-level acknowledgment protocol" (§1);
//! * [`traffic`] — synthetic workload generators (the paper's parallel-
//!   supercomputer sources, which we must synthesize);
//! * [`network`] — an end-to-end concentration stage with statistics.

pub mod analytic;
pub mod congestion;
pub mod deflection;
pub mod fairness;
pub mod frame;
pub mod message;
pub mod multistage;
pub mod network;
pub mod stats;
pub mod traffic;
pub mod vcd;

pub use analytic::{binomial_pmf, measure_delivery_curve, predict_drop, DropModelPrediction};
pub use congestion::CongestionPolicy;
pub use deflection::{DeflectionStage, DeflectionStats};
pub use fairness::{measure_fairness, FairnessReport, RotatingSwitch};
pub use frame::{simulate_frame, FrameEngine, FrameOutcome};
pub use message::Message;
pub use multistage::{regular_tree, CompiledCascade, MultistageNetwork};
pub use network::{ConcentrationStage, SimulationReport};
pub use stats::Stats;
pub use traffic::{mix64, TrafficModel, ZipfSampler};
pub use vcd::{frame_vcd, VcdBuilder};
