//! One routing frame: setup cycle plus payload cycles.
//!
//! Two implementations of the same frame discipline live here:
//! [`simulate_frame`] moves one bit per wire per cycle through the
//! switch's routing table, while [`FrameEngine`] pushes the payload
//! through the switch's *gate-level datapath netlist* with the compiled
//! batch evaluator — 64 clock cycles per sweep, since the paths frozen at
//! setup make every payload cycle the same circuit evaluation with
//! different data-rail bits.

use std::sync::Arc;

use concentrator::spec::{ConcentratorSwitch, Routing};
use concentrator::{Elaboration, StagedSwitch};
use netlist::{EvalScratch, WORD_BITS};

use crate::message::Message;

/// What happened to the offered messages in one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameOutcome {
    /// The established paths.
    pub routing: Routing,
    /// Messages delivered, with the output wire each arrived on. Payloads
    /// are reassembled from the cycle-by-cycle wire bits, so any routing
    /// inconsistency would corrupt them.
    pub delivered: Vec<(usize, Message)>,
    /// Messages that were valid at setup but got no path (congestion).
    pub unrouted: Vec<Message>,
}

/// Simulate one frame of bit-serial transmission through `switch`.
///
/// `offered` holds at most one message per input wire. The setup cycle
/// presents the valid bits; every subsequent cycle moves one payload bit of
/// every routed message along its frozen path; the receiver reassembles
/// payloads from the arriving bits.
///
/// # Panics
/// If two messages claim the same input wire or a source is out of range.
pub fn simulate_frame<S: ConcentratorSwitch + ?Sized>(
    switch: &S,
    offered: &[Message],
) -> FrameOutcome {
    let n = switch.inputs();
    let mut by_input: Vec<Option<&Message>> = vec![None; n];
    for msg in offered {
        assert!(msg.source < n, "message source {} out of range", msg.source);
        assert!(
            by_input[msg.source].is_none(),
            "two messages offered on input {}",
            msg.source
        );
        by_input[msg.source] = Some(msg);
    }

    // Setup cycle: valid bits establish the paths.
    let valid: Vec<bool> = by_input.iter().map(|m| m.is_some()).collect();
    let routing = switch.route(&valid);

    // Payload cycles: all frames carry the longest payload (shorter ones
    // idle-low afterwards, harmless for reassembly since lengths are known
    // to the receiver in this model).
    let cycles = offered.iter().map(Message::bit_len).max().unwrap_or(0);
    let m = switch.outputs();
    let mut received_bits: Vec<Vec<bool>> = vec![Vec::with_capacity(cycles); m];
    for cycle in 0..cycles {
        // One bit per input wire this cycle.
        for (out, src) in routing.output_source.iter().enumerate() {
            if let Some(src) = src {
                let msg = by_input[*src].expect("routing only routes valid inputs");
                let bit = if cycle < msg.bit_len() {
                    msg.bit(cycle)
                } else {
                    false
                };
                received_bits[out].push(bit);
            }
        }
    }

    // Reassemble deliveries.
    let mut delivered = Vec::new();
    for (out, src) in routing.output_source.iter().enumerate() {
        if let Some(src) = src {
            let original = by_input[*src].expect("routed inputs carry messages");
            let bits = &received_bits[out][..original.bit_len()];
            let payload = Message::payload_from_bits(bits);
            delivered.push((
                out,
                Message {
                    id: original.id,
                    source: original.source,
                    payload,
                },
            ));
        }
    }

    let unrouted = routing
        .unrouted_inputs(&valid)
        .map(|input| by_input[input].expect("unrouted inputs were valid").clone())
        .collect();

    FrameOutcome {
        routing,
        delivered,
        unrouted,
    }
}

/// A reusable gate-level frame simulator for one [`StagedSwitch`].
///
/// Setup still runs the router (it supplies message identity for
/// reassembly), but every payload bit is transported by evaluating the
/// switch's compiled datapath netlist: the valid rail holds the frozen
/// setup pattern while the data rail carries payload bits, 64 cycles per
/// lane-parallel sweep. The compiled elaboration comes from the switch's
/// shared cache and the evaluation scratch, input words, and output words
/// persist across cycles *and* frames — steady-state frames allocate only
/// the outcome itself.
pub struct FrameEngine<'a> {
    switch: &'a StagedSwitch,
    elab: Arc<Elaboration>,
    scratch: EvalScratch,
    word_in: Vec<u64>,
    word_out: Vec<u64>,
    sweeps: usize,
}

impl<'a> FrameEngine<'a> {
    /// Build an engine over `switch`'s cached compiled datapath netlist.
    pub fn new(switch: &'a StagedSwitch) -> Self {
        let elab = switch.datapath_logic(false);
        let scratch = elab.compiled.scratch();
        let word_in = vec![0u64; elab.compiled.input_count()];
        let word_out = vec![0u64; elab.compiled.output_count()];
        FrameEngine {
            switch,
            elab,
            scratch,
            word_in,
            word_out,
            sweeps: 0,
        }
    }

    /// Compiled netlist sweeps performed so far (each covers up to 64
    /// payload cycles).
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Simulate one frame, transporting payload bits through the gate
    /// level. Same contract and panics as [`simulate_frame`].
    pub fn run(&mut self, offered: &[Message]) -> FrameOutcome {
        let n = self.switch.n;
        let m = self.switch.m;
        let mut by_input: Vec<Option<&Message>> = vec![None; n];
        for msg in offered {
            assert!(msg.source < n, "message source {} out of range", msg.source);
            assert!(
                by_input[msg.source].is_none(),
                "two messages offered on input {}",
                msg.source
            );
            by_input[msg.source] = Some(msg);
        }

        let valid: Vec<bool> = by_input.iter().map(|m| m.is_some()).collect();
        let routing = self.switch.route(&valid);

        let cycles = offered.iter().map(Message::bit_len).max().unwrap_or(0);
        let mut received_bits: Vec<Vec<bool>> = vec![Vec::with_capacity(cycles); m];
        let mut cycle = 0usize;
        while cycle < cycles {
            let lanes = (cycles - cycle).min(WORD_BITS);
            let lane_mask = if lanes == WORD_BITS {
                !0u64
            } else {
                (1u64 << lanes) - 1
            };
            // Valid rail: the setup pattern, broadcast across all lanes.
            // Data rail: payload bits for cycles `cycle..cycle + lanes`.
            for i in 0..n {
                self.word_in[i] = if valid[i] { lane_mask } else { 0 };
                let mut data = 0u64;
                if let Some(msg) = by_input[i] {
                    let last = msg.bit_len().min(cycle + lanes);
                    for (lane, c) in (cycle..last).enumerate() {
                        data |= (msg.bit(c) as u64) << lane;
                    }
                }
                self.word_in[n + i] = data;
            }
            self.elab
                .compiled
                .eval_word_into(&self.word_in, &mut self.scratch, &mut self.word_out);
            self.sweeps += 1;
            for (out, src) in routing.output_source.iter().enumerate() {
                if src.is_some() {
                    debug_assert_eq!(
                        self.word_out[out] & lane_mask,
                        lane_mask,
                        "routed output {out} lost its valid bit in the netlist"
                    );
                    let data = self.word_out[m + out];
                    for lane in 0..lanes {
                        received_bits[out].push(data >> lane & 1 == 1);
                    }
                }
            }
            cycle += lanes;
        }

        let mut delivered = Vec::new();
        for (out, src) in routing.output_source.iter().enumerate() {
            if let Some(src) = src {
                let original = by_input[*src].expect("routed inputs carry messages");
                let bits = &received_bits[out][..original.bit_len()];
                let payload = Message::payload_from_bits(bits);
                delivered.push((
                    out,
                    Message {
                        id: original.id,
                        source: original.source,
                        payload,
                    },
                ));
            }
        }
        let unrouted = routing
            .unrouted_inputs(&valid)
            .map(|input| by_input[input].expect("unrouted inputs were valid").clone())
            .collect();
        FrameOutcome {
            routing,
            delivered,
            unrouted,
        }
    }
}

impl FrameOutcome {
    /// Whether every delivered payload matches what was sent.
    pub fn payloads_intact(&self, offered: &[Message]) -> bool {
        self.delivered.iter().all(|(_, got)| {
            offered
                .iter()
                .find(|m| m.id == got.id)
                .is_some_and(|sent| sent.payload == got.payload)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concentrator::Hyperconcentrator;

    #[test]
    fn frame_delivers_intact_payloads() {
        let switch = Hyperconcentrator::new(8);
        let offered = vec![
            Message::new(1, 2, vec![0xDE, 0xAD]),
            Message::new(2, 5, vec![0xBE, 0xEF]),
            Message::new(3, 7, vec![0x42]),
        ];
        let outcome = simulate_frame(&switch, &offered);
        assert_eq!(outcome.delivered.len(), 3);
        assert!(outcome.unrouted.is_empty());
        assert!(outcome.payloads_intact(&offered));
        // Hyperconcentrator compacts in order: inputs 2, 5, 7 -> outputs
        // 0, 1, 2.
        let outputs: Vec<usize> = outcome.delivered.iter().map(|&(o, _)| o).collect();
        assert_eq!(outputs, vec![0, 1, 2]);
    }

    #[test]
    fn empty_frame_is_fine() {
        let switch = Hyperconcentrator::new(4);
        let outcome = simulate_frame(&switch, &[]);
        assert!(outcome.delivered.is_empty());
        assert!(outcome.unrouted.is_empty());
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn double_booking_an_input_panics() {
        let switch = Hyperconcentrator::new(4);
        let offered = vec![Message::new(1, 0, vec![0u8]), Message::new(2, 0, vec![1u8])];
        simulate_frame(&switch, &offered);
    }

    #[test]
    fn mixed_payload_lengths() {
        let switch = Hyperconcentrator::new(4);
        let offered = vec![
            Message::new(1, 0, vec![0xFFu8; 4]),
            Message::new(2, 3, vec![0x01u8]),
        ];
        let outcome = simulate_frame(&switch, &offered);
        assert!(outcome.payloads_intact(&offered));
        assert_eq!(outcome.delivered[1].1.payload.len(), 1);
    }

    #[test]
    fn gate_level_engine_matches_routing_table_simulation() {
        use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
        let switch = RevsortSwitch::new(16, 12, RevsortLayout::TwoDee);
        let mut engine = FrameEngine::new(switch.staged());
        let mut state = 0x5EEDu64;
        for frame in 0..40 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let offered: Vec<Message> = (0..16)
                .filter(|&i| state >> i & 1 == 1)
                .map(|i| {
                    let len = 1 + (state.rotate_left(i as u32) % 4) as usize;
                    let payload: Vec<u8> = (0..len)
                        .map(|b| (state.rotate_right(8 * b as u32 + i as u32)) as u8)
                        .collect();
                    Message::new(frame * 100 + i as u64, i as usize, payload)
                })
                .collect();
            let reference = simulate_frame(switch.staged(), &offered);
            let gate_level = engine.run(&offered);
            assert_eq!(gate_level, reference, "frame {frame}, state {state:#x}");
            assert!(gate_level.payloads_intact(&offered));
        }
    }

    #[test]
    fn engine_batches_64_cycles_per_sweep() {
        use concentrator::full_revsort::FullRevsortHyperconcentrator;
        let switch = FullRevsortHyperconcentrator::new(16);
        let mut engine = FrameEngine::new(switch.staged());
        // 8-byte payload = 64 cycles: exactly one compiled sweep.
        engine.run(&[Message::new(1, 3, vec![0xA5u8; 8])]);
        assert_eq!(engine.sweeps(), 1);
        // 9 bytes = 72 cycles: two sweeps. The buffers are reused, so the
        // counter just accumulates.
        engine.run(&[Message::new(2, 9, vec![0x3Cu8; 9])]);
        assert_eq!(engine.sweeps(), 3);
        // An empty frame needs no sweep at all.
        engine.run(&[]);
        assert_eq!(engine.sweeps(), 3);
    }
}
