//! One routing frame: setup cycle plus payload cycles.

use concentrator::spec::{ConcentratorSwitch, Routing};

use crate::message::Message;

/// What happened to the offered messages in one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameOutcome {
    /// The established paths.
    pub routing: Routing,
    /// Messages delivered, with the output wire each arrived on. Payloads
    /// are reassembled from the cycle-by-cycle wire bits, so any routing
    /// inconsistency would corrupt them.
    pub delivered: Vec<(usize, Message)>,
    /// Messages that were valid at setup but got no path (congestion).
    pub unrouted: Vec<Message>,
}

/// Simulate one frame of bit-serial transmission through `switch`.
///
/// `offered` holds at most one message per input wire. The setup cycle
/// presents the valid bits; every subsequent cycle moves one payload bit of
/// every routed message along its frozen path; the receiver reassembles
/// payloads from the arriving bits.
///
/// # Panics
/// If two messages claim the same input wire or a source is out of range.
pub fn simulate_frame<S: ConcentratorSwitch + ?Sized>(
    switch: &S,
    offered: &[Message],
) -> FrameOutcome {
    let n = switch.inputs();
    let mut by_input: Vec<Option<&Message>> = vec![None; n];
    for msg in offered {
        assert!(msg.source < n, "message source {} out of range", msg.source);
        assert!(
            by_input[msg.source].is_none(),
            "two messages offered on input {}",
            msg.source
        );
        by_input[msg.source] = Some(msg);
    }

    // Setup cycle: valid bits establish the paths.
    let valid: Vec<bool> = by_input.iter().map(|m| m.is_some()).collect();
    let routing = switch.route(&valid);

    // Payload cycles: all frames carry the longest payload (shorter ones
    // idle-low afterwards, harmless for reassembly since lengths are known
    // to the receiver in this model).
    let cycles = offered.iter().map(Message::bit_len).max().unwrap_or(0);
    let m = switch.outputs();
    let mut received_bits: Vec<Vec<bool>> = vec![Vec::with_capacity(cycles); m];
    for cycle in 0..cycles {
        // One bit per input wire this cycle.
        for (out, src) in routing.output_source.iter().enumerate() {
            if let Some(src) = src {
                let msg = by_input[*src].expect("routing only routes valid inputs");
                let bit = if cycle < msg.bit_len() { msg.bit(cycle) } else { false };
                received_bits[out].push(bit);
            }
        }
    }

    // Reassemble deliveries.
    let mut delivered = Vec::new();
    for (out, src) in routing.output_source.iter().enumerate() {
        if let Some(src) = src {
            let original = by_input[*src].expect("routed inputs carry messages");
            let bits = &received_bits[out][..original.bit_len()];
            let payload = Message::payload_from_bits(bits);
            delivered.push((
                out,
                Message { id: original.id, source: original.source, payload },
            ));
        }
    }

    let unrouted = routing
        .unrouted_inputs(&valid)
        .map(|input| by_input[input].expect("unrouted inputs were valid").clone())
        .collect();

    FrameOutcome { routing, delivered, unrouted }
}

impl FrameOutcome {
    /// Whether every delivered payload matches what was sent.
    pub fn payloads_intact(&self, offered: &[Message]) -> bool {
        self.delivered.iter().all(|(_, got)| {
            offered
                .iter()
                .find(|m| m.id == got.id)
                .is_some_and(|sent| sent.payload == got.payload)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concentrator::Hyperconcentrator;

    #[test]
    fn frame_delivers_intact_payloads() {
        let switch = Hyperconcentrator::new(8);
        let offered = vec![
            Message::new(1, 2, vec![0xDE, 0xAD]),
            Message::new(2, 5, vec![0xBE, 0xEF]),
            Message::new(3, 7, vec![0x42]),
        ];
        let outcome = simulate_frame(&switch, &offered);
        assert_eq!(outcome.delivered.len(), 3);
        assert!(outcome.unrouted.is_empty());
        assert!(outcome.payloads_intact(&offered));
        // Hyperconcentrator compacts in order: inputs 2, 5, 7 -> outputs
        // 0, 1, 2.
        let outputs: Vec<usize> = outcome.delivered.iter().map(|&(o, _)| o).collect();
        assert_eq!(outputs, vec![0, 1, 2]);
    }

    #[test]
    fn empty_frame_is_fine() {
        let switch = Hyperconcentrator::new(4);
        let outcome = simulate_frame(&switch, &[]);
        assert!(outcome.delivered.is_empty());
        assert!(outcome.unrouted.is_empty());
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn double_booking_an_input_panics() {
        let switch = Hyperconcentrator::new(4);
        let offered =
            vec![Message::new(1, 0, vec![0u8]), Message::new(2, 0, vec![1u8])];
        simulate_frame(&switch, &offered);
    }

    #[test]
    fn mixed_payload_lengths() {
        let switch = Hyperconcentrator::new(4);
        let offered = vec![
            Message::new(1, 0, vec![0xFFu8; 4]),
            Message::new(2, 3, vec![0x01u8]),
        ];
        let outcome = simulate_frame(&switch, &offered);
        assert!(outcome.payloads_intact(&offered));
        assert_eq!(outcome.delivered[1].1.payload.len(), 1);
    }
}
