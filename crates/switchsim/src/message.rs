//! Bit-serial messages.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A bit-serial message: a valid bit followed by payload bits, one bit per
/// clock cycle on one wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Globally unique id, assigned by the traffic source.
    pub id: u64,
    /// The input wire (processor) the message enters on.
    pub source: usize,
    /// Payload octets, serialized LSB-first onto the wire.
    pub payload: Bytes,
}

impl Message {
    /// Create a message.
    pub fn new(id: u64, source: usize, payload: impl Into<Bytes>) -> Self {
        Message {
            id,
            source,
            payload: payload.into(),
        }
    }

    /// Payload length in bits.
    pub fn bit_len(&self) -> usize {
        self.payload.len() * 8
    }

    /// The payload bit transmitted at payload cycle `cycle` (cycle 0 is
    /// the first cycle after setup), LSB-first within each octet.
    pub fn bit(&self, cycle: usize) -> bool {
        let byte = cycle / 8;
        let bit = cycle % 8;
        (self.payload[byte] >> bit) & 1 == 1
    }

    /// The full wire serialization: the valid bit (1) followed by the
    /// payload bits.
    pub fn wire_bits(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(1 + self.bit_len());
        bits.push(true);
        for cycle in 0..self.bit_len() {
            bits.push(self.bit(cycle));
        }
        bits
    }

    /// Reassemble a payload from received bits (inverse of
    /// [`Message::bit`] over all cycles).
    pub fn payload_from_bits(bits: &[bool]) -> Bytes {
        assert_eq!(bits.len() % 8, 0, "payload bits must be octet-aligned");
        let mut bytes = Vec::with_capacity(bits.len() / 8);
        for chunk in bits.chunks(8) {
            let mut b = 0u8;
            for (i, &bit) in chunk.iter().enumerate() {
                if bit {
                    b |= 1 << i;
                }
            }
            bytes.push(b);
        }
        Bytes::from(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_serialization_round_trips() {
        let m = Message::new(1, 0, vec![0xA5u8, 0x3C]);
        assert_eq!(m.bit_len(), 16);
        let bits: Vec<bool> = (0..16).map(|c| m.bit(c)).collect();
        assert_eq!(Message::payload_from_bits(&bits), m.payload);
    }

    #[test]
    fn wire_bits_lead_with_valid_bit() {
        let m = Message::new(7, 3, vec![0x01u8]);
        let bits = m.wire_bits();
        assert_eq!(bits.len(), 9);
        assert!(bits[0], "valid bit first");
        assert!(bits[1], "LSB of 0x01");
        assert!(!bits[2]);
    }

    #[test]
    fn lsb_first_convention() {
        let m = Message::new(0, 0, vec![0b1000_0001u8]);
        assert!(m.bit(0));
        assert!(!m.bit(1));
        assert!(m.bit(7));
    }
}
