//! Misrouting (deflection) — the third congestion-control option of §1.
//!
//! "Typical ways of handling unsuccessfully routed messages … are to
//! buffer them, **to misroute them**, or to simply drop them." Misrouting
//! needs somewhere to misroute *to*: this module models the standard
//! arrangement, a secondary concentrator feeding a detour path. Losers of
//! the primary switch are offered to the deflection switch in the same
//! frame; its winners reach the destination late (a fixed detour penalty
//! in frames); messages losing in *both* switches fall back to a base
//! policy.

use std::collections::VecDeque;

use concentrator::spec::ConcentratorSwitch;
use serde::{Deserialize, Serialize};

use crate::congestion::CongestionPolicy;
use crate::message::Message;
use crate::stats::Stats;
use crate::traffic::TrafficGenerator;

/// Statistics specific to deflection routing, alongside the base counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeflectionStats {
    /// Base counters (offered/delivered/dropped/… as usual).
    pub base: Stats,
    /// Messages that took the detour path.
    pub misrouted: usize,
    /// Of the delivered messages, how many arrived via the detour.
    pub delivered_via_detour: usize,
}

/// A two-switch deflection stage: primary concentrator plus a detour
/// concentrator absorbing its losers.
pub struct DeflectionStage<'a, P: ConcentratorSwitch + ?Sized, D: ConcentratorSwitch + ?Sized> {
    primary: &'a P,
    detour: &'a D,
    /// Extra frames a misrouted message spends on the longer path.
    detour_frames: usize,
    fallback: CongestionPolicy,
    queues: Vec<VecDeque<(Message, usize, usize)>>, // (msg, attempts, born)
    /// Delay line: messages in flight on the detour, with arrival frame.
    in_detour: VecDeque<(usize, Message, usize)>, // (arrival_frame, msg, born)
    frame: usize,
    stats: DeflectionStats,
}

impl<'a, P, D> DeflectionStage<'a, P, D>
where
    P: ConcentratorSwitch + ?Sized,
    D: ConcentratorSwitch + ?Sized,
{
    /// Build a deflection stage. Both switches must span the same `n`
    /// inputs (they see the same input wires).
    pub fn new(
        primary: &'a P,
        detour: &'a D,
        detour_frames: usize,
        fallback: CongestionPolicy,
    ) -> Self {
        assert_eq!(
            primary.inputs(),
            detour.inputs(),
            "primary and detour switches must share the input wires"
        );
        DeflectionStage {
            primary,
            detour,
            detour_frames: detour_frames.max(1),
            fallback,
            queues: (0..primary.inputs()).map(|_| VecDeque::new()).collect(),
            in_detour: VecDeque::new(),
            frame: 0,
            stats: DeflectionStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeflectionStats {
        &self.stats
    }

    /// Messages queued at inputs plus messages in flight on the detour.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum::<usize>() + self.in_detour.len()
    }

    /// Inject fresh messages.
    pub fn offer(&mut self, fresh: Vec<Message>) {
        for msg in fresh {
            assert!(msg.source < self.queues.len(), "source out of range");
            self.stats.base.offered += 1;
            let queue = &mut self.queues[msg.source];
            if queue.len() >= self.fallback.queue_capacity() {
                self.stats.base.dropped += 1;
            } else {
                queue.push_back((msg, 0, self.frame));
            }
        }
    }

    /// Run one frame.
    pub fn step(&mut self) {
        // Detour arrivals land first (they were sent frames ago).
        while let Some(&(arrival, _, _)) = self.in_detour.front() {
            if arrival > self.frame {
                break;
            }
            let (_, _msg, born) = self.in_detour.pop_front().expect("front exists");
            self.stats.base.delivered += 1;
            self.stats.delivered_via_detour += 1;
            self.stats.base.total_wait_frames += (self.frame - born) as u64;
        }

        // Primary setup.
        let valid: Vec<bool> = self.queues.iter().map(|q| !q.is_empty()).collect();
        let routing = self.primary.route(&valid);

        // Primary winners deliver immediately.
        let mut lost: Vec<usize> = Vec::new();
        for (input, q) in self.queues.iter_mut().enumerate() {
            if !valid[input] {
                continue;
            }
            if routing.assignment[input].is_some() {
                let (_, _, born) = q.pop_front().expect("valid inputs are queued");
                self.stats.base.delivered += 1;
                self.stats.base.total_wait_frames += (self.frame - born) as u64;
            } else {
                lost.push(input);
            }
        }

        // Deflection setup: only primary losers raise valid bits.
        let mut deflect_valid = vec![false; self.detour.inputs()];
        for &input in &lost {
            deflect_valid[input] = true;
        }
        let deflect_routing = self.detour.route(&deflect_valid);
        for &input in &lost {
            let q = &mut self.queues[input];
            if deflect_routing.assignment[input].is_some() {
                let (msg, _, born) = q.pop_front().expect("loser is queued");
                self.stats.misrouted += 1;
                self.in_detour
                    .push_back((self.frame + self.detour_frames, msg, born));
            } else {
                // Lost twice: fall back to the base policy.
                let head = q.front_mut().expect("loser is queued");
                head.1 += 1;
                if head.1 > self.fallback.retries_allowed() {
                    q.pop_front();
                    self.stats.base.dropped += 1;
                } else {
                    self.stats.base.retries += 1;
                }
            }
        }

        let depth = self.queues.iter().map(VecDeque::len).max().unwrap_or(0);
        self.stats.base.max_queue_depth = self.stats.base.max_queue_depth.max(depth);
        self.stats.base.frames += 1;
        self.frame += 1;
    }

    /// Drive with a traffic generator for `frames` frames, then drain the
    /// detour line so its deliveries are counted.
    pub fn run(&mut self, generator: &mut TrafficGenerator, frames: usize) -> DeflectionStats {
        assert_eq!(generator.inputs(), self.primary.inputs());
        for _ in 0..frames {
            self.offer(generator.next_frame());
            self.step();
        }
        // Drain in-flight detour messages (no new offers).
        for _ in 0..self.detour_frames {
            self.step();
        }
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficModel;
    use concentrator::ColumnsortSwitch;

    fn switches() -> (ColumnsortSwitch, ColumnsortSwitch) {
        // Primary: 64 -> 16 ports; detour: 64 -> 8 ports.
        (
            ColumnsortSwitch::new(16, 4, 16),
            ColumnsortSwitch::new(16, 4, 8),
        )
    }

    #[test]
    fn deflection_beats_plain_drop_under_overload() {
        let (primary, detour) = switches();
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.6 }, 64, 1, 21);
        let mut stage = DeflectionStage::new(&primary, &detour, 3, CongestionPolicy::Drop);
        let with_deflection = stage.run(&mut generator, 300);

        // Same traffic through a drop-only single stage.
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.6 }, 64, 1, 21);
        let mut plain = crate::network::ConcentrationStage::new(&primary, CongestionPolicy::Drop);
        let plain_report = plain.run(&mut generator, 300);

        assert!(with_deflection.misrouted > 0);
        assert!(
            with_deflection.base.delivery_ratio() > plain_report.stats.delivery_ratio(),
            "deflection {} <= plain {}",
            with_deflection.base.delivery_ratio(),
            plain_report.stats.delivery_ratio()
        );
    }

    #[test]
    fn detour_deliveries_pay_latency() {
        let (primary, detour) = switches();
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.7 }, 64, 1, 5);
        let detour_frames = 5;
        let mut stage =
            DeflectionStage::new(&primary, &detour, detour_frames, CongestionPolicy::Drop);
        let stats = stage.run(&mut generator, 200);
        assert!(stats.delivered_via_detour > 0);
        // Mean wait must reflect the detour penalty on some messages.
        assert!(stats.base.mean_wait() > 0.0);
    }

    #[test]
    fn conservation_with_deflection() {
        let (primary, detour) = switches();
        for fallback in [
            CongestionPolicy::Drop,
            CongestionPolicy::AckResend { max_retries: 2 },
        ] {
            let mut generator = TrafficGenerator::new(
                TrafficModel::Bursty {
                    p: 0.5,
                    mean_burst: 4.0,
                },
                64,
                1,
                9,
            );
            let mut stage = DeflectionStage::new(&primary, &detour, 2, fallback);
            let stats = stage.run(&mut generator, 250);
            assert_eq!(
                stats.base.offered,
                stats.base.delivered + stats.base.dropped + stage.in_flight(),
                "fallback {fallback:?}"
            );
            assert!(stats.delivered_via_detour <= stats.misrouted);
        }
    }

    #[test]
    fn no_deflection_needed_under_light_load() {
        let (primary, detour) = switches();
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.05 }, 64, 1, 2);
        let mut stage = DeflectionStage::new(&primary, &detour, 3, CongestionPolicy::Drop);
        let stats = stage.run(&mut generator, 100);
        assert_eq!(stats.misrouted, 0);
        assert_eq!(stats.base.dropped, 0);
        assert_eq!(stats.base.delivered, stats.base.offered);
    }

    #[test]
    #[should_panic(expected = "share the input wires")]
    fn mismatched_widths_rejected() {
        let primary = ColumnsortSwitch::new(16, 4, 16);
        let detour = ColumnsortSwitch::new(8, 4, 8);
        DeflectionStage::new(&primary, &detour, 1, CongestionPolicy::Drop);
    }
}
