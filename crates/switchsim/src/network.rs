//! An end-to-end concentration stage: `n` processors offering messages
//! through a concentrator switch onto `m` resource ports, frame after
//! frame, under a congestion policy.

use std::collections::VecDeque;

use concentrator::spec::ConcentratorSwitch;
use serde::{Deserialize, Serialize};

use crate::congestion::CongestionPolicy;
use crate::frame::simulate_frame;
use crate::message::Message;
use crate::stats::Stats;
use crate::traffic::TrafficGenerator;

/// A queued message with bookkeeping.
#[derive(Debug, Clone)]
struct Pending {
    message: Message,
    attempts: usize,
    born_frame: usize,
}

/// The concentration stage of a routing network (§1's setting): processors
/// on the left, a concentrator switch in the middle, shared resource ports
/// on the right.
pub struct ConcentrationStage<'a, S: ConcentratorSwitch + ?Sized> {
    switch: &'a S,
    policy: CongestionPolicy,
    queues: Vec<VecDeque<Pending>>,
    frame: usize,
    stats: Stats,
}

/// Summary of a completed simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Counters.
    pub stats: Stats,
    /// Messages still waiting in input queues when the run ended.
    pub in_flight: usize,
}

impl<'a, S: ConcentratorSwitch + ?Sized> ConcentrationStage<'a, S> {
    /// Create a stage around `switch` with the given congestion policy.
    pub fn new(switch: &'a S, policy: CongestionPolicy) -> Self {
        ConcentrationStage {
            switch,
            policy,
            queues: (0..switch.inputs()).map(|_| VecDeque::new()).collect(),
            frame: 0,
            stats: Stats::default(),
        }
    }

    /// Accumulated statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Messages currently queued.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Inject fresh messages (at most one per source per call is not
    /// required; queue capacity governs drops).
    pub fn offer(&mut self, fresh: Vec<Message>) {
        for msg in fresh {
            assert!(msg.source < self.queues.len(), "source out of range");
            self.stats.offered += 1;
            let queue = &mut self.queues[msg.source];
            if queue.len() >= self.policy.queue_capacity() {
                self.stats.dropped += 1;
            } else {
                queue.push_back(Pending {
                    message: msg,
                    attempts: 0,
                    born_frame: self.frame,
                });
            }
        }
    }

    /// Run one frame: offer queue heads, route, deliver, apply the
    /// congestion policy to losers. Returns delivered messages with their
    /// output ports.
    pub fn step(&mut self) -> Vec<(usize, Message)> {
        let offered: Vec<Message> = self
            .queues
            .iter()
            .filter_map(|q| q.front().map(|p| p.message.clone()))
            .collect();
        let outcome = simulate_frame(self.switch, &offered);
        debug_assert!(outcome.payloads_intact(&offered));

        // Deliveries: pop the queue heads that got through.
        for (_, delivered) in &outcome.delivered {
            let queue = &mut self.queues[delivered.source];
            let pending = queue.pop_front().expect("delivered message was queued");
            debug_assert_eq!(pending.message.id, delivered.id);
            self.stats.delivered += 1;
            self.stats
                .record_wait((self.frame - pending.born_frame) as u64);
        }
        // Losers: retry or drop per policy.
        for lost in &outcome.unrouted {
            let queue = &mut self.queues[lost.source];
            let head = queue.front_mut().expect("unrouted message was queued");
            debug_assert_eq!(head.message.id, lost.id);
            head.attempts += 1;
            if head.attempts > self.policy.retries_allowed() {
                queue.pop_front();
                self.stats.dropped += 1;
            } else {
                self.stats.retries += 1;
            }
        }

        let depth = self.queues.iter().map(VecDeque::len).max().unwrap_or(0);
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth);
        self.stats.frames += 1;
        self.frame += 1;
        outcome.delivered
    }

    /// Drive the stage with a traffic generator for `frames` frames.
    pub fn run(&mut self, generator: &mut TrafficGenerator, frames: usize) -> SimulationReport {
        assert_eq!(
            generator.inputs(),
            self.switch.inputs(),
            "generator and switch disagree on n"
        );
        for _ in 0..frames {
            self.offer(generator.next_frame());
            self.step();
        }
        SimulationReport {
            stats: self.stats.clone(),
            in_flight: self.in_flight(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficModel;
    use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
    use concentrator::Hyperconcentrator;

    #[test]
    fn light_load_delivers_everything() {
        let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.1 }, 64, 2, 5);
        let mut stage = ConcentrationStage::new(&switch, CongestionPolicy::Drop);
        let report = stage.run(&mut generator, 200);
        // Offered load ~6.4/frame << guaranteed capacity; nothing drops.
        assert_eq!(report.stats.dropped, 0, "{:?}", report.stats);
        assert_eq!(report.stats.delivered, report.stats.offered);
    }

    #[test]
    fn overload_saturates_at_m_per_frame() {
        let switch = Hyperconcentrator::new(16);
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 1.0 }, 16, 1, 2);
        let mut stage = ConcentrationStage::new(&switch, CongestionPolicy::Drop);
        let report = stage.run(&mut generator, 50);
        // m = n = 16, full offered load: everything routed.
        assert_eq!(report.stats.delivered, report.stats.offered);
    }

    #[test]
    fn buffering_beats_dropping_under_overload() {
        let switch = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
        let frames = 300;
        let run = |policy| {
            let mut generator =
                TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.8 }, 16, 1, 11);
            let mut stage = ConcentrationStage::new(&switch, policy);
            stage.run(&mut generator, frames)
        };
        let dropped = run(CongestionPolicy::Drop);
        let buffered = run(CongestionPolicy::InputBuffer { capacity: 8 });
        assert!(
            buffered.stats.delivery_ratio() > dropped.stats.delivery_ratio(),
            "buffered {} <= dropped {}",
            buffered.stats.delivery_ratio(),
            dropped.stats.delivery_ratio()
        );
        assert!(buffered.stats.retries > 0);
    }

    #[test]
    fn ack_resend_limits_attempts() {
        let switch = RevsortSwitch::new(16, 4, RevsortLayout::TwoDee);
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 1.0 }, 16, 1, 3);
        let mut stage =
            ConcentrationStage::new(&switch, CongestionPolicy::AckResend { max_retries: 2 });
        let report = stage.run(&mut generator, 100);
        // Heavy overload: some messages exhaust their retries and drop.
        assert!(report.stats.dropped > 0);
        assert!(report.stats.retries > 0);
        // Conservation: offered = delivered + dropped + still in flight.
        assert_eq!(
            report.stats.offered,
            report.stats.delivered + report.stats.dropped + report.in_flight
        );
    }

    #[test]
    fn conservation_holds_for_all_policies() {
        let switch = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
        for policy in [
            CongestionPolicy::Drop,
            CongestionPolicy::InputBuffer { capacity: 4 },
            CongestionPolicy::AckResend { max_retries: 1 },
        ] {
            let mut generator = TrafficGenerator::new(
                TrafficModel::Bursty {
                    p: 0.7,
                    mean_burst: 5.0,
                },
                16,
                1,
                13,
            );
            let mut stage = ConcentrationStage::new(&switch, policy);
            let report = stage.run(&mut generator, 150);
            assert_eq!(
                report.stats.offered,
                report.stats.delivered + report.stats.dropped + report.in_flight,
                "policy {policy:?}"
            );
        }
    }
}
