//! Fairness under overload — and the rotation trick that restores it.
//!
//! The mesh nearsorters are *positional*: when more messages arrive than
//! the switch can deliver, the survivors are the ones the sort pushes into
//! the first `m` wires, which systematically favors some input positions
//! over others. (The paper never discusses this; it is a real property of
//! the design that a system architect must know.) The standard remedy is
//! to rotate the processor-to-input wiring assignment frame by frame so
//! the bias averages out — implemented here as [`RotatingSwitch`], a
//! wrapper that adds one barrel-shifter's worth of hardware.

use concentrator::spec::{ConcentratorKind, ConcentratorSwitch, Routing};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Per-input delivery counts over a measurement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Frames measured.
    pub frames: usize,
    /// Per input: times it offered a message.
    pub offered: Vec<usize>,
    /// Per input: times its message was delivered.
    pub delivered: Vec<usize>,
}

impl FairnessReport {
    /// Per-input delivery ratios (1.0 where nothing was offered).
    pub fn ratios(&self) -> Vec<f64> {
        self.offered
            .iter()
            .zip(&self.delivered)
            .map(|(&o, &d)| if o == 0 { 1.0 } else { d as f64 / o as f64 })
            .collect()
    }

    /// Jain's fairness index over per-input delivery ratios: 1.0 is
    /// perfectly fair, 1/n is maximally unfair.
    pub fn jain_index(&self) -> f64 {
        let ratios = self.ratios();
        let n = ratios.len() as f64;
        let sum: f64 = ratios.iter().sum();
        let sum_sq: f64 = ratios.iter().map(|r| r * r).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (n * sum_sq)
    }

    /// Spread between the best- and worst-served inputs.
    pub fn ratio_spread(&self) -> f64 {
        let ratios = self.ratios();
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

/// Measure per-input delivery over `frames` frames of saturating Bernoulli
/// traffic (`p` per input per frame).
pub fn measure_fairness<S: ConcentratorSwitch + ?Sized>(
    switch: &S,
    p: f64,
    frames: usize,
    seed: u64,
) -> FairnessReport {
    let n = switch.inputs();
    let mut rng = concentrator::verify::SplitMix64(seed);
    let mut offered = vec![0usize; n];
    let mut delivered = vec![0usize; n];
    for _ in 0..frames {
        let valid = rng.valid_bits(n, p);
        let routing = switch.route(&valid);
        for (input, &v) in valid.iter().enumerate() {
            if v {
                offered[input] += 1;
                if routing.assignment[input].is_some() {
                    delivered[input] += 1;
                }
            }
        }
    }
    FairnessReport {
        frames,
        offered,
        delivered,
    }
}

/// A fairness wrapper: each setup cycle, the processor-to-input assignment
/// is rotated by a frame counter (one extra hardwired-control barrel
/// shifter at the inputs), so positional bias averages out over frames.
pub struct RotatingSwitch<S> {
    inner: S,
    counter: Mutex<usize>,
}

impl<S: ConcentratorSwitch> RotatingSwitch<S> {
    /// Wrap a switch.
    pub fn new(inner: S) -> Self {
        RotatingSwitch {
            inner,
            counter: Mutex::new(0),
        }
    }

    /// The wrapped switch.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ConcentratorSwitch> ConcentratorSwitch for RotatingSwitch<S> {
    fn inputs(&self) -> usize {
        self.inner.inputs()
    }

    fn outputs(&self) -> usize {
        self.inner.outputs()
    }

    fn kind(&self) -> ConcentratorKind {
        self.inner.kind()
    }

    fn route(&self, valid: &[bool]) -> Routing {
        let n = self.inner.inputs();
        let offset = {
            let mut counter = self.counter.lock();
            let o = *counter % n;
            // A prime-ish stride decorrelates the offset from pattern
            // periodicities in the workload.
            *counter = counter.wrapping_add(17);
            o
        };
        // Processor i drives inner input (i + offset) mod n.
        let mut rotated = vec![false; n];
        for (i, &v) in valid.iter().enumerate() {
            rotated[(i + offset) % n] = v;
        }
        let inner_routing = self.inner.route(&rotated);
        let assignment = (0..n)
            .map(|i| inner_routing.assignment[(i + offset) % n])
            .collect();
        Routing::from_assignment(assignment, self.inner.outputs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concentrator::spec::check_concentration;
    use concentrator::ColumnsortSwitch;

    #[test]
    fn overloaded_positional_switch_is_unfair() {
        // 32 -> 8 ports at saturating load: the mesh sort favors a subset
        // of positions frame after frame.
        let switch = ColumnsortSwitch::new(8, 4, 8);
        let report = measure_fairness(&switch, 0.9, 400, 0xFA1);
        assert!(
            report.jain_index() < 0.90,
            "expected positional unfairness, Jain = {}",
            report.jain_index()
        );
        assert!(report.ratio_spread() > 0.3);
    }

    #[test]
    fn rotation_restores_fairness() {
        let plain = ColumnsortSwitch::new(8, 4, 8);
        let unfair = measure_fairness(&plain, 0.9, 400, 0xFA1);
        let rotating = RotatingSwitch::new(ColumnsortSwitch::new(8, 4, 8));
        let fair = measure_fairness(&rotating, 0.9, 400, 0xFA1);
        assert!(
            fair.jain_index() > unfair.jain_index() + 0.05,
            "rotation must improve fairness: {} vs {}",
            fair.jain_index(),
            unfair.jain_index()
        );
        assert!(fair.ratio_spread() < unfair.ratio_spread());
    }

    #[test]
    fn rotation_preserves_the_concentration_guarantee() {
        let rotating = RotatingSwitch::new(ColumnsortSwitch::new(8, 4, 24));
        let mut state = 3u64;
        for _ in 0..1500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid: Vec<bool> = (0..32).map(|i| (state >> (i % 64)) & 1 == 1).collect();
            let violations = check_concentration(&rotating, &valid);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn rotation_is_a_bijection_per_frame() {
        let rotating = RotatingSwitch::new(ColumnsortSwitch::new(8, 2, 12));
        let valid = vec![true; 16];
        let routing = rotating.route(&valid);
        // All 12 outputs carry distinct messages.
        let mut outs: Vec<usize> = routing.assignment.iter().flatten().copied().collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 12);
    }

    #[test]
    fn jain_index_extremes() {
        let all_equal = FairnessReport {
            frames: 10,
            offered: vec![10, 10, 10, 10],
            delivered: vec![5, 5, 5, 5],
        };
        assert!((all_equal.jain_index() - 1.0).abs() < 1e-12);
        let one_hog = FairnessReport {
            frames: 10,
            offered: vec![10, 10, 10, 10],
            delivered: vec![10, 0, 0, 0],
        };
        assert!(one_hog.jain_index() < 0.3);
    }
}
