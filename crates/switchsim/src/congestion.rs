//! Congestion control for unsuccessfully routed messages.
//!
//! §1: "Typical ways of handling unsuccessfully routed messages in a
//! routing network are to buffer them, to misroute them, or to simply drop
//! them and rely on a higher-level acknowledgment protocol to detect this
//! situation and resend them. The switch designs in this paper are
//! compatible with any of these congestion control methods."
//!
//! This module implements drop, input buffering, and acknowledgment-based
//! resend; misrouting — which needs an alternative path to misroute onto —
//! lives in [`crate::deflection`].

use serde::{Deserialize, Serialize};

/// Policy applied to messages that were valid at setup but received no
/// electrical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionPolicy {
    /// Drop losers silently; one outstanding message per input.
    Drop,
    /// Hold losers in a per-input queue (depth `capacity`) and re-offer
    /// them in subsequent frames; fresh arrivals to a full queue are lost.
    InputBuffer {
        /// Queue depth per input wire.
        capacity: usize,
    },
    /// Losers are dropped in the switch but the sender detects the missing
    /// acknowledgment and resends, up to `max_retries` extra attempts.
    AckResend {
        /// Additional send attempts before the sender gives up.
        max_retries: usize,
    },
}

impl CongestionPolicy {
    /// Messages that may wait at one input (including the in-flight one).
    pub fn queue_capacity(&self) -> usize {
        match *self {
            CongestionPolicy::Drop => 1,
            CongestionPolicy::InputBuffer { capacity } => capacity.max(1),
            // The "queue" is the sender's own retransmit buffer.
            CongestionPolicy::AckResend { .. } => usize::MAX,
        }
    }

    /// Extra send attempts an unrouted message is granted.
    pub fn retries_allowed(&self) -> usize {
        match *self {
            CongestionPolicy::Drop => 0,
            CongestionPolicy::InputBuffer { .. } => usize::MAX,
            CongestionPolicy::AckResend { max_retries } => max_retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_allows_no_retries() {
        assert_eq!(CongestionPolicy::Drop.retries_allowed(), 0);
        assert_eq!(CongestionPolicy::Drop.queue_capacity(), 1);
    }

    #[test]
    fn buffer_bounds_queue_not_retries() {
        let p = CongestionPolicy::InputBuffer { capacity: 3 };
        assert_eq!(p.queue_capacity(), 3);
        assert_eq!(p.retries_allowed(), usize::MAX);
        // Degenerate capacity still admits the in-flight message.
        assert_eq!(
            CongestionPolicy::InputBuffer { capacity: 0 }.queue_capacity(),
            1
        );
    }

    #[test]
    fn ack_resend_bounds_retries_not_queue() {
        let p = CongestionPolicy::AckResend { max_retries: 2 };
        assert_eq!(p.retries_allowed(), 2);
        assert_eq!(p.queue_capacity(), usize::MAX);
    }
}
