//! An exact analytical model of the drop-policy concentration stage —
//! simulation's sanity anchor.
//!
//! The VLSI report this paper appeared in pairs every simulator with an
//! analytical model ("an analytical model of latency … that agrees with
//! network simulation results to within 5%"). For the concentration stage
//! under Bernoulli offers and the drop policy, the per-frame state is
//! memoryless, so the model is *exact*, not approximate: offered load is
//! `Binomial(n, p)` and the switch delivers `min(k, capacity(k))`
//! messages, where `capacity` reflects the worst-case guarantee or the
//! measured typical behavior.
//!
//! The binomial is evaluated with a stable multiplicative recurrence (no
//! factorials), so the model stays exact at n in the thousands.

use serde::{Deserialize, Serialize};

/// Predicted per-frame statistics for the drop policy under
/// `Bernoulli(p)` offers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropModelPrediction {
    /// Expected messages offered per frame, `n·p`.
    pub offered_per_frame: f64,
    /// Expected messages delivered per frame.
    pub delivered_per_frame: f64,
    /// Expected delivery ratio.
    pub delivery_ratio: f64,
}

/// Binomial(n, p) probability mass function as a vector over `0..=n`,
/// via the multiplicative recurrence
/// `P(k+1) = P(k) · (n−k)/(k+1) · p/(1−p)`.
pub fn binomial_pmf(n: usize, p: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut pmf = vec![0.0; n + 1];
    if p == 0.0 {
        pmf[0] = 1.0;
        return pmf;
    }
    if p == 1.0 {
        pmf[n] = 1.0;
        return pmf;
    }
    // Start at the mode-side anchor k = 0 in log space for stability.
    let log_q = (1.0 - p).ln();
    pmf[0] = (n as f64 * log_q).exp();
    let ratio = p / (1.0 - p);
    for k in 0..n {
        pmf[k + 1] = pmf[k] * (n - k) as f64 / (k + 1) as f64 * ratio;
    }
    // Renormalize the tiny drift of the recurrence.
    let total: f64 = pmf.iter().sum();
    if total > 0.0 {
        for value in &mut pmf {
            *value /= total;
        }
    }
    pmf
}

/// Predict the drop-policy stage exactly, given the switch's per-frame
/// delivery function `delivered(k)` (how many of `k` offered messages get
/// paths — use the guarantee for a worst-case model or a measured curve
/// for a typical-case model).
pub fn predict_drop<F: Fn(usize) -> usize>(n: usize, p: f64, delivered: F) -> DropModelPrediction {
    let pmf = binomial_pmf(n, p);
    let mut expected_delivered = 0.0;
    for (k, &prob) in pmf.iter().enumerate() {
        expected_delivered += prob * delivered(k) as f64;
    }
    let offered = n as f64 * p;
    DropModelPrediction {
        offered_per_frame: offered,
        delivered_per_frame: expected_delivered,
        delivery_ratio: if offered == 0.0 {
            1.0
        } else {
            expected_delivered / offered
        },
    }
}

/// Measure a switch's *expected* delivery curve `E[delivered | k]` by
/// averaging over random placements of `k` messages (the analytic model's
/// one empirical input, since delivery depends on positions, not just
/// counts).
pub fn measure_delivery_curve<S: concentrator::spec::ConcentratorSwitch + ?Sized>(
    switch: &S,
    samples_per_k: usize,
    seed: u64,
) -> Vec<f64> {
    let n = switch.inputs();
    let mut curve = Vec::with_capacity(n + 1);
    let mut rng = concentrator::verify::SplitMix64(seed);
    for k in 0..=n {
        if k == 0 {
            curve.push(0.0);
            continue;
        }
        let mut total = 0usize;
        for _ in 0..samples_per_k {
            // Random k-subset via partial Fisher-Yates.
            let mut positions: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + (rng.next_u64() as usize) % (n - i);
                positions.swap(i, j);
            }
            let mut valid = vec![false; n];
            for &pos in &positions[..k] {
                valid[pos] = true;
            }
            total += switch.route(&valid).routed();
        }
        curve.push(total as f64 / samples_per_k as f64);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficGenerator;
    use crate::{ConcentrationStage, CongestionPolicy, TrafficModel};
    use concentrator::spec::ConcentratorSwitch;
    use concentrator::{ColumnsortSwitch, Hyperconcentrator};

    #[test]
    fn binomial_pmf_is_a_distribution_with_right_mean() {
        for (n, p) in [
            (10usize, 0.3f64),
            (100, 0.5),
            (1000, 0.05),
            (7, 0.0),
            (7, 1.0),
        ] {
            let pmf = binomial_pmf(n, p);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}, p={p}: total {total}");
            let mean: f64 = pmf.iter().enumerate().map(|(k, &q)| k as f64 * q).sum();
            assert!(
                (mean - n as f64 * p).abs() < 1e-6,
                "n={n}, p={p}: mean {mean}"
            );
        }
    }

    #[test]
    fn hyperconcentrator_model_is_exact() {
        // For a full hyperconcentrator m = n, delivered(k) = k exactly.
        let n = 32;
        let prediction = predict_drop(n, 0.4, |k| k);
        assert!((prediction.delivery_ratio - 1.0).abs() < 1e-12);
        assert!((prediction.delivered_per_frame - 12.8).abs() < 1e-9);
    }

    #[test]
    fn truncated_hyper_model_matches_simulation_tightly() {
        // min(k, m) is the exact delivery of a truncated hyperconcentrator.
        struct Trunc(Hyperconcentrator, usize);
        impl ConcentratorSwitch for Trunc {
            fn inputs(&self) -> usize {
                self.0.inputs()
            }
            fn outputs(&self) -> usize {
                self.1
            }
            fn kind(&self) -> concentrator::ConcentratorKind {
                concentrator::ConcentratorKind::Perfect
            }
            fn route(&self, valid: &[bool]) -> concentrator::Routing {
                let full = self.0.route(valid);
                let assignment = full
                    .assignment
                    .into_iter()
                    .map(|a| a.filter(|&o| o < self.1))
                    .collect();
                concentrator::Routing::from_assignment(assignment, self.1)
            }
        }
        let n = 64;
        let m = 16;
        let switch = Trunc(Hyperconcentrator::new(n), m);
        let p = 0.4;
        let prediction = predict_drop(n, p, |k| k.min(m));

        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p }, n, 1, 0xA11A);
        let mut stage = ConcentrationStage::new(&switch, CongestionPolicy::Drop);
        let report = stage.run(&mut generator, 3000);
        let simulated = report.stats.delivered as f64 / report.stats.frames as f64;
        let relative =
            (simulated - prediction.delivered_per_frame).abs() / prediction.delivered_per_frame;
        assert!(
            relative < 0.05,
            "model {} vs simulation {simulated} ({relative:.3} off)",
            prediction.delivered_per_frame
        );
    }

    #[test]
    fn measured_curve_model_matches_partial_concentrator_simulation() {
        let switch = ColumnsortSwitch::new(8, 4, 8);
        let curve = measure_delivery_curve(&switch, 60, 0xC11);
        let p = 0.5;
        let prediction = predict_drop(32, p, |k| curve[k].round() as usize);

        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p }, 32, 1, 0xB22);
        let mut stage = ConcentrationStage::new(&switch, CongestionPolicy::Drop);
        let report = stage.run(&mut generator, 4000);
        let simulated = report.stats.delivered as f64 / report.stats.frames as f64;
        let relative = (simulated - prediction.delivered_per_frame).abs() / simulated;
        assert!(
            relative < 0.05,
            "model {} vs simulation {simulated}",
            prediction.delivered_per_frame
        );
    }

    #[test]
    fn delivery_curve_is_monotone_and_bounded() {
        let switch = ColumnsortSwitch::new(8, 2, 10);
        let curve = measure_delivery_curve(&switch, 40, 0xD33);
        assert_eq!(curve.len(), 17);
        assert_eq!(curve[0], 0.0);
        for w in curve.windows(2) {
            assert!(w[1] + 1e-9 >= w[0], "curve must be nondecreasing");
        }
        assert!(curve.iter().all(|&d| d <= 10.0));
    }
}
