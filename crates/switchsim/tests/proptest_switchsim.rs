//! Property-based tests for the bit-serial simulator.

use concentrator::spec::ConcentratorSwitch;
use concentrator::{ColumnsortSwitch, Hyperconcentrator};
use proptest::prelude::*;
use switchsim::deflection::DeflectionStage;
use switchsim::traffic::TrafficGenerator;
use switchsim::{
    measure_fairness, regular_tree, simulate_frame, ConcentrationStage, CongestionPolicy, Message,
    RotatingSwitch, TrafficModel,
};

proptest! {
    /// The zipf-population arrival stream is a pure function of its seed:
    /// same (seed, population, exponent, load) ⇒ the identical message
    /// sequence, frame for frame. The tier bench and fabric bench rely on
    /// this to replay the same million-user workload across runs.
    #[test]
    fn zipf_stream_is_deterministic(
        seed in any::<u64>(),
        p in 0.0f64..1.0,
        population in 1u64..5_000_000,
        exponent in 0.0f64..2.5,
    ) {
        let model = TrafficModel::Zipf { p, population, exponent };
        let mut a = TrafficGenerator::new(model, 32, 2, seed);
        let mut b = TrafficGenerator::new(model, 32, 2, seed);
        for _ in 0..4 {
            prop_assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    /// Wire serialization round-trips arbitrary payloads.
    #[test]
    fn payload_bits_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..32)) {
        let msg = Message::new(1, 0, payload.clone());
        let bits: Vec<bool> = (0..msg.bit_len()).map(|c| msg.bit(c)).collect();
        prop_assert_eq!(Message::payload_from_bits(&bits).to_vec(), payload);
    }

    /// A frame through a hyperconcentrator delivers every message with its
    /// payload intact, regardless of sources and payload sizes.
    #[test]
    fn frames_deliver_intact(
        sources in proptest::collection::btree_set(0usize..16, 0..16),
        payload_len in 1usize..8,
    ) {
        let switch = Hyperconcentrator::new(16);
        let offered: Vec<Message> = sources
            .iter()
            .enumerate()
            .map(|(i, &src)| {
                Message::new(i as u64, src, vec![(i * 37 + src) as u8; payload_len])
            })
            .collect();
        let outcome = simulate_frame(&switch, &offered);
        prop_assert_eq!(outcome.delivered.len(), offered.len());
        prop_assert!(outcome.unrouted.is_empty());
        prop_assert!(outcome.payloads_intact(&offered));
        // Hyperconcentrators compact in input order.
        let mut sorted_sources: Vec<usize> = sources.iter().copied().collect();
        sorted_sources.sort_unstable();
        for (slot, (out, msg)) in outcome.delivered.iter().enumerate() {
            prop_assert_eq!(*out, slot);
            prop_assert_eq!(msg.source, sorted_sources[slot]);
        }
    }

    /// Conservation holds across policies, loads, and run lengths.
    #[test]
    fn conservation(
        p in 0.05f64..0.95,
        frames in 1usize..60,
        policy_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let policy = [
            CongestionPolicy::Drop,
            CongestionPolicy::InputBuffer { capacity: 3 },
            CongestionPolicy::AckResend { max_retries: 1 },
        ][policy_idx];
        let switch = Hyperconcentrator::new(12);
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p }, 12, 1, seed);
        let mut stage = ConcentrationStage::new(&switch, policy);
        let report = stage.run(&mut generator, frames);
        prop_assert_eq!(
            report.stats.offered,
            report.stats.delivered + report.stats.dropped + report.in_flight
        );
        // A full-width hyperconcentrator never congests.
        prop_assert_eq!(report.stats.dropped, 0);
        prop_assert_eq!(report.stats.retries, 0);
    }

    /// Traffic generators respect source ranges and never duplicate ids.
    #[test]
    fn traffic_well_formed(
        p in 0.0f64..1.0,
        bursty in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let model = if bursty {
            TrafficModel::Bursty { p, mean_burst: 4.0 }
        } else {
            TrafficModel::Bernoulli { p }
        };
        let mut generator = TrafficGenerator::new(model, 10, 2, seed);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let frame = generator.next_frame();
            let mut frame_sources = std::collections::HashSet::new();
            for msg in frame {
                prop_assert!(msg.source < 10);
                prop_assert!(seen.insert(msg.id));
                prop_assert!(frame_sources.insert(msg.source), "one offer per input");
                prop_assert_eq!(msg.payload.len(), 2);
            }
        }
    }

    /// Identical (seed, model, n) produce bit-identical message streams
    /// across two independent generators — the reproducibility guarantee
    /// the fabric bench's deterministic sections rest on.
    #[test]
    fn traffic_deterministic_across_generators(
        seed in any::<u64>(),
        n in 1usize..48,
        payload_bytes in 1usize..4,
        p in 0.0f64..1.0,
        model_idx in 0usize..4,
        frames in 1usize..25,
    ) {
        let model = [
            TrafficModel::Bernoulli { p },
            TrafficModel::Bursty { p, mean_burst: 6.0 },
            TrafficModel::Hotspot {
                p_hot: p,
                p_cold: p / 2.0,
                hot_inputs: n / 2,
            },
            TrafficModel::Adversarial,
        ][model_idx];
        let mut a = TrafficGenerator::new(model, n, payload_bytes, seed);
        let mut b = TrafficGenerator::new(model, n, payload_bytes, seed);
        for _ in 0..frames {
            prop_assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    /// Multistage cascades never duplicate or invent messages: routing is
    /// a partial injection from inputs to root ports.
    #[test]
    fn multistage_routing_is_partial_injection(pattern in any::<u64>()) {
        let net = regular_tree(64, 16, 8, 8, |ins, outs| {
            debug_assert_eq!(ins, 16);
            Box::new(ColumnsortSwitch::new(8, 2, outs))
        });
        let valid: Vec<bool> = (0..64).map(|i| (pattern >> i) & 1 == 1).collect();
        let routing = net.route(&valid);
        let mut seen = std::collections::HashSet::new();
        for (input, slot) in routing.assignment.iter().enumerate() {
            if let Some(out) = slot {
                prop_assert!(valid[input]);
                prop_assert!(*out < net.outputs());
                prop_assert!(seen.insert(*out));
            }
        }
        prop_assert!(routing.routed() <= net.outputs());
    }

    /// Deflection conserves messages for any load and fallback policy.
    #[test]
    fn deflection_conserves(
        p in 0.05f64..0.9,
        frames in 5usize..60,
        fallback_idx in 0usize..2,
        seed in any::<u64>(),
    ) {
        let fallback = [
            CongestionPolicy::Drop,
            CongestionPolicy::AckResend { max_retries: 1 },
        ][fallback_idx];
        let primary = ColumnsortSwitch::new(16, 4, 16);
        let detour = ColumnsortSwitch::new(16, 4, 8);
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p }, 64, 1, seed);
        let mut stage = DeflectionStage::new(&primary, &detour, 2, fallback);
        let stats = stage.run(&mut generator, frames);
        prop_assert_eq!(
            stats.base.offered,
            stats.base.delivered + stats.base.dropped + stage.in_flight()
        );
        prop_assert!(stats.delivered_via_detour <= stats.misrouted);
    }

    /// The rotating wrapper is routing-equivalent in aggregate: it always
    /// delivers at least as many messages as the guarantee requires and
    /// never routes invalid inputs.
    #[test]
    fn rotating_wrapper_soundness(pattern in any::<u64>(), frames in 1usize..8) {
        let rotating = RotatingSwitch::new(ColumnsortSwitch::new(8, 4, 24));
        let valid: Vec<bool> = (0..32).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
        for _ in 0..frames {
            let routing = rotating.route(&valid);
            for (input, slot) in routing.assignment.iter().enumerate() {
                if slot.is_some() {
                    prop_assert!(valid[input]);
                }
            }
            let k = valid.iter().filter(|&&v| v).count();
            prop_assert!(routing.routed() >= k.min(rotating.guaranteed_capacity()).min(k));
        }
    }

    /// Fairness measurement bookkeeping: delivered never exceeds offered,
    /// and the Jain index stays in (0, 1].
    #[test]
    fn fairness_report_sane(p in 0.1f64..1.0, seed in any::<u64>()) {
        let switch = ColumnsortSwitch::new(8, 2, 8);
        let report = measure_fairness(&switch, p, 50, seed);
        for (o, d) in report.offered.iter().zip(&report.delivered) {
            prop_assert!(d <= o);
        }
        let jain = report.jain_index();
        prop_assert!(jain > 0.0 && jain <= 1.0 + 1e-12);
    }
}
