//! Design specifiers: `revsort:<n>:<m>` and `columnsort:<r>x<s>:<m>`.

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::ColumnsortSwitch;

/// A parsed design with its constructed switch.
pub enum Design {
    /// The §4 three-stage switch.
    Revsort(RevsortSwitch),
    /// The §5 two-stage switch.
    Columnsort(ColumnsortSwitch),
}

impl Design {
    /// Parse a specifier and build the switch.
    pub fn parse(spec: &str) -> Result<Design, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["revsort", n, m] => {
                let n: usize = n.parse().map_err(|_| format!("bad n `{n}`"))?;
                let m: usize = m.parse().map_err(|_| format!("bad m `{m}`"))?;
                let side = (n as f64).sqrt() as usize;
                if side * side != n || !side.is_power_of_two() {
                    return Err(format!("revsort needs n = 4^q, got {n}"));
                }
                if m == 0 || m > n {
                    return Err(format!("need 0 < m <= n, got m = {m}"));
                }
                Ok(Design::Revsort(RevsortSwitch::new(
                    n,
                    m,
                    RevsortLayout::ThreeDee,
                )))
            }
            ["columnsort", shape, m] => {
                let (r, s) = shape
                    .split_once('x')
                    .ok_or_else(|| format!("bad shape `{shape}` (want RxS)"))?;
                let r: usize = r.parse().map_err(|_| format!("bad r `{r}`"))?;
                let s: usize = s.parse().map_err(|_| format!("bad s `{s}`"))?;
                let m: usize = m.parse().map_err(|_| format!("bad m `{m}`"))?;
                if r == 0 || s == 0 || !r.is_multiple_of(s) {
                    return Err(format!("columnsort needs s | r, got {r}x{s}"));
                }
                if m == 0 || m > r * s {
                    return Err(format!("need 0 < m <= n = {}, got m = {m}", r * s));
                }
                Ok(Design::Columnsort(ColumnsortSwitch::new(r, s, m)))
            }
            _ => Err(format!(
                "bad design `{spec}` (want revsort:<n>:<m> or columnsort:<r>x<s>:<m>)"
            )),
        }
    }

    /// The switch as a trait object.
    pub fn switch(&self) -> &dyn ConcentratorSwitch {
        match self {
            Design::Revsort(s) => s,
            Design::Columnsort(s) => s,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> String {
        match self {
            Design::Revsort(s) => s.staged().name.clone(),
            Design::Columnsort(s) => s.staged().name.clone(),
        }
    }

    /// The staged view of the switch (shared elaboration cache included).
    pub fn staged(&self) -> &concentrator::StagedSwitch {
        match self {
            Design::Revsort(s) => s.staged(),
            Design::Columnsort(s) => s.staged(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_designs() {
        let d = Design::parse("revsort:64:28").unwrap();
        assert_eq!(d.switch().inputs(), 64);
        assert_eq!(d.switch().outputs(), 28);
        let d = Design::parse("columnsort:8x4:18").unwrap();
        assert_eq!(d.switch().inputs(), 32);
        assert!(d.name().contains("Columnsort"));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "revsort:48:10",     // not 4^q
            "revsort:64:0",      // m = 0
            "revsort:64:100",    // m > n
            "columnsort:8x3:10", // s does not divide r
            "columnsort:8:10",   // missing shape
            "mystery:8:10",
            "revsort:64",
        ] {
            assert!(Design::parse(bad).is_err(), "accepted {bad}");
        }
    }
}
