//! The CLI subcommands.

use std::fmt::Write as _;

use concentrator::layout::{columnsort_layout_2d, revsort_layout_2d};
use concentrator::packaging::{Dim, PackagingReport};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::verify::monte_carlo_check_compiled;
use concentrator::ColumnsortSwitch;

use crate::args::Parsed;
use crate::design::Design;
use switchsim::{frame_vcd, Message};

/// `help`.
pub fn help() -> String {
    "\
concentrator — multichip partial concentrator switches (Cormen 1987)

commands:
  design  --n <inputs> --pins <budget> [--load <fraction>]
          recommend constructions fitting a pin budget and offered load
  route   --design <spec> --valid <bits>
          run one setup cycle and print the established paths
  verify  --design <spec> [--trials <count>] [--seed <seed>]
          Monte Carlo + adversarial check of the concentration guarantee
  package --design <spec> [--dim 2d|3d] [--json]
          chips/pins/boards/volume resource report
  svg     --design <spec> --out <file>
          render the 2-D layout as SVG
  export  --design <spec> --format verilog|vcd --out <file>
          emit the flat control netlist as Verilog, or a sample frame as
          a VCD waveform
  fabric-bench [--design <spec>] [--frames <count>] [--shards <count>]
          [--load <p>] [--model bernoulli|zipf] [--population <users>]
          [--exponent <s>] [--payload <bytes>] [--seed <seed>]
          [--policy block|shed|reject] [--placement rr|hash] [--json]
          drive the sharded serving fabric closed-loop and report the
          batched-vs-unbatched sweep counts, throughput, and wait
          percentiles
  fabric-bench --reconfig [--design <spec>] [--frames <per-phase>]
          [--producers <count>] [--load <p>] [--payload <bytes>]
          [--seed <seed>] [--json]
          live-reconfiguration soak: drive the threaded service while the
          shard count changes 1 -> 4 -> 2 under load (epoch-based lane
          add/remove) and prove the drain ledger is lossless
  fabric-bench --trace <file|model> [--design <spec>] [--shards <count>]
          [--policy block|shed|reject] [--placement rr|hash] [--json]
          replay a workload trace through the serving fabric — a path to
          a trace file replays it byte-faithfully; a model name
          (bernoulli|diurnal|mmpp|zipf-population|adversarial) generates
          one in memory from the trace-gen flags
  fabric-bench --scaling [--n <aggregate>] [--frames <base>]
          [--producers <count>] [--load <p>] [--payload <bytes>]
          [--seed <seed>] [--json]
          multichip scaling ladder: serve one fixed aggregate fabric at
          1/2/4/8 chips (one thread-per-shard lane each) under constant
          offered load; reports per-shard msgs/s, utilization, and
          parallel efficiency at every rung
  trace-gen --out <file> [--model bernoulli|diurnal|mmpp|zipf-population|adversarial]
          [--sources <wires>] [--ticks <count>] [--load <p>] [--class <c>]
          [--seed <seed>] [--jsonl] [--json]
          [--amplitude <a>] [--period <ticks>]          (diurnal)
          [--burst <mean>] [--rate-on <p>] [--rate-off <p>]
          [--on-to-off <p>] [--off-to-on <p>]           (mmpp)
          [--population <users>] [--exponent <s>]       (zipf-population)
          [--design <spec>] [--restarts <n>] [--rounds <n>] (adversarial)
          generate a replayable workload trace (binary CTRC, or
          JSON-lines with --jsonl) and print its checksum; replay it with
          fabric-bench --trace <file>
  tier-bench [--leaves <count>] [--frames <count>] [--producers <count>]
          [--sources <count>] [--load <p>] [--population <users>]
          [--exponent <s>] [--payload <bytes>] [--seed <seed>] [--json]
          [--out <file>]
          drive the three-tier concentrator tree (leaves -> aggregation
          -> spine hyperconcentrators) closed-loop under zipf-population
          traffic; reports per-tier msgs/s, shed fraction, spine p99
          wait, and the single-spine baseline the tree must beat
  fault-campaign [--design <spec>] [--frames <count>] [--seed <seed>]
          [--load <density>] [--permanent <rate>] [--intermittent <rate>]
          [--period <frames>] [--transient <rate>] [--json] [--out <file>]
          run a seeded chip-fault injection campaign on the compiled
          fault path and report degraded capacity vs a quiet baseline
  sim     [--scenario <name>|tiers|reconfig|all] [--seeds <count>] [--base <seed>]
          [--seed <seed>] [--trace] [--json] [--out <file>]
          deterministic simulation harness: explore seeded interleavings
          of the serving fabric (and, for tier-* scenarios, the whole
          concentrator tree) under model-based oracles, or replay one
          failing seed bit-for-bit (--seed, optionally --trace)

design specs: revsort:<n>:<m> | columnsort:<r>x<s>:<m>
"
    .to_string()
}

/// `design`: recommend constructions under a pin budget.
pub fn design(args: &Parsed) -> Result<String, String> {
    let n: usize = args.required_parse("n")?;
    let pins: usize = args.required_parse("pins")?;
    let load: f64 = args.parse_or("load", 0.25)?;
    if !(0.0..=1.0).contains(&load) {
        return Err("--load must be in [0, 1]".into());
    }
    let side = (n as f64).sqrt() as usize;
    if side * side != n || !side.is_power_of_two() {
        return Err(format!("--n must be 4^q (e.g. 256, 1024, 4096), got {n}"));
    }
    let m = n / 2;
    let need = (load * n as f64).ceil() as usize;
    let mut out = String::new();
    writeln!(
        out,
        "target: n = {n}, m = {m}, pin budget {pins}, offered load {need} msgs/frame"
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>6} {:>10} {:>9} {:>7} {:>6}",
        "design", "chips", "pins/chip", "capacity", "delays", "fits"
    )
    .unwrap();

    let mut recommended: Option<(String, u64)> = None;
    let mut consider = |name: String,
                        chips: usize,
                        pin_count: usize,
                        capacity: usize,
                        delays: u32,
                        volume: u64,
                        out: &mut String| {
        let fits = pin_count <= pins && capacity >= need;
        writeln!(
            out,
            "{name:<28} {chips:>6} {pin_count:>10} {capacity:>9} {delays:>7} {:>6}",
            if fits { "fits" } else { "no" }
        )
        .unwrap();
        if fits && recommended.as_ref().is_none_or(|&(_, best)| volume < best) {
            recommended = Some((name, volume));
        }
    };

    let revsort = RevsortSwitch::new(n, m, RevsortLayout::ThreeDee);
    let pack = PackagingReport::revsort(&revsort);
    consider(
        "revsort".into(),
        pack.total_chips(),
        pack.max_pins_per_chip(),
        revsort.guaranteed_capacity(),
        revsort.delay(),
        pack.volume_units,
        &mut out,
    );
    let mut r = side;
    while r <= n {
        let s = n / r;
        if n.is_multiple_of(r) && r.is_multiple_of(s) {
            let switch = ColumnsortSwitch::new(r, s, m);
            let pack = PackagingReport::columnsort(&switch, Dim::ThreeDee);
            consider(
                format!("columnsort:{r}x{s}"),
                pack.total_chips(),
                pack.max_pins_per_chip(),
                switch.guaranteed_capacity(),
                switch.delay(),
                pack.volume_units,
                &mut out,
            );
        }
        r *= 2;
    }
    match recommended {
        Some((name, volume)) => writeln!(
            out,
            "\nrecommended: {name} (smallest volume among fits: {volume} units)"
        )
        .unwrap(),
        None => writeln!(
            out,
            "\nno construction fits; raise the pin budget, lower the load, or add stages"
        )
        .unwrap(),
    }
    Ok(out)
}

/// `route`: one setup cycle.
pub fn route(args: &Parsed) -> Result<String, String> {
    let design = Design::parse(args.required("design")?)?;
    let raw = args.required("valid")?;
    let valid: Vec<bool> = raw
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("--valid must be 0/1 bits, found `{other}`")),
        })
        .collect::<Result<_, _>>()?;
    let switch = design.switch();
    if valid.len() != switch.inputs() {
        return Err(format!(
            "--valid has {} bits but the design has n = {}",
            valid.len(),
            switch.inputs()
        ));
    }
    let routing = switch.route(&valid);
    let k = valid.iter().filter(|&&v| v).count();
    let mut out = String::new();
    writeln!(out, "{}", design.name()).unwrap();
    writeln!(
        out,
        "offered {k}, delivered {} of m = {}",
        routing.routed(),
        switch.outputs()
    )
    .unwrap();
    for (input, slot) in routing.assignment.iter().enumerate() {
        match slot {
            Some(output) => writeln!(out, "  X{input} -> Y{output}").unwrap(),
            None if valid[input] => writeln!(out, "  X{input} -> (congested)").unwrap(),
            None => {}
        }
    }
    Ok(out)
}

/// `verify`: Monte Carlo + adversarial guarantee check.
pub fn verify(args: &Parsed) -> Result<String, String> {
    let design = Design::parse(args.required("design")?)?;
    let trials: usize = args.parse_or("trials", 2000)?;
    let seed: u64 = args.parse_or("seed", 0xC0FFEE)?;
    // Patterns are screened through the compiled batch evaluator, 64 per
    // sweep; the exact router only re-examines flagged suspects.
    let report = match &design {
        Design::Revsort(s) => monte_carlo_check_compiled(s.staged(), trials, seed),
        Design::Columnsort(s) => monte_carlo_check_compiled(s.staged(), trials, seed),
    };
    let mut out = String::new();
    writeln!(
        out,
        "{}: {} patterns checked, {} failures",
        design.name(),
        report.trials,
        report.failures.len()
    )
    .unwrap();
    for failure in report.failures.iter().take(3) {
        writeln!(out, "  violation: {:?}", failure.violations).unwrap();
    }
    if report.failures.is_empty() {
        Ok(out)
    } else {
        Err(format!("guarantee violated:\n{out}"))
    }
}

/// `package`: resource report, optionally JSON.
pub fn package(args: &Parsed) -> Result<String, String> {
    let design = Design::parse(args.required("design")?)?;
    let dim = match args.optional("dim").unwrap_or("3d") {
        "2d" => Dim::TwoDee,
        "3d" => Dim::ThreeDee,
        other => return Err(format!("--dim must be 2d or 3d, got `{other}`")),
    };
    let report = match (&design, dim) {
        (Design::Revsort(s), Dim::ThreeDee) => PackagingReport::revsort(s),
        (Design::Revsort(s), Dim::TwoDee) => {
            let flat = RevsortSwitch::new(s.inputs(), s.outputs(), RevsortLayout::TwoDee);
            PackagingReport::revsort(&flat)
        }
        (Design::Columnsort(s), dim) => PackagingReport::columnsort(s, dim),
    };
    if args.has_flag("json") {
        return serde_json::to_string_pretty(&report)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| e.to_string());
    }
    let mut out = String::new();
    writeln!(out, "{}", report.name).unwrap();
    for chip in &report.chip_types {
        writeln!(
            out,
            "  chip: {} x{} ({} pins)",
            chip.name, chip.count, chip.data_pins
        )
        .unwrap();
    }
    writeln!(
        out,
        "  boards: {} ({} types), stacks: {}",
        report.total_boards, report.board_types, report.stacks
    )
    .unwrap();
    writeln!(
        out,
        "  area: {} units, volume: {} units",
        report.area_units, report.volume_units
    )
    .unwrap();
    writeln!(out, "  gate delays: {}", report.gate_delays).unwrap();
    Ok(out)
}

/// `export`: Verilog netlist or VCD waveform.
pub fn export(args: &Parsed) -> Result<String, String> {
    let design = Design::parse(args.required("design")?)?;
    let out_path = args.required("out")?;
    let staged = match &design {
        Design::Revsort(s) => s.staged(),
        Design::Columnsort(s) => s.staged(),
    };
    let content = match args.required("format")? {
        "verilog" => staged.build_netlist(true).to_verilog("concentrator_switch"),
        "vcd" => {
            // A representative frame: every third input carries a byte.
            let n = design.switch().inputs();
            let offered: Vec<Message> = (0..n)
                .step_by(3)
                .enumerate()
                .map(|(i, src)| Message::new(i as u64, src, vec![(0x40 + i) as u8]))
                .collect();
            frame_vcd(design.switch(), &offered)
        }
        other => return Err(format!("--format must be verilog or vcd, got `{other}`")),
    };
    std::fs::write(out_path, &content).map_err(|e| format!("writing {out_path}: {e}"))?;
    Ok(format!("wrote {out_path} ({} bytes)\n", content.len()))
}

/// `svg`: render the 2-D layout.
pub fn svg(args: &Parsed) -> Result<String, String> {
    let design = Design::parse(args.required("design")?)?;
    let out_path = args.required("out")?;
    let svg = match &design {
        Design::Revsort(s) => revsort_layout_2d(s).to_svg(),
        Design::Columnsort(s) => columnsort_layout_2d(s).to_svg(),
    };
    std::fs::write(out_path, &svg).map_err(|e| format!("writing {out_path}: {e}"))?;
    Ok(format!("wrote {out_path} ({} bytes)\n", svg.len()))
}

/// The `--model` family of flags, shared by `fabric-bench` and
/// `tier-bench`: `bernoulli` (default) or `zipf` with `--population`
/// and `--exponent`.
fn parse_traffic_model(args: &Parsed, load: f64) -> Result<switchsim::TrafficModel, String> {
    use switchsim::TrafficModel;
    match args.optional("model").unwrap_or("bernoulli") {
        "bernoulli" => Ok(TrafficModel::Bernoulli { p: load }),
        "zipf" => {
            let population: u64 = args.parse_or("population", 1_000_000)?;
            let exponent: f64 = args.parse_or("exponent", 1.1)?;
            if population == 0 {
                return Err("--population must be at least 1".into());
            }
            if !(exponent.is_finite() && exponent >= 0.0) {
                return Err(format!(
                    "--exponent must be finite and >= 0, got {exponent}"
                ));
            }
            Ok(TrafficModel::Zipf {
                p: load,
                population,
                exponent,
            })
        }
        other => Err(format!("--model must be bernoulli|zipf, got `{other}`")),
    }
}

/// `fabric-bench`: drive the sharded serving fabric closed-loop and
/// compare the batching executor against the one-request-per-sweep
/// baseline on the same workload. With `--scaling`, run the multichip
/// scaling ladder instead ([`fabric::scaling`]); with `--trace`, replay
/// a workload trace ([`fabric_bench_trace`]).
pub fn fabric_bench(args: &Parsed) -> Result<String, String> {
    use fabric::{drive_sync, drive_sync_unbatched, Fabric, FabricConfig, LoadPlan};
    use std::sync::Arc;
    use std::time::Instant;

    if args.has_flag("scaling") {
        return fabric_bench_scaling(args);
    }
    if args.has_flag("reconfig") {
        return fabric_bench_reconfig(args);
    }
    if let Some(spec) = args.optional("trace") {
        return fabric_bench_trace(args, spec);
    }

    let design = Design::parse(args.optional("design").unwrap_or("revsort:256:128"))?;
    let shards: usize = args.parse_or("shards", 2)?;
    let frames: usize = args.parse_or("frames", 64)?;
    let payload: usize = args.parse_or("payload", 8)?;
    let load: f64 = args.parse_or("load", 0.5)?;
    let seed: u64 = args.parse_or("seed", 0xFAB)?;
    if !(0.0..=1.0).contains(&load) {
        return Err(format!("--load must be in [0, 1], got {load}"));
    }
    let mut config = FabricConfig::new(shards.max(1));
    config.backpressure = match args.optional("policy").unwrap_or("block") {
        "block" => fabric::Backpressure::Block,
        "shed" => fabric::Backpressure::ShedOldest,
        "reject" => fabric::Backpressure::Reject,
        other => return Err(format!("--policy must be block|shed|reject, got `{other}`")),
    };
    config.placement = match args.optional("placement").unwrap_or("rr") {
        "rr" => fabric::Placement::RoundRobin,
        "hash" => fabric::Placement::SourceHash,
        other => return Err(format!("--placement must be rr|hash, got `{other}`")),
    };

    let model = parse_traffic_model(args, load)?;
    let switch = Arc::new(design.staged().clone());
    let n = switch.n;
    let workload = LoadPlan {
        model,
        payload_bytes: payload,
        seed,
        frames,
    };

    let mut batched = Fabric::new(Arc::clone(&switch), config);
    let started = Instant::now();
    let batched_report = drive_sync(&mut batched, n, &workload);
    let batched_secs = started.elapsed().as_secs_f64();

    let mut unbatched = Fabric::new(switch, config);
    let started = Instant::now();
    let unbatched_report = drive_sync_unbatched(&mut unbatched, n, &workload);
    let unbatched_secs = started.elapsed().as_secs_f64();

    let batched_totals = batched_report.snapshot.totals();
    let unbatched_totals = unbatched_report.snapshot.totals();
    if !batched_report.snapshot.conserved() || !unbatched_report.snapshot.conserved() {
        return Err("conservation identity violated (fabric bug)".into());
    }
    let sweep_ratio = unbatched_totals.sweeps as f64 / batched_totals.sweeps.max(1) as f64;
    let (p50, p50_lb) = batched_totals.wait_frames.percentile(50.0);
    let (p99, p99_lb) = batched_totals.wait_frames.percentile(99.0);

    if args.has_flag("json") {
        use serde_json::{object, ToJson};
        let value = object([
            ("design", design.name().to_json()),
            ("shards", (shards as u64).to_json()),
            ("frames", (frames as u64).to_json()),
            ("offered_load", load.to_json()),
            ("generated", batched_report.generated.to_json()),
            ("batched", batched_report.snapshot.to_json()),
            ("unbatched", unbatched_report.snapshot.to_json()),
            ("sweep_ratio", sweep_ratio.to_json()),
            (
                "batched_msgs_per_sec",
                (batched_totals.delivered as f64 / batched_secs).to_json(),
            ),
            (
                "unbatched_msgs_per_sec",
                (unbatched_totals.delivered as f64 / unbatched_secs).to_json(),
            ),
        ]);
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&value).unwrap()
        ));
    }

    let mut out = String::new();
    writeln!(
        out,
        "fabric bench: {} over {} shard(s)",
        design.name(),
        shards
    )
    .unwrap();
    writeln!(
        out,
        "  workload: {:?}, {frames} frames, {payload}-byte payloads, seed {seed}",
        workload.model
    )
    .unwrap();
    writeln!(out, "  generated: {}", batched_report.generated).unwrap();
    writeln!(
        out,
        "  batched:   {} delivered in {} sweeps ({:.2} deliveries/sweep, {:.0} msgs/s)",
        batched_totals.delivered,
        batched_totals.sweeps,
        batched_totals.deliveries_per_sweep(),
        batched_totals.delivered as f64 / batched_secs
    )
    .unwrap();
    writeln!(
        out,
        "  unbatched: {} delivered in {} sweeps ({:.2} deliveries/sweep, {:.0} msgs/s)",
        unbatched_totals.delivered,
        unbatched_totals.sweeps,
        unbatched_totals.deliveries_per_sweep(),
        unbatched_totals.delivered as f64 / unbatched_secs
    )
    .unwrap();
    writeln!(
        out,
        "  sweep speedup: {sweep_ratio:.1}x fewer compiled sweeps"
    )
    .unwrap();
    writeln!(
        out,
        "  wait frames: p50 = {p50}{} p99 = {p99}{}",
        if p50_lb { "+ (lower bound)" } else { "" },
        if p99_lb { "+ (lower bound)" } else { "" }
    )
    .unwrap();
    writeln!(
        out,
        "  dropped: {} rejected, {} shed, {} retry-exhausted",
        batched_totals.rejected, batched_totals.shed, batched_totals.retry_dropped
    )
    .unwrap();
    Ok(out)
}

/// `fabric-bench --reconfig`: the live-reconfiguration soak. One
/// threaded [`fabric::FabricService`] is driven through three load
/// phases while the control plane resizes it under the traffic — one
/// shard, grown to four, shrunk back to two — with every boundary an
/// epoch bump and every removed lane drained through the two-phase
/// handoff. Blocking backpressure plus the elastic re-placement path
/// make the run lossless by construction; the drain ledger proves it.
fn fabric_bench_reconfig(args: &Parsed) -> Result<String, String> {
    use fabric::{drive_service, FabricConfig, FabricService, LoadPlan};
    use std::sync::Arc;
    use std::time::Instant;

    let design = Design::parse(args.optional("design").unwrap_or("revsort:256:128"))?;
    let frames: usize = args.parse_or("frames", 32)?;
    let producers: usize = args.parse_or("producers", 3)?;
    let payload: usize = args.parse_or("payload", 8)?;
    let load: f64 = args.parse_or("load", 0.5)?;
    let seed: u64 = args.parse_or("seed", 0xFAB)?;
    if !(0.0..=1.0).contains(&load) {
        return Err(format!("--load must be in [0, 1], got {load}"));
    }
    if producers == 0 {
        return Err("--producers must be at least 1".into());
    }
    let model = parse_traffic_model(args, load)?;
    let switch = Arc::new(design.staged().clone());
    let n = switch.n;
    let plan = |phase: u64| LoadPlan {
        model,
        payload_bytes: payload,
        seed: seed.wrapping_add(phase),
        frames,
    };

    let mut config = FabricConfig::new(1);
    config.max_shards = 4;
    config.backpressure = fabric::Backpressure::Block;
    let service = FabricService::start(switch, config);

    // Phase 1: a single lane. Phase 2: grown to four under load. Phase
    // 3: lanes 1 and 2 drained and retired, traffic re-placing onto the
    // survivors under the new epoch.
    let mut phases: Vec<(&str, u64, u64, f64)> = Vec::new();
    let mut generated = 0u64;
    let mut drive = |label: &'static str, phase: u64, phases: &mut Vec<(&str, u64, u64, f64)>| {
        let started = Instant::now();
        let produced = drive_service(&service, producers, &plan(phase), n);
        generated += produced;
        phases.push((
            label,
            produced,
            service.epoch(),
            started.elapsed().as_secs_f64(),
        ));
    };
    drive("1 shard", 1, &mut phases);
    for expected in 1..4usize {
        if service.add_shard() != Some(expected) {
            return Err("lane pool exhausted early (service bug)".into());
        }
    }
    drive("4 shards", 2, &mut phases);
    if !service.remove_shard(1) || !service.remove_shard(2) {
        return Err("shard removal refused (service bug)".into());
    }
    drive("2 shards", 3, &mut phases);

    let report = service.drain();
    let totals = report.snapshot.totals();
    if !report.snapshot.conserved() {
        return Err("conservation identity violated across reconfiguration (fabric bug)".into());
    }
    if totals.delivered != generated {
        return Err(format!(
            "lost messages across reconfiguration: generated {generated}, delivered {} (fabric bug)",
            totals.delivered
        ));
    }

    if args.has_flag("json") {
        use serde_json::{object, ToJson, Value};
        let value = object([
            ("design", design.name().to_json()),
            ("frames_per_phase", (frames as u64).to_json()),
            ("producers", (producers as u64).to_json()),
            ("generated", generated.to_json()),
            ("delivered", totals.delivered.to_json()),
            ("lossless", (totals.delivered == generated).to_json()),
            (
                "phases",
                Value::Array(
                    phases
                        .iter()
                        .map(|(label, produced, epoch, secs)| {
                            object([
                                ("shards", (*label).to_json()),
                                ("generated", produced.to_json()),
                                ("epoch", epoch.to_json()),
                                (
                                    "msgs_per_sec",
                                    (*produced as f64 / secs.max(1e-9)).to_json(),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("snapshot", report.snapshot.to_json()),
        ]);
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&value).unwrap()
        ));
    }

    let mut out = String::new();
    writeln!(
        out,
        "fabric reconfig soak: {} resized 1 -> 4 -> 2 shards under load",
        design.name()
    )
    .unwrap();
    writeln!(
        out,
        "  workload: {:?}, {frames} frames x {producers} producer(s) per phase, seed {seed}",
        plan(1).model
    )
    .unwrap();
    for (label, produced, epoch, secs) in &phases {
        writeln!(
            out,
            "  {label:>9}: {produced} generated at {:.0} msgs/s (epoch {epoch})",
            *produced as f64 / secs.max(1e-9)
        )
        .unwrap();
    }
    writeln!(
        out,
        "  ledger: {} generated = {} delivered, {} still in flight — lossless",
        generated, totals.delivered, report.snapshot.in_flight
    )
    .unwrap();
    Ok(out)
}

/// `fabric-bench --scaling`: the multichip scaling ladder. One fixed
/// aggregate fabric (`--n` inputs → `--n`/2 outputs) is served at 1, 2,
/// 4, and 8 chips, each chip a Columnsort switch on its own
/// thread-per-shard lane, with the offered workload held constant; the
/// report shows aggregate and per-shard msgs/s, output-slot
/// utilization, and the parallel-efficiency ratio at each rung.
fn fabric_bench_scaling(args: &Parsed) -> Result<String, String> {
    use fabric::scaling;

    let aggregate: usize = args.parse_or("n", 1024)?;
    let producers: usize = args.parse_or("producers", 2)?;
    let base_frames: usize = args.parse_or("frames", 8)?;
    let load: f64 = args.parse_or("load", 0.5)?;
    let payload: usize = args.parse_or("payload", 8)?;
    let seed: u64 = args.parse_or("seed", 0xFAB0)?;
    if !(0.0..=1.0).contains(&load) {
        return Err(format!("--load must be in [0, 1], got {load}"));
    }
    const CHIP_COUNTS: [usize; 4] = [1, 2, 4, 8];
    // Every rung's chip needs a column count dividing its row count:
    // n/k divisible by 16 for k up to 8.
    if aggregate == 0 || !aggregate.is_multiple_of(128) {
        return Err(format!(
            "--n must be a positive multiple of 128, got {aggregate}"
        ));
    }
    if producers == 0 || base_frames == 0 {
        return Err("--producers and --frames must be positive".into());
    }

    let ladder = scaling::ladder(
        aggregate,
        &CHIP_COUNTS,
        producers,
        base_frames,
        load,
        payload,
        seed,
    );

    if args.has_flag("json") {
        use serde_json::{object, ToJson, Value};
        let points: Vec<Value> = ladder
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let per_shard: Vec<Value> = p
                    .per_shard
                    .iter()
                    .map(|s| {
                        object([
                            ("shard", (s.shard as u64).to_json()),
                            ("delivered", s.delivered.to_json()),
                            ("msgs_per_sec", s.msgs_per_sec.to_json()),
                            ("utilization", s.utilization.to_json()),
                        ])
                    })
                    .collect();
                object([
                    ("chips", (p.chips as u64).to_json()),
                    ("threads", (p.threads as u64).to_json()),
                    ("chip_inputs", (p.chip_inputs as u64).to_json()),
                    ("chip_outputs", (p.chip_outputs as u64).to_json()),
                    ("generated", p.generated.to_json()),
                    ("delivered", p.delivered.to_json()),
                    ("frames", p.frames.to_json()),
                    ("sweeps", p.sweeps.to_json()),
                    ("msgs_per_sec", p.msgs_per_sec().to_json()),
                    ("scaling_efficiency", ladder.efficiency(i).to_json()),
                    (
                        "scaling_efficiency_normalized",
                        ladder.normalized_efficiency(i).to_json(),
                    ),
                    ("per_shard", per_shard.to_json()),
                ])
            })
            .collect();
        let value = object([
            ("aggregate_n", (ladder.aggregate_n as u64).to_json()),
            ("cores", (ladder.cores as u64).to_json()),
            ("offered_load", load.to_json()),
            ("base_frames", (base_frames as u64).to_json()),
            ("producers", (producers as u64).to_json()),
            ("seed", seed.to_json()),
            ("points", points.to_json()),
        ]);
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&value).unwrap()
        ));
    }

    let base_mps = ladder.points[0].msgs_per_sec();
    let mut out = String::new();
    writeln!(
        out,
        "multichip scaling ladder: {aggregate} -> {} aggregate fabric, {} core(s)",
        aggregate / 2,
        ladder.cores
    )
    .unwrap();
    writeln!(
        out,
        "  workload: Bernoulli p = {load}, {base_frames} base frames x chips, \
         {payload}-byte payloads, {producers} producer(s), seed {seed}"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<6} {:>10} {:>10} {:>12} {:>9} {:>11}",
        "chips", "chip n->m", "delivered", "msgs/s", "speedup", "efficiency"
    )
    .unwrap();
    for (i, p) in ladder.points.iter().enumerate() {
        writeln!(
            out,
            "  {:<6} {:>10} {:>10} {:>12.0} {:>8.2}x {:>10.3}",
            p.chips,
            format!("{}->{}", p.chip_inputs, p.chip_outputs),
            p.delivered,
            p.msgs_per_sec(),
            if base_mps > 0.0 {
                p.msgs_per_sec() / base_mps
            } else {
                0.0
            },
            ladder.efficiency(i)
        )
        .unwrap();
        for s in &p.per_shard {
            writeln!(
                out,
                "    shard {:>2}: {:>8} delivered, {:>10.0} msgs/s, {:>5.1}% utilization",
                s.shard,
                s.delivered,
                s.msgs_per_sec,
                100.0 * s.utilization
            )
            .unwrap();
        }
    }
    Ok(out)
}

/// Parse a `trace-gen`/`fabric-bench --trace` workload model name into
/// a [`fabric::TraceModel`]. `adversarial` is handled by the callers —
/// it needs a switch to attack, not just flags.
fn parse_trace_gen_model(
    args: &Parsed,
    name: &str,
    load: f64,
) -> Result<fabric::TraceModel, String> {
    use fabric::TraceModel;
    match name {
        "bernoulli" => Ok(TraceModel::Bernoulli { p: load }),
        "diurnal" => Ok(TraceModel::Diurnal {
            base: load,
            amplitude: args.parse_or("amplitude", 0.3)?,
            period: args.parse_or("period", 64)?,
        }),
        "mmpp" => {
            // --burst picks the Bursty-compatible corner; the four
            // explicit rate flags override any component of it.
            let burst: f64 = args.parse_or("burst", 4.0)?;
            let TraceModel::Mmpp {
                rate_on,
                rate_off,
                on_to_off,
                off_to_on,
            } = TraceModel::mmpp_from_bursty(load, burst)
            else {
                unreachable!("mmpp_from_bursty returns Mmpp")
            };
            Ok(TraceModel::Mmpp {
                rate_on: args.parse_or("rate-on", rate_on)?,
                rate_off: args.parse_or("rate-off", rate_off)?,
                on_to_off: args.parse_or("on-to-off", on_to_off)?,
                off_to_on: args.parse_or("off-to-on", off_to_on)?,
            })
        }
        "zipf-population" => Ok(TraceModel::ZipfPopulation {
            p: load,
            population: args.parse_or("population", 1_000_000)?,
            exponent: args.parse_or("exponent", 1.1)?,
        }),
        other => Err(format!(
            "--model must be bernoulli|diurnal|mmpp|zipf-population|adversarial, got `{other}`"
        )),
    }
}

/// Generate a trace for `model_name` from the shared generator flags
/// (`--load --sources --ticks --class --seed`, plus the per-model
/// knobs). `adversarial` runs the ε-attack against `switch` and returns
/// the search report alongside the lowered trace.
fn generate_trace(
    args: &Parsed,
    model_name: &str,
    switch: &concentrator::staged::StagedSwitch,
) -> Result<(fabric::Trace, Option<concentrator::search::SearchReport>), String> {
    let load: f64 = args.parse_or("load", 0.5)?;
    if !(0.0..=1.0).contains(&load) {
        return Err(format!("--load must be in [0, 1], got {load}"));
    }
    let ticks: u64 = args.parse_or("ticks", 256)?;
    let size_class: u8 = args.parse_or("class", 3)?;
    if size_class > fabric::trace::MAX_SIZE_CLASS {
        return Err(format!(
            "--class must be at most {}, got {size_class}",
            fabric::trace::MAX_SIZE_CLASS
        ));
    }
    let seed: u64 = args.parse_or("seed", 0x7ACE)?;
    if model_name == "adversarial" {
        let plan = fabric::AdversarialPlan {
            restarts: args.parse_or("restarts", 4)?,
            rounds: args.parse_or("rounds", 24)?,
            seed,
            ticks,
            size_class,
        };
        let (trace, report) = fabric::adversarial_trace(switch, &plan);
        return Ok((trace, Some(report)));
    }
    let sources: usize = args.parse_or("sources", switch.n)?;
    if sources == 0 {
        return Err("--sources must be at least 1".into());
    }
    let model = parse_trace_gen_model(args, model_name, load)?;
    Ok((
        fabric::trace::generate(model, sources, ticks, size_class, seed),
        None,
    ))
}

/// `trace-gen`: generate a replayable workload trace and write it to
/// disk — binary `CTRC` by default, JSON-lines with `--jsonl`. The
/// printed FNV-1a checksum identifies the exact trace bytes; `cli
/// fabric-bench --trace <file>` and [`tiers::drive_tree_trace`] replay
/// the file bit-for-bit.
pub fn trace_gen(args: &Parsed) -> Result<String, String> {
    let out_path = args.required("out")?;
    let model_name = args.optional("model").unwrap_or("mmpp");
    let design = Design::parse(args.optional("design").unwrap_or("revsort:256:128"))?;
    let switch = design.staged().clone();
    let (trace, search) = generate_trace(args, model_name, &switch)?;
    let flavor = if args.has_flag("jsonl") {
        fabric::TraceFlavor::Jsonl
    } else {
        fabric::TraceFlavor::Binary
    };
    let bytes = fabric::trace::encode(&trace, flavor);
    std::fs::write(out_path, &bytes).map_err(|e| format!("writing {out_path}: {e}"))?;
    let checksum = fabric::trace::fnv1a(&bytes);
    let wires = args.parse_or("sources", switch.n)?;

    if args.has_flag("json") {
        use serde_json::{object, ToJson, Value};
        let value = object([
            ("path", out_path.to_json()),
            ("model", model_name.to_json()),
            ("flavor", format!("{flavor:?}").to_lowercase().to_json()),
            ("space", trace.space.label().to_json()),
            ("records", (trace.len() as u64).to_json()),
            ("ticks", trace.ticks().to_json()),
            ("offered_load", trace.offered_load(wires).to_json()),
            ("bytes", (bytes.len() as u64).to_json()),
            ("fnv1a", format!("{checksum:016x}").to_json()),
            (
                "attack_score",
                match &search {
                    Some(report) => (report.best_score as u64).to_json(),
                    None => Value::Null,
                },
            ),
        ]);
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&value).unwrap()
        ));
    }

    let mut out = String::new();
    writeln!(
        out,
        "trace-gen: {model_name} -> {out_path} ({} bytes, {flavor:?})",
        bytes.len()
    )
    .unwrap();
    writeln!(
        out,
        "  {} record(s) over {} tick(s), {} source space, offered load {:.3}/wire",
        trace.len(),
        trace.ticks(),
        trace.space.label(),
        trace.offered_load(wires)
    )
    .unwrap();
    if let Some(report) = &search {
        writeln!(
            out,
            "  attack: score {} in {} evaluation(s)",
            report.best_score, report.evaluations
        )
        .unwrap();
    }
    writeln!(out, "  fnv1a: {checksum:016x}").unwrap();
    writeln!(
        out,
        "  replay: concentrator fabric-bench --trace {out_path}"
    )
    .unwrap();
    Ok(out)
}

/// `fabric-bench --trace <file|model>`: replay a trace through the
/// sharded serving fabric. A path to an existing `.ctrc`/`.jsonl` file
/// is loaded and replayed byte-faithfully; otherwise the spec names a
/// generator model (`bernoulli|diurnal|mmpp|zipf-population|adversarial`)
/// and the trace is generated in memory from the shared flags.
fn fabric_bench_trace(args: &Parsed, spec: &str) -> Result<String, String> {
    use fabric::{drive_sync_trace, Fabric, FabricConfig};
    use std::sync::Arc;
    use std::time::Instant;

    let design = Design::parse(args.optional("design").unwrap_or("revsort:256:128"))?;
    let shards: usize = args.parse_or("shards", 2)?;
    let mut config = FabricConfig::new(shards.max(1));
    config.backpressure = match args.optional("policy").unwrap_or("block") {
        "block" => fabric::Backpressure::Block,
        "shed" => fabric::Backpressure::ShedOldest,
        "reject" => fabric::Backpressure::Reject,
        other => return Err(format!("--policy must be block|shed|reject, got `{other}`")),
    };
    config.placement = match args.optional("placement").unwrap_or("rr") {
        "rr" => fabric::Placement::RoundRobin,
        "hash" => fabric::Placement::SourceHash,
        other => return Err(format!("--placement must be rr|hash, got `{other}`")),
    };

    let switch = Arc::new(design.staged().clone());
    let n = switch.n;
    let trace = if std::path::Path::new(spec).is_file() {
        fabric::trace::load(std::path::Path::new(spec))
            .map_err(|e| format!("loading trace {spec}: {e}"))?
    } else {
        generate_trace(args, spec, &switch)
            .map_err(|e| format!("--trace `{spec}` is neither a file nor a model: {e}"))?
            .0
    };

    let mut fabric = Fabric::new(Arc::clone(&switch), config);
    let started = Instant::now();
    let report = drive_sync_trace(&mut fabric, n, &trace);
    let secs = started.elapsed().as_secs_f64();
    let totals = report.snapshot.totals();
    if !report.snapshot.conserved() {
        return Err("conservation identity violated (fabric bug)".into());
    }
    let (p50, p50_lb) = totals.wait_frames.percentile(50.0);
    let (p99, p99_lb) = totals.wait_frames.percentile(99.0);

    if args.has_flag("json") {
        use serde_json::{object, ToJson};
        let value = object([
            ("design", design.name().to_json()),
            ("shards", (shards as u64).to_json()),
            ("trace", spec.to_json()),
            ("space", trace.space.label().to_json()),
            ("records", (trace.len() as u64).to_json()),
            ("ticks", trace.ticks().to_json()),
            ("offered_load", trace.offered_load(n).to_json()),
            ("generated", report.generated.to_json()),
            ("snapshot", report.snapshot.to_json()),
            ("msgs_per_sec", (totals.delivered as f64 / secs).to_json()),
        ]);
        return Ok(format!(
            "{}\n",
            serde_json::to_string_pretty(&value).unwrap()
        ));
    }

    let mut out = String::new();
    writeln!(
        out,
        "fabric trace replay: {} over {} shard(s)",
        design.name(),
        shards
    )
    .unwrap();
    writeln!(
        out,
        "  trace: {spec} — {} record(s), {} tick(s), {} space, offered {:.3}/wire",
        trace.len(),
        trace.ticks(),
        trace.space.label(),
        trace.offered_load(n)
    )
    .unwrap();
    writeln!(
        out,
        "  delivered: {} of {} in {} sweeps ({:.0} msgs/s)",
        totals.delivered,
        report.generated,
        totals.sweeps,
        totals.delivered as f64 / secs
    )
    .unwrap();
    writeln!(
        out,
        "  wait frames: p50 = {p50}{} p99 = {p99}{}",
        if p50_lb { "+ (lower bound)" } else { "" },
        if p99_lb { "+ (lower bound)" } else { "" }
    )
    .unwrap();
    writeln!(
        out,
        "  dropped: {} rejected, {} shed, {} retry-exhausted",
        totals.rejected, totals.shed, totals.retry_dropped
    )
    .unwrap();
    Ok(out)
}

/// `tier-bench`: drive the three-tier concentrator tree (leaf Revsort
/// fabrics -> aggregation Revsort fabrics -> §6 full-Columnsort spine
/// hyperconcentrators) closed-loop under zipf-population traffic through
/// the threaded [`tiers::TierService`], and report per-tier throughput
/// plus the single-spine baseline the tree must beat.
pub fn tier_bench(args: &Parsed) -> Result<String, String> {
    use tiers::{run_tree_bench, TierBenchOptions};

    let mut options = TierBenchOptions::small();
    options.leaves = args.parse_or("leaves", options.leaves)?;
    options.producers = args.parse_or("producers", options.producers)?;
    options.frames = args.parse_or("frames", options.frames)?;
    options.ingress_sources = args.parse_or("sources", options.ingress_sources)?;
    options.load = args.parse_or("load", options.load)?;
    options.population = args.parse_or("population", options.population)?;
    options.exponent = args.parse_or("exponent", options.exponent)?;
    options.payload_bytes = args.parse_or("payload", options.payload_bytes)?;
    options.seed = args.parse_or("seed", options.seed)?;
    if !(options.leaves.is_power_of_two() && (2..=64).contains(&options.leaves)) {
        return Err(format!(
            "--leaves must be a power of two in 2..=64, got {}",
            options.leaves
        ));
    }
    if !(0.0..=1.0).contains(&options.load) {
        return Err(format!("--load must be in [0, 1], got {}", options.load));
    }
    if options.population == 0 {
        return Err("--population must be at least 1".into());
    }
    if !(options.exponent.is_finite() && options.exponent >= 0.0) {
        return Err(format!(
            "--exponent must be finite and >= 0, got {}",
            options.exponent
        ));
    }
    if options.producers == 0 || options.frames == 0 || options.ingress_sources == 0 {
        return Err("--producers, --frames, and --sources must be positive".into());
    }

    let report = run_tree_bench(&options);

    if args.has_flag("json") || args.optional("out").is_some() {
        use serde_json::ToJson;
        let text = format!(
            "{}\n",
            serde_json::to_string_pretty(&report.to_json()).unwrap()
        );
        if let Some(path) = args.optional("out") {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            return Ok(format!("wrote {path} ({} bytes)\n", text.len()));
        }
        return Ok(text);
    }

    let ledger = report.snapshot.ledger();
    let mut out = String::new();
    writeln!(
        out,
        "tier bench: {} leaves -> {} aggregation -> {} spine fabrics ({} cores)",
        options.leaves, report.per_tier[1].fabrics, report.per_tier[2].fabrics, report.cores
    )
    .unwrap();
    writeln!(
        out,
        "  workload: zipf(p = {}, population = {}, s = {}) over {} sources, \
         {} frames x {} producer(s), seed {}",
        options.load,
        options.population,
        options.exponent,
        options.ingress_sources,
        options.frames,
        options.producers,
        options.seed
    )
    .unwrap();
    writeln!(
        out,
        "  generated {}, delivered {} ({:.1}% shed), {:.0} msgs/s end to end",
        report.generated,
        ledger.delivered,
        100.0 * report.shed_fraction,
        report.msgs_per_sec
    )
    .unwrap();
    for tier in &report.per_tier {
        writeln!(
            out,
            "    tier {} ({} fabric(s)): {:>8} delivered, {:>10.0} msgs/s",
            tier.tier, tier.fabrics, tier.delivered, tier.msgs_per_sec
        )
        .unwrap();
    }
    writeln!(
        out,
        "  spine p99 wait: {} frame(s){}",
        report.p99_wait_frames,
        if report.p99_wait_is_lower_bound {
            "+ (lower bound)"
        } else {
            ""
        }
    )
    .unwrap();
    writeln!(
        out,
        "  slowest single spine alone: {:.0} msgs/s -> tree {} the baseline",
        report.slowest_single_spine_msgs_per_sec,
        if report.tree_beats_slowest_single_spine() {
            "beats"
        } else {
            "TRAILS"
        }
    )
    .unwrap();
    Ok(out)
}

/// `fault-campaign`: run a seeded chip-fault injection campaign on the
/// compiled fault path and report degraded capacity against a fault-free
/// baseline of the same length and traffic.
pub fn fault_campaign(args: &Parsed) -> Result<String, String> {
    use concentrator::faults::{run_campaign, CampaignSpec, FaultCampaign};

    let design = Design::parse(args.optional("design").unwrap_or("revsort:64:32"))?;
    let frames: usize = args.parse_or("frames", 64)?;
    let seed: u64 = args.parse_or("seed", 0xFA57)?;
    let density: f64 = args.parse_or("load", 0.5)?;
    let spec = CampaignSpec {
        seed,
        frames,
        permanent_rate: args.parse_or("permanent", 0.05)?,
        intermittent_rate: args.parse_or("intermittent", 0.05)?,
        intermittent_period: args.parse_or("period", 16)?,
        transient_rate: args.parse_or("transient", 0.01)?,
    };
    if !(0.0..=1.0).contains(&density) {
        return Err(format!("--load must be in [0, 1], got {density}"));
    }
    for (flag, rate) in [
        ("permanent", spec.permanent_rate),
        ("intermittent", spec.intermittent_rate),
        ("transient", spec.transient_rate),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--{flag} must be in [0, 1], got {rate}"));
        }
    }
    let staged = design.staged();
    let campaign = FaultCampaign::generate(staged, &spec);
    let report = run_campaign(staged, &campaign, density);
    let baseline = run_campaign(
        staged,
        &FaultCampaign::generate(staged, &CampaignSpec::quiet(seed, frames)),
        density,
    );

    if args.has_flag("json") || args.optional("out").is_some() {
        use serde_json::{object, ToJson};
        let value = object([
            ("design", design.name().to_json()),
            ("spec", spec.to_json()),
            ("density", density.to_json()),
            ("delivery_rate", report.delivery_rate().to_json()),
            ("worst_frame_rate", report.worst_frame_rate().to_json()),
            ("baseline_delivery_rate", baseline.delivery_rate().to_json()),
            ("report", report.to_json()),
        ]);
        let text = format!("{}\n", serde_json::to_string_pretty(&value).unwrap());
        if let Some(path) = args.optional("out") {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            return Ok(format!("wrote {path} ({} bytes)\n", text.len()));
        }
        return Ok(text);
    }

    let mut out = String::new();
    writeln!(out, "fault campaign: {} (seed {seed})", design.name()).unwrap();
    writeln!(
        out,
        "  {} frames over {} chips, rates: permanent {}, intermittent {} (period {}), transient {}",
        report.frames,
        report.chips,
        spec.permanent_rate,
        spec.intermittent_rate,
        spec.intermittent_period,
        spec.transient_rate
    )
    .unwrap();
    writeln!(
        out,
        "  distinct fault sets: {} (compiled overlays materialized)",
        report.distinct_fault_sets
    )
    .unwrap();
    writeln!(
        out,
        "  offered {} at density {density}, delivered {}",
        report.offered, report.delivered
    )
    .unwrap();
    writeln!(
        out,
        "  delivery rate: {:.4} (worst frame {:.4}, quiet baseline {:.4})",
        report.delivery_rate(),
        report.worst_frame_rate(),
        baseline.delivery_rate()
    )
    .unwrap();
    let worst = report
        .per_frame
        .iter()
        .max_by_key(|f| f.faults_active)
        .expect("campaign has frames");
    writeln!(
        out,
        "  most faulted frame: #{} with {} chip(s) down, {}/{} delivered",
        worst.frame, worst.faults_active, worst.delivered, worst.offered
    )
    .unwrap();
    Ok(out)
}

/// `sim`: the deterministic simulation harness. Explores seeded
/// interleavings of the full fabric stack under model-based oracles, or
/// replays a single failing seed bit-for-bit.
pub fn sim(args: &Parsed) -> Result<String, String> {
    use serde_json::{object, ToJson, Value};
    use simtest::{
        by_name, catalogue, explore, explore_tree, reconfig_catalogue, run_scenario, tree_by_name,
        tree_catalogue, Scenario, TreeScenario,
    };

    let which = args.optional("scenario").unwrap_or("all");
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut trees: Vec<TreeScenario> = Vec::new();
    match which {
        "all" => {
            scenarios = catalogue();
            trees = tree_catalogue();
        }
        "tiers" => trees = tree_catalogue(),
        "reconfig" => scenarios = reconfig_catalogue(),
        name => {
            if let Some(scenario) = by_name(name) {
                scenarios.push(scenario);
            } else if let Some(tree) = tree_by_name(name) {
                trees.push(tree);
            } else {
                let names: Vec<String> = catalogue()
                    .into_iter()
                    .map(|s| s.name)
                    .chain(tree_catalogue().into_iter().map(|s| s.name))
                    .collect();
                return Err(format!(
                    "unknown scenario `{name}` (available: {}, or tiers, reconfig, all)",
                    names.join(", ")
                ));
            }
        }
    }

    let (first, last) = match args.optional("seed") {
        Some(_) => {
            let seed: u64 = args.required_parse("seed")?;
            (seed, seed)
        }
        None => {
            let base: u64 = args.parse_or("base", 1)?;
            let count: u64 = args.parse_or("seeds", 64)?;
            if count == 0 {
                return Err("--seeds must be at least 1".into());
            }
            (base, base + (count - 1))
        }
    };
    if args.has_flag("trace") {
        if !trees.is_empty() {
            return Err(
                "--trace replays flat fabric scenarios only; tier-* tree scenarios replay \
                 deterministically via --seed without a trace"
                    .into(),
            );
        }
        if scenarios.len() != 1 || first != last {
            return Err("--trace needs a single --scenario and a single --seed".into());
        }
    }

    let mut out = String::new();
    let mut reports = Vec::new();
    let mut failing_seeds = 0usize;
    for scenario in &scenarios {
        if args.has_flag("trace") {
            let run = run_scenario(scenario, first);
            writeln!(out, "trace: {} seed {first}", scenario.name).unwrap();
            for event in &run.trace {
                writeln!(out, "  {event:?}").unwrap();
            }
        }
        let report = explore(scenario, first..=last);
        writeln!(
            out,
            "{}: seeds {first}..={last} runs={} ticks={} frames={} failures={}",
            report.scenario,
            report.runs,
            report.ticks,
            report.frames,
            report.failures.len()
        )
        .unwrap();
        for failure in &report.failures {
            failing_seeds += 1;
            writeln!(
                out,
                "  FAIL seed {}: {:?}",
                failure.seed, failure.violations
            )
            .unwrap();
            writeln!(
                out,
                "    shrunk reproducer: faults={} frames={} producers={}",
                failure.shrunk_faults, failure.shrunk_frames, failure.shrunk_producers
            )
            .unwrap();
            writeln!(
                out,
                "    replay: concentrator sim --scenario {} --seed {} --trace",
                report.scenario, failure.seed
            )
            .unwrap();
        }
        reports.push(report.to_json());
    }
    for tree in &trees {
        let report = explore_tree(tree, first..=last);
        writeln!(
            out,
            "{}: seeds {first}..={last} runs={} ticks={} frames={} \
             stall_backpressure={} failures={}",
            report.scenario,
            report.runs,
            report.ticks,
            report.frames,
            report.stall_backpressure,
            report.failures.len()
        )
        .unwrap();
        for failure in &report.failures {
            failing_seeds += 1;
            writeln!(
                out,
                "  FAIL seed {}: {:?}",
                failure.seed, failure.violations
            )
            .unwrap();
            writeln!(
                out,
                "    replay: concentrator sim --scenario {} --seed {}",
                report.scenario, failure.seed
            )
            .unwrap();
        }
        reports.push(report.to_json());
    }

    if args.has_flag("json") || args.optional("out").is_some() {
        let value = object([
            ("passed", (failing_seeds == 0).to_json()),
            ("first_seed", first.to_json()),
            ("last_seed", last.to_json()),
            ("reports", Value::Array(reports)),
        ]);
        let text = format!("{}\n", serde_json::to_string_pretty(&value).unwrap());
        if let Some(path) = args.optional("out") {
            // Written even on failure: CI uploads this as the
            // failing-seed artifact.
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            writeln!(out, "wrote {path} ({} bytes)", text.len()).unwrap();
        } else {
            out = text;
        }
    }

    if failing_seeds > 0 {
        return Err(format!(
            "{out}{failing_seeds} failing seed(s) — replay each with \
             `concentrator sim --scenario <name> --seed <s>` (add --trace for \
             flat fabric scenarios)"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Parsed {
        Parsed::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn design_rejects_bad_load() {
        assert!(design(&parse(&["--n", "64", "--pins", "64", "--load", "2.0"])).is_err());
    }

    #[test]
    fn design_rejects_non_square_n() {
        assert!(design(&parse(&["--n", "100", "--pins", "64"])).is_err());
    }

    #[test]
    fn route_validates_bit_string() {
        let args = parse(&["--design", "columnsort:8x2:12", "--valid", "10x"]);
        assert!(route(&args).is_err());
        let args = parse(&["--design", "columnsort:8x2:12", "--valid", "101"]);
        assert!(route(&args).is_err(), "wrong length must error");
    }

    #[test]
    fn package_text_mentions_chips() {
        let args = parse(&["--design", "columnsort:8x4:18"]);
        let text = package(&args).unwrap();
        assert!(text.contains("8-by-8 hyperconcentrator"));
    }

    #[test]
    fn fabric_bench_reports_batching_win() {
        let args = parse(&[
            "--design",
            "revsort:16:8",
            "--frames",
            "12",
            "--shards",
            "2",
        ]);
        let text = fabric_bench(&args).unwrap();
        assert!(text.contains("sweep speedup"), "{text}");
        assert!(text.contains("batched:"), "{text}");
    }

    #[test]
    fn fabric_bench_json_is_valid() {
        let args = parse(&[
            "--design",
            "revsort:16:8",
            "--frames",
            "8",
            "--policy",
            "reject",
            "--placement",
            "hash",
            "--json",
        ]);
        let text = fabric_bench(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert!(v["sweep_ratio"].as_f64().unwrap() >= 1.0);
        assert_eq!(v["shards"].as_u64(), Some(2));
    }

    #[test]
    fn fabric_bench_rejects_bad_policy() {
        let args = parse(&["--design", "revsort:16:8", "--policy", "nope"]);
        assert!(fabric_bench(&args).is_err());
    }

    #[test]
    fn trace_gen_writes_a_replayable_trace() {
        let path = std::env::temp_dir().join(format!("cli-trace-gen-{}.ctrc", std::process::id()));
        let path_s = path.to_str().unwrap();
        let text = trace_gen(&parse(&[
            "--out",
            path_s,
            "--model",
            "mmpp",
            "--design",
            "revsort:16:8",
            "--ticks",
            "12",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert!(text.contains("fnv1a"), "{text}");
        let bench = fabric_bench(&parse(&[
            "--trace",
            path_s,
            "--design",
            "revsort:16:8",
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&bench).expect("valid json");
        assert_eq!(
            v["generated"], v["records"],
            "wire-space replay offers one message per record: {bench}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_gen_jsonl_flavor_is_json_lines() {
        let path =
            std::env::temp_dir().join(format!("cli-trace-jsonl-{}.jsonl", std::process::id()));
        let path_s = path.to_str().unwrap();
        trace_gen(&parse(&[
            "--out",
            path_s,
            "--model",
            "bernoulli",
            "--design",
            "revsort:16:8",
            "--ticks",
            "6",
            "--jsonl",
        ]))
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(
            bytes.first(),
            Some(&b'{'),
            "jsonl flavor starts with a header object"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fabric_bench_trace_accepts_model_names_and_rejects_noise() {
        let text = fabric_bench(&parse(&[
            "--trace",
            "zipf-population",
            "--design",
            "revsort:16:8",
            "--ticks",
            "10",
            "--population",
            "1000",
        ]))
        .unwrap();
        assert!(text.contains("trace replay"), "{text}");
        assert!(fabric_bench(&parse(&["--trace", "frobnicate"])).is_err());
    }

    #[test]
    fn trace_gen_adversarial_reports_the_attack_score() {
        let path = std::env::temp_dir().join(format!("cli-trace-adv-{}.ctrc", std::process::id()));
        let path_s = path.to_str().unwrap();
        let text = trace_gen(&parse(&[
            "--out",
            path_s,
            "--model",
            "adversarial",
            "--design",
            "revsort:16:8",
            "--restarts",
            "2",
            "--rounds",
            "6",
            "--ticks",
            "4",
        ]))
        .unwrap();
        assert!(text.contains("attack: score"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fabric_bench_reconfig_soak_is_lossless() {
        let args = parse(&[
            "--reconfig",
            "--design",
            "revsort:16:8",
            "--frames",
            "8",
            "--producers",
            "2",
        ]);
        let text = fabric_bench(&args).unwrap();
        assert!(text.contains("1 -> 4 -> 2 shards"), "{text}");
        assert!(text.contains("lossless"), "{text}");
    }

    #[test]
    fn fabric_bench_reconfig_json_reports_phase_epochs() {
        let args = parse(&[
            "--reconfig",
            "--design",
            "revsort:16:8",
            "--frames",
            "6",
            "--json",
        ]);
        let text = fabric_bench(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["lossless"], true);
        assert_eq!(v["generated"], v["delivered"]);
        let phases = v["phases"].as_array().unwrap();
        assert_eq!(phases.len(), 3);
        // Grow is three epoch bumps, shrink two more.
        assert_eq!(phases[0]["epoch"].as_u64(), Some(0));
        assert_eq!(phases[1]["epoch"].as_u64(), Some(3));
        assert_eq!(phases[2]["epoch"].as_u64(), Some(5));
    }

    #[test]
    fn fabric_bench_scaling_reports_every_rung_with_shard_breakdown() {
        let args = parse(&[
            "--scaling",
            "--n",
            "128",
            "--frames",
            "1",
            "--producers",
            "1",
            "--payload",
            "2",
            "--seed",
            "5",
        ]);
        let text = fabric_bench(&args).unwrap();
        assert!(text.contains("multichip scaling ladder"), "{text}");
        for rung in ["128->64", "64->32", "32->16", "16->8"] {
            assert!(text.contains(rung), "missing rung {rung}: {text}");
        }
        assert!(text.contains("utilization"), "{text}");
    }

    #[test]
    fn fabric_bench_scaling_json_has_efficiency_and_per_shard_rates() {
        let args = parse(&[
            "--scaling",
            "--n",
            "128",
            "--frames",
            "1",
            "--producers",
            "1",
            "--payload",
            "2",
            "--seed",
            "5",
            "--json",
        ]);
        let text = fabric_bench(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["aggregate_n"].as_u64(), Some(128));
        assert!(v["cores"].as_u64().unwrap() >= 1);
        let points = v["points"].as_array().expect("points array");
        assert_eq!(points.len(), 4);
        assert!((points[0]["scaling_efficiency"].as_f64().unwrap() - 1.0).abs() < 1e-9);
        for (i, point) in points.iter().enumerate() {
            let chips = point["chips"].as_u64().unwrap();
            assert_eq!(chips, [1, 2, 4, 8][i]);
            let shards = point["per_shard"].as_array().expect("per_shard array");
            assert_eq!(shards.len(), chips as usize);
            for s in shards {
                assert!(s["utilization"].as_f64().unwrap() <= 1.0);
                assert!(s["msgs_per_sec"].as_f64().is_some());
            }
            // Constant offered load along the ladder.
            assert_eq!(point["generated"].as_u64(), points[0]["generated"].as_u64());
        }
    }

    #[test]
    fn fabric_bench_scaling_rejects_misaligned_aggregate() {
        let args = parse(&["--scaling", "--n", "100"]);
        assert!(fabric_bench(&args).is_err());
    }

    #[test]
    fn fault_campaign_reports_degradation() {
        let args = parse(&[
            "--design",
            "revsort:16:8",
            "--frames",
            "16",
            "--seed",
            "3",
            "--permanent",
            "0.2",
        ]);
        let text = fault_campaign(&args).unwrap();
        assert!(text.contains("delivery rate"), "{text}");
        assert!(text.contains("distinct fault sets"), "{text}");
        // Same seed, same report.
        assert_eq!(text, fault_campaign(&args).unwrap());
    }

    #[test]
    fn fault_campaign_json_is_valid() {
        let args = parse(&[
            "--design",
            "revsort:16:8",
            "--frames",
            "8",
            "--seed",
            "9",
            "--json",
        ]);
        let text = fault_campaign(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["report"]["frames"].as_u64(), Some(8));
        assert!(v["delivery_rate"].as_f64().unwrap() <= 1.0);
        assert!(v["baseline_delivery_rate"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn fault_campaign_rejects_bad_rates() {
        let args = parse(&["--design", "revsort:16:8", "--permanent", "1.5"]);
        assert!(fault_campaign(&args).is_err());
        let args = parse(&["--design", "revsort:16:8", "--load", "-0.1"]);
        assert!(fault_campaign(&args).is_err());
    }

    #[test]
    fn sim_replay_is_bit_identical() {
        // The replay contract end to end: same scenario, same seed, same
        // CLI invocation → byte-identical trace output, twice.
        let args = parse(&["--scenario", "drain-shed", "--seed", "5", "--trace"]);
        let first = sim(&args).unwrap();
        let second = sim(&args).unwrap();
        assert_eq!(first, second, "replay diverged between identical runs");
        assert!(first.contains("trace: drain-shed seed 5"), "{first}");
        assert!(first.contains("Frame {"), "{first}");
        assert!(first.contains("failures=0"), "{first}");
    }

    #[test]
    fn sim_explores_a_seed_range() {
        let args = parse(&["--scenario", "drain-block", "--seeds", "4", "--base", "10"]);
        let text = sim(&args).unwrap();
        assert!(text.contains("seeds 10..=13 runs=4"), "{text}");
        assert!(text.contains("failures=0"), "{text}");
    }

    #[test]
    fn sim_json_report_is_valid() {
        let args = parse(&["--scenario", "campaign", "--seeds", "2", "--json"]);
        let text = sim(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["passed"], true);
        assert_eq!(v["reports"][0]["scenario"], "campaign");
        assert_eq!(v["reports"][0]["runs"].as_u64(), Some(2));
    }

    #[test]
    fn sim_explores_the_tier_catalogue() {
        let args = parse(&[
            "--scenario",
            "tiers",
            "--seeds",
            "2",
            "--base",
            "3",
            "--json",
        ]);
        let text = sim(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["passed"], true);
        let reports = v["reports"].as_array().expect("reports array");
        assert_eq!(reports.len(), 3, "{text}");
        let names: Vec<&str> = reports
            .iter()
            .map(|r| r["scenario"].as_str().unwrap())
            .collect();
        assert!(names.contains(&"tier-spine-stall"), "{names:?}");
        // Tree reports carry the backpressure counter flat reports lack.
        assert!(reports[0]["stall_backpressure"].as_u64().is_some());
    }

    #[test]
    fn sim_explores_the_reconfig_group() {
        let args = parse(&[
            "--scenario",
            "reconfig",
            "--seeds",
            "2",
            "--base",
            "5",
            "--json",
        ]);
        let text = sim(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["passed"], true);
        let names: Vec<&str> = v["reports"]
            .as_array()
            .expect("reports array")
            .iter()
            .map(|r| r["scenario"].as_str().unwrap())
            .collect();
        assert_eq!(
            names,
            [
                "resize-under-drain",
                "swap-during-campaign",
                "scale-down-while-quarantined",
                "slo-shed-burst"
            ],
            "{text}"
        );
    }

    #[test]
    fn sim_runs_a_single_tree_scenario_by_name() {
        let args = parse(&["--scenario", "tier-leaf-burst", "--seed", "11"]);
        let text = sim(&args).unwrap();
        assert!(text.contains("tier-leaf-burst: seeds 11..=11"), "{text}");
        assert!(text.contains("failures=0"), "{text}");
    }

    #[test]
    fn sim_refuses_to_trace_tree_scenarios() {
        let args = parse(&["--scenario", "tier-spine-stall", "--seed", "1", "--trace"]);
        let err = sim(&args).unwrap_err();
        assert!(err.contains("flat fabric scenarios only"), "{err}");
    }

    #[test]
    fn sim_unknown_scenario_lists_tree_names_too() {
        let args = parse(&["--scenario", "nope"]);
        let err = sim(&args).unwrap_err();
        assert!(err.contains("tier-spine-stall"), "{err}");
        assert!(err.contains("drain-block"), "{err}");
    }

    #[test]
    fn fabric_bench_accepts_zipf_model() {
        let args = parse(&[
            "--design",
            "revsort:16:8",
            "--frames",
            "8",
            "--model",
            "zipf",
            "--population",
            "100000",
            "--exponent",
            "1.2",
        ]);
        let text = fabric_bench(&args).unwrap();
        assert!(text.contains("Zipf"), "{text}");
        assert!(text.contains("sweep speedup"), "{text}");
    }

    #[test]
    fn fabric_bench_rejects_bad_zipf_parameters() {
        let args = parse(&[
            "--design",
            "revsort:16:8",
            "--model",
            "zipf",
            "--population",
            "0",
        ]);
        assert!(fabric_bench(&args).is_err());
        let args = parse(&[
            "--design",
            "revsort:16:8",
            "--model",
            "zipf",
            "--exponent",
            "-1",
        ]);
        assert!(fabric_bench(&args).is_err());
        let args = parse(&["--design", "revsort:16:8", "--model", "martian"]);
        assert!(fabric_bench(&args).is_err());
    }

    #[test]
    fn fabric_bench_scaling_json_records_thread_parallelism() {
        let args = parse(&[
            "--scaling",
            "--n",
            "128",
            "--frames",
            "1",
            "--producers",
            "1",
            "--payload",
            "2",
            "--seed",
            "5",
            "--json",
        ]);
        let text = fabric_bench(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        let points = v["points"].as_array().expect("points array");
        for point in points {
            let threads = point["threads"].as_u64().expect("threads recorded");
            assert!(threads >= 1);
            assert!(threads <= point["chips"].as_u64().unwrap());
            let normalized = point["scaling_efficiency_normalized"]
                .as_f64()
                .expect("normalized efficiency recorded");
            assert!(normalized > 0.0);
        }
    }

    #[test]
    fn tier_bench_text_reports_tiers_and_baseline() {
        let args = parse(&[
            "--leaves",
            "2",
            "--frames",
            "2",
            "--producers",
            "1",
            "--sources",
            "32",
        ]);
        let text = tier_bench(&args).unwrap();
        assert!(text.contains("tier bench: 2 leaves"), "{text}");
        assert!(text.contains("tier 0"), "{text}");
        assert!(text.contains("tier 2"), "{text}");
        assert!(text.contains("slowest single spine"), "{text}");
        assert!(text.contains("zipf"), "{text}");
    }

    #[test]
    fn tier_bench_json_carries_the_release_gate() {
        let args = parse(&[
            "--leaves",
            "2",
            "--frames",
            "2",
            "--producers",
            "1",
            "--sources",
            "32",
            "--json",
        ]);
        let text = tier_bench(&args).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["leaves"].as_u64(), Some(2));
        let gate = &v["tree_beats_slowest_single_spine"];
        assert!(matches!(gate, serde_json::Value::Bool(_)), "{gate:?}");
        assert_eq!(v["per_tier"].as_array().unwrap().len(), 3);
        assert_eq!(v["snapshot"]["ledger"]["holds"], true);
    }

    #[test]
    fn tier_bench_rejects_bad_geometry() {
        let args = parse(&["--leaves", "3"]);
        assert!(tier_bench(&args).is_err());
        let args = parse(&["--leaves", "128"]);
        assert!(tier_bench(&args).is_err());
        let args = parse(&["--load", "1.5"]);
        assert!(tier_bench(&args).is_err());
        let args = parse(&["--population", "0"]);
        assert!(tier_bench(&args).is_err());
    }

    #[test]
    fn sim_rejects_unknown_scenario_and_bad_trace_usage() {
        let err = sim(&parse(&["--scenario", "nope"])).unwrap_err();
        assert!(err.contains("drain-block"), "{err}");
        // --trace without a pinned seed is ambiguous.
        assert!(sim(&parse(&["--scenario", "flap", "--trace"])).is_err());
        assert!(sim(&parse(&["--trace", "--seed", "1"])).is_err());
    }

    #[test]
    fn svg_writes_file() {
        let dir = std::env::temp_dir().join("concentrator_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("layout.svg");
        let args_vec = vec![
            "--design".to_string(),
            "columnsort:8x4:18".to_string(),
            "--out".to_string(),
            path.to_string_lossy().to_string(),
        ];
        let args = Parsed::parse(&args_vec).unwrap();
        let msg = svg(&args).unwrap();
        assert!(msg.contains("wrote"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
    }
}
