//! `concentrator` — command-line front end for the multichip partial
//! concentrator switch library.
//!
//! ```text
//! concentrator design  --n 4096 --pins 256 [--load 0.4]
//! concentrator route   --design revsort:4096:2048 --valid 1011010...
//! concentrator verify  --design columnsort:64x4:128 [--trials 2000]
//! concentrator package --design revsort:1024:512 [--dim 3d] [--json]
//! concentrator svg     --design columnsort:8x4:18 --out layout.svg
//! concentrator fabric-bench --frames 64 --shards 2
//! concentrator trace-gen --model mmpp --ticks 256 --out workload.ctrc
//! concentrator fabric-bench --trace workload.ctrc
//! concentrator tier-bench --leaves 8 --frames 12 --json
//! concentrator fault-campaign --design revsort:64:32 --seed 7 --json
//! concentrator sim --scenario flap --seed 31 --trace
//! ```
//!
//! Design specifiers: `revsort:<n>:<m>` or `columnsort:<r>x<s>:<m>`.

use std::process::ExitCode;

mod args;
mod commands;
mod design;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `concentrator help` for usage");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<String, String> {
    let Some(command) = argv.first() else {
        return Ok(commands::help());
    };
    let rest = args::Parsed::parse(&argv[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(commands::help()),
        "design" => commands::design(&rest),
        "route" => commands::route(&rest),
        "verify" => commands::verify(&rest),
        "package" => commands::package(&rest),
        "svg" => commands::svg(&rest),
        "export" => commands::export(&rest),
        "fabric-bench" => commands::fabric_bench(&rest),
        "trace-gen" => commands::trace_gen(&rest),
        "tier-bench" => commands::tier_bench(&rest),
        "fault-campaign" => commands::fault_campaign(&rest),
        "sim" => commands::sim(&rest),
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).expect("command")
    }

    #[test]
    fn help_lists_commands() {
        let text = run_ok(&["help"]);
        for cmd in [
            "design",
            "route",
            "verify",
            "package",
            "svg",
            "export",
            "fabric-bench",
            "trace-gen",
            "tier-bench",
            "fault-campaign",
            "sim",
        ] {
            assert!(text.contains(cmd), "help missing {cmd}");
        }
        assert_eq!(run_ok(&[]), text);
    }

    #[test]
    fn design_recommends_under_pin_budget() {
        let text = run_ok(&["design", "--n", "1024", "--pins", "128"]);
        assert!(text.contains("fits"), "{text}");
    }

    #[test]
    fn route_reports_paths() {
        let text = run_ok(&[
            "route",
            "--design",
            "columnsort:8x2:12",
            "--valid",
            "1010010010100101",
        ]);
        assert!(text.contains("delivered"), "{text}");
    }

    #[test]
    fn verify_runs_clean() {
        let text = run_ok(&["verify", "--design", "columnsort:8x4:24", "--trials", "200"]);
        assert!(text.contains("0 failures"), "{text}");
    }

    #[test]
    fn package_emits_json_when_asked() {
        let text = run_ok(&[
            "package",
            "--design",
            "revsort:64:28",
            "--dim",
            "3d",
            "--json",
        ]);
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["stacks"], 3);
    }

    #[test]
    fn unknown_command_errors() {
        let argv = vec!["frobnicate".to_string()];
        assert!(run(&argv).is_err());
    }
}
