//! Tiny `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` pairs and bare `--switch` flags.
#[derive(Debug, Default)]
pub struct Parsed {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Parsed {
    /// Parse a flat argument list. Every token must be `--key` optionally
    /// followed by a non-`--` value.
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut parsed = Parsed::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(format!("unexpected argument `{token}` (flags are --key)"));
            };
            if key.is_empty() {
                return Err("empty flag `--`".into());
            }
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                parsed.values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                parsed.flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(parsed)
    }

    /// A required string value.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string value.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required parsed value.
    pub fn required_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.required(key)?.parse().map_err(|_| {
            format!(
                "--{key} has an invalid value `{}`",
                self.required(key).unwrap()
            )
        })
    }

    /// An optional parsed value with default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.optional(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key} has an invalid value `{raw}`")),
        }
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let p = Parsed::parse(&to_vec(&["--n", "64", "--json", "--m", "28"])).unwrap();
        assert_eq!(p.required("n").unwrap(), "64");
        assert_eq!(p.required_parse::<usize>("m").unwrap(), 28);
        assert!(p.has_flag("json"));
        assert!(!p.has_flag("quiet"));
    }

    #[test]
    fn missing_required_is_an_error() {
        let p = Parsed::parse(&to_vec(&["--n", "64"])).unwrap();
        assert!(p.required("m").is_err());
        assert_eq!(p.parse_or::<usize>("m", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_bare_positional() {
        assert!(Parsed::parse(&to_vec(&["value"])).is_err());
        assert!(Parsed::parse(&to_vec(&["--"])).is_err());
    }

    #[test]
    fn invalid_numbers_are_reported() {
        let p = Parsed::parse(&to_vec(&["--n", "abc"])).unwrap();
        assert!(p.required_parse::<usize>("n").is_err());
    }
}
