//! End-to-end conservation over the full backpressure policy matrix:
//! every leaf×spine combination of Block / ShedOldest / Reject, driven
//! synchronously over 100 workload seeds. The end-to-end identity
//! (`offered_external = delivered + Σ drops + in_flight + held`) must
//! hold at drain for every combination, and the Block×Block column must
//! additionally be lossless.

use std::sync::{Arc, OnceLock};

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::staged::StagedSwitch;
use concentrator::FullColumnsortHyperconcentrator;
use fabric::{Backpressure, FabricConfig, LoadPlan, RetryBudget};
use switchsim::TrafficModel;
use tiers::{drive_tree, drive_tree_trace, TierSpec, TierTopology};

fn leaf_switch() -> Arc<StagedSwitch> {
    static SWITCH: OnceLock<Arc<StagedSwitch>> = OnceLock::new();
    Arc::clone(SWITCH.get_or_init(|| {
        Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        )
    }))
}

fn spine_switch() -> Arc<StagedSwitch> {
    static SWITCH: OnceLock<Arc<StagedSwitch>> = OnceLock::new();
    Arc::clone(
        SWITCH
            .get_or_init(|| Arc::new(FullColumnsortHyperconcentrator::new(8, 2).staged().clone())),
    )
}

fn matrix_topology(leaf_bp: Backpressure, spine_bp: Backpressure) -> TierTopology {
    let mut leaf_config = FabricConfig::new(1);
    leaf_config.queue_capacity = 2;
    leaf_config.backpressure = leaf_bp;
    let mut spine_config = FabricConfig::new(1);
    spine_config.queue_capacity = 2;
    spine_config.backpressure = spine_bp;
    TierTopology::new(vec![
        TierSpec {
            fabrics: 2,
            switch: leaf_switch(),
            config: leaf_config,
        },
        TierSpec {
            fabrics: 1,
            switch: spine_switch(),
            config: spine_config,
        },
    ])
}

#[test]
fn every_backpressure_combination_conserves_over_100_seeds() {
    let policies = [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ];
    for leaf_bp in policies {
        for spine_bp in policies {
            for seed in 0..100u64 {
                let topology = matrix_topology(leaf_bp, spine_bp);
                let plan = LoadPlan {
                    model: TrafficModel::Bernoulli { p: 0.7 },
                    payload_bytes: 2,
                    seed,
                    frames: 2,
                };
                let report = drive_tree(&topology, &plan, 2, 32);
                let ledger = report.snapshot.ledger();
                assert!(
                    ledger.holds(),
                    "{leaf_bp:?}x{spine_bp:?} seed {seed}: {ledger:?}"
                );
                assert_eq!(ledger.in_flight, 0, "{leaf_bp:?}x{spine_bp:?} seed {seed}");
                assert_eq!(ledger.held, 0, "{leaf_bp:?}x{spine_bp:?} seed {seed}");
                assert_eq!(
                    report.completions.len() as u64,
                    ledger.delivered,
                    "{leaf_bp:?}x{spine_bp:?} seed {seed}"
                );
                // Fully blocking tiers with unlimited retries are
                // lossless: every generated message reaches the spine.
                if leaf_bp == Backpressure::Block && spine_bp == Backpressure::Block {
                    assert_eq!(
                        ledger.delivered, report.generated,
                        "Block x Block must be lossless (seed {seed})"
                    );
                }
            }
        }
    }
}

#[test]
fn sync_tree_drive_is_deterministic() {
    let topology = matrix_topology(Backpressure::Block, Backpressure::Block);
    let plan = LoadPlan {
        model: TrafficModel::Zipf {
            p: 0.6,
            population: 1_000_000,
            exponent: 1.1,
        },
        payload_bytes: 2,
        seed: 42,
        frames: 3,
    };
    let a = drive_tree(&topology, &plan, 2, 64);
    let b = drive_tree(&topology, &plan, 2, 64);
    assert_eq!(a, b, "same plan, same topology must be bit-identical");
    assert!(a.generated > 0);
}

#[test]
fn trace_driven_tree_conserves_and_replays_bit_identically() {
    let topology = matrix_topology(Backpressure::Block, Backpressure::Block);
    let trace = fabric::trace::generate(
        fabric::TraceModel::mmpp_from_bursty(0.6, 4.0),
        32,
        24,
        1,
        0x7133_57AC,
    );
    let a = drive_tree_trace(&topology, &trace, 32);
    let b = drive_tree_trace(&topology, &trace, 32);
    assert_eq!(a, b, "same trace, same topology must be bit-identical");
    assert_eq!(a.generated, trace.len() as u64, "one offer per record");
    let ledger = a.snapshot.ledger();
    assert!(ledger.holds(), "{ledger:?}");
    assert_eq!(
        ledger.delivered, a.generated,
        "Block x Block trace drive must be lossless"
    );
    // Round-tripping the trace through the binary codec drives the
    // identical tree: replay from a file is replay from memory.
    let decoded =
        fabric::trace::decode(&fabric::trace::encode(&trace, fabric::TraceFlavor::Binary))
            .expect("codec round-trip");
    assert_eq!(drive_tree_trace(&topology, &decoded, 32), a);
}

#[test]
fn limited_retries_surface_as_retry_dropped_in_the_ledger() {
    // Leaves with a tiny output count (16 -> 2 Columnsort chips) so
    // adversarial frames always carry more offers than outputs; with no
    // retry budget every contention loser is dropped at the leaf — and
    // the end-to-end ledger must absorb them as `retry_dropped`.
    let mut topology = matrix_topology(Backpressure::Block, Backpressure::Block);
    topology.tiers[0].switch = Arc::new(
        concentrator::columnsort_switch::ColumnsortSwitch::new(4, 4, 2)
            .staged()
            .clone(),
    );
    topology.tiers[0].config.retry = RetryBudget::limited(0);
    topology.tiers[0].config.queue_capacity = 64;
    topology.tiers[1].config.queue_capacity = 64;
    // Bernoulli (not Adversarial) so the producers' independent seeds
    // spread sources across wires within a round — identical lockstep
    // scripts would pile every offer onto one wire per frame.
    let plan = LoadPlan {
        model: TrafficModel::Bernoulli { p: 0.9 },
        payload_bytes: 2,
        seed: 7,
        frames: 2,
    };
    let report = drive_tree(&topology, &plan, 16, 64);
    let ledger = report.snapshot.ledger();
    assert!(ledger.holds(), "{ledger:?}");
    assert!(
        ledger.retry_dropped > 0,
        "overload over 16->2 leaves with no retries must drop: {ledger:?}"
    );
}
