//! The threaded tree: real threads, real blocking backpressure,
//! cascaded drain — same conservation guarantees as the sync driver.

use std::sync::{Arc, OnceLock};

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::staged::StagedSwitch;
use concentrator::FullColumnsortHyperconcentrator;
use fabric::{producer_script, FabricConfig, LoadPlan};
use switchsim::TrafficModel;
use tiers::{TierService, TierSpec, TierTopology};

fn leaf_switch() -> Arc<StagedSwitch> {
    static SWITCH: OnceLock<Arc<StagedSwitch>> = OnceLock::new();
    Arc::clone(SWITCH.get_or_init(|| {
        Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        )
    }))
}

fn spine_switch() -> Arc<StagedSwitch> {
    static SWITCH: OnceLock<Arc<StagedSwitch>> = OnceLock::new();
    Arc::clone(
        SWITCH
            .get_or_init(|| Arc::new(FullColumnsortHyperconcentrator::new(8, 2).staged().clone())),
    )
}

#[test]
fn threaded_tree_is_lossless_under_blocking_backpressure() {
    let mut leaf_config = FabricConfig::new(2);
    leaf_config.queue_capacity = 4;
    let spine_config = FabricConfig::new(1);
    let topology = TierTopology::new(vec![
        TierSpec {
            fabrics: 2,
            switch: leaf_switch(),
            config: leaf_config,
        },
        TierSpec {
            fabrics: 2,
            switch: spine_switch(),
            config: spine_config,
        },
    ]);
    let service = TierService::start(topology);
    let plan = LoadPlan {
        model: TrafficModel::Zipf {
            p: 0.7,
            population: 500_000,
            exponent: 1.1,
        },
        payload_bytes: 2,
        seed: 21,
        frames: 20,
    };
    let generated: u64 = std::thread::scope(|scope| {
        (0..3)
            .map(|p| {
                let service = &service;
                let plan = &plan;
                scope.spawn(move || {
                    let script = producer_script(plan, 256, p);
                    let count = script.len() as u64;
                    for message in script {
                        service.submit(message);
                    }
                    count
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    let report = service.drain();
    let ledger = report.snapshot.ledger();
    assert!(ledger.holds(), "{ledger:?}");
    assert_eq!(ledger.in_flight, 0);
    assert_eq!(ledger.held, 0);
    // Blocking everywhere + unlimited retries: lossless end to end.
    assert_eq!(ledger.delivered, generated, "{ledger:?}");
    assert_eq!(report.completions.len() as u64, generated);
    // Everything the leaves delivered crossed the link.
    assert_eq!(report.forwarded.len(), 1);
    assert_eq!(report.forwarded[0], ledger.delivered);
    // Payload integrity survived two hops of re-framing: ids unique.
    let mut ids: Vec<u64> = report.completions.iter().map(|d| d.message.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, generated, "duplicate or lost ids");
}
