//! Tree-wide metrics: per-tier snapshots and the end-to-end
//! conservation ledger.

use fabric::{FabricSnapshot, ShardMetrics};
use serde_json::{object, ToJson, Value};

/// The end-to-end conservation ledger of a concentrator tree. See
/// [`crate::core::tree_ledger`] for how the per-tier identities
/// telescope into this one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeLedger {
    /// Messages offered at leaf admission (external traffic only).
    pub offered_external: u64,
    /// Messages delivered by the spine tier (the tree's completions).
    pub delivered: u64,
    /// Admission/queue rejections, summed over every tier.
    pub rejected: u64,
    /// Sheds (queue evictions and frame overflow), summed over every
    /// tier.
    pub shed: u64,
    /// Retry-budget drops, summed over every tier.
    pub retry_dropped: u64,
    /// Messages in flight inside some fabric (queued or pending).
    pub in_flight: u64,
    /// Messages held on inter-tier links (remapped, awaiting downstream
    /// credit).
    pub held: u64,
}

impl TreeLedger {
    /// The end-to-end identity: every external offer is accounted for.
    pub fn holds(&self) -> bool {
        self.offered_external
            == self.delivered
                + self.rejected
                + self.shed
                + self.retry_dropped
                + self.in_flight
                + self.held
    }
}

/// Drain-time (or quiescent) state of the whole tree: per-fabric
/// snapshots grouped by tier, plus the link holds.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSnapshot {
    /// `tiers[t][f]` is tier `t` fabric `f`'s snapshot (queue counters
    /// folded in exactly once).
    pub tiers: Vec<Vec<FabricSnapshot>>,
    /// Messages held on inter-tier links (zero once drained).
    pub held: u64,
}

impl TreeSnapshot {
    /// Summed metrics of one tier.
    pub fn tier_totals(&self, tier: usize) -> ShardMetrics {
        let mut totals = ShardMetrics::default();
        for fabric in &self.tiers[tier] {
            totals.merge(&fabric.totals());
        }
        totals
    }

    /// Messages in flight anywhere in the tree.
    pub fn in_flight(&self) -> u64 {
        self.tiers
            .iter()
            .flatten()
            .map(|fabric| fabric.in_flight)
            .sum()
    }

    /// The tree's conservation ledger, assembled from the per-tier
    /// totals.
    pub fn ledger(&self) -> TreeLedger {
        let mut ledger = TreeLedger {
            offered_external: self.tier_totals(0).offered,
            held: self.held,
            in_flight: self.in_flight(),
            ..TreeLedger::default()
        };
        let spine = self.tiers.len() - 1;
        ledger.delivered = self.tier_totals(spine).delivered;
        for tier in 0..self.tiers.len() {
            let totals = self.tier_totals(tier);
            ledger.rejected += totals.rejected;
            ledger.shed += totals.shed;
            ledger.retry_dropped += totals.retry_dropped;
        }
        ledger
    }

    /// Whether the end-to-end conservation identity holds.
    pub fn conserved_end_to_end(&self) -> bool {
        self.ledger().holds()
    }
}

impl ToJson for TreeLedger {
    fn to_json(&self) -> Value {
        object([
            ("offered_external", self.offered_external.to_json()),
            ("delivered", self.delivered.to_json()),
            ("rejected", self.rejected.to_json()),
            ("shed", self.shed.to_json()),
            ("retry_dropped", self.retry_dropped.to_json()),
            ("in_flight", self.in_flight.to_json()),
            ("held", self.held.to_json()),
            ("holds", Value::Bool(self.holds())),
        ])
    }
}

impl ToJson for TreeSnapshot {
    fn to_json(&self) -> Value {
        object([
            (
                "tiers",
                Value::Array(
                    (0..self.tiers.len())
                        .map(|t| {
                            let totals = self.tier_totals(t);
                            object([
                                ("tier", t.to_json()),
                                ("fabrics", self.tiers[t].len().to_json()),
                                ("totals", totals.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("held", self.held.to_json()),
            ("ledger", self.ledger().to_json()),
        ])
    }
}
