//! The threaded tree: one OS thread per `(tier, fabric, shard)` looping
//! the shard's blocking step and forwarding deliveries downstream with
//! real blocking backpressure (`submit_blocking`) — a full spine
//! pushes the forwarding thread onto the downstream ring's condvar,
//! which fills the upstream ring, which blocks external producers at
//! leaf admission: the threaded realization of the credit handshake the
//! single-step [`crate::core::TierWorker`] models.
//!
//! Drain cascades tier by tier: close the leaves, join their workers
//! (flushing every uplink), then close the next tier, and so on — no
//! message can be in transit past a joined tier, so the drain-time
//! snapshot satisfies the end-to-end identity exactly.

use std::sync::Arc;
use std::thread::JoinHandle;

use fabric::{Delivery, Message, ShardMetrics, SubmitOutcome, WorkerStep};

use crate::core::{pick_downstream, TierCore};
use crate::snapshot::TreeSnapshot;
use crate::topology::TierTopology;

/// What one joined worker thread hands back.
struct TierWorkerResult {
    tier: usize,
    fabric: usize,
    metrics: ShardMetrics,
    /// Spine deliveries only (other tiers forward instead).
    deliveries: Vec<Delivery>,
    forwarded: u64,
}

/// What a threaded tree run delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct TierReport {
    /// Drain-time snapshot; link holds are zero by construction.
    pub snapshot: TreeSnapshot,
    /// Spine deliveries, grouped by join order.
    pub completions: Vec<Delivery>,
    /// Messages forwarded across inter-tier links, per tier boundary
    /// (`forwarded[t]` = tier `t` → tier `t+1`).
    pub forwarded: Vec<u64>,
}

/// A live concurrent concentrator tree.
pub struct TierService {
    core: Arc<TierCore>,
    /// Worker handles grouped by tier, for the cascaded drain.
    workers: Vec<Vec<JoinHandle<TierWorkerResult>>>,
}

impl TierService {
    /// Spawn the whole tree: every tier's fabrics share that tier's
    /// switch (one datapath compile per tier), each shard gets a thread.
    pub fn start(topology: TierTopology) -> TierService {
        let core = Arc::new(TierCore::new(topology));
        let depth = core.topology().depth();
        let mut workers: Vec<Vec<JoinHandle<TierWorkerResult>>> =
            (0..depth).map(|_| Vec::new()).collect();
        for (tier, spec) in core.topology().tiers.iter().cloned().enumerate() {
            let downstream: Option<Vec<_>> =
                (tier + 1 < depth).then(|| core.tier_cores(tier + 1).to_vec());
            let link_ports = (tier + 1 < depth).then(|| core.topology().link_ports(tier));
            for fabric in 0..spec.fabrics {
                for shard in 0..spec.config.shards {
                    let mut worker = core
                        .core(tier, fabric)
                        .worker(shard, Arc::clone(&spec.switch));
                    let downstream = downstream.clone();
                    let forward_base = link_ports.map_or(0, |ports| fabric * ports);
                    let ports = link_ports.unwrap_or(1);
                    let handle = std::thread::Builder::new()
                        .name(format!("tier{tier}-fab{fabric}-shard{shard}"))
                        .spawn(move || {
                            let mut deliveries = Vec::new();
                            let mut forwarded = 0u64;
                            loop {
                                match worker.step_blocking() {
                                    WorkerStep::Frame(run) => match &downstream {
                                        Some(down) => {
                                            // Forward the whole frame in one batch
                                            // to the least-loaded healthy fabric:
                                            // one ring reservation and one wake
                                            // per frame keeps downstream sweeps
                                            // full instead of near-empty.
                                            if run.delivered.is_empty() {
                                                continue;
                                            }
                                            let frame: Vec<Message> = run
                                                .delivered
                                                .into_iter()
                                                .map(|delivery| {
                                                    Message::new(
                                                        delivery.message.id,
                                                        forward_base + delivery.output % ports,
                                                        delivery.message.payload,
                                                    )
                                                })
                                                .collect();
                                            forwarded += frame.len() as u64;
                                            let target = pick_downstream(down);
                                            down[target].submit_batch_blocking(frame);
                                        }
                                        None => deliveries.extend(run.delivered),
                                    },
                                    WorkerStep::Idle => {}
                                    WorkerStep::Done => break,
                                }
                            }
                            TierWorkerResult {
                                tier,
                                fabric,
                                metrics: worker.shard().metrics.clone(),
                                deliveries,
                                forwarded,
                            }
                        })
                        .expect("spawn tier worker");
                    workers[tier].push(handle);
                }
            }
        }
        TierService { core, workers }
    }

    /// Submit one external message (source id hashed onto a leaf),
    /// blocking under leaf blocking backpressure.
    pub fn submit(&self, message: Message) -> SubmitOutcome {
        self.core.submit_blocking(message)
    }

    /// Submit a whole external frame, hashed onto leaves and offered as
    /// one batch per leaf ([`TierCore::submit_batch_blocking`]).
    pub fn submit_batch(&self, messages: Vec<Message>) -> fabric::BatchSubmit {
        self.core.submit_batch_blocking(messages)
    }

    /// Messages in flight anywhere in the tree.
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight()
    }

    /// The tree's topology.
    pub fn topology(&self) -> &TierTopology {
        self.core.topology()
    }

    /// Cascaded graceful shutdown: tier by tier, refuse new work, let
    /// the tier's workers flush their backlogs *and uplinks*, join them,
    /// then close the next tier. Merges queue counters exactly once per
    /// shard.
    pub fn drain(self) -> TierReport {
        let depth = self.core.topology().depth();
        let mut tiers: Vec<Vec<fabric::FabricSnapshot>> = (0..depth)
            .map(|tier| {
                self.core
                    .tier_cores(tier)
                    .iter()
                    .map(|_| fabric::FabricSnapshot {
                        shards: Vec::new(),
                        in_flight: 0,
                    })
                    .collect()
            })
            .collect();
        let mut completions = Vec::new();
        let mut forwarded = vec![0u64; depth.saturating_sub(1)];
        for (tier, handles) in self.workers.into_iter().enumerate() {
            self.core.close_tier(tier);
            for handle in handles {
                let mut result = handle.join().expect("tier worker panicked");
                self.core
                    .core(result.tier, result.fabric)
                    .fold_queue_counters(tiers[result.tier][result.fabric].shards.len(), {
                        // Shards join in spawn order, so the next
                        // un-folded shard index is the current length.
                        &mut result.metrics
                    });
                completions.append(&mut result.deliveries);
                if result.tier + 1 < depth {
                    forwarded[result.tier] += result.forwarded;
                }
                tiers[result.tier][result.fabric]
                    .shards
                    .push(result.metrics);
            }
        }
        let snapshot = TreeSnapshot { tiers, held: 0 };
        debug_assert!(
            snapshot.conserved_end_to_end(),
            "tree drain violates end-to-end conservation: {:?}",
            snapshot.ledger()
        );
        TierReport {
            snapshot,
            completions,
            forwarded,
        }
    }
}
