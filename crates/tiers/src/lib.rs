//! `tiers` — a hierarchical fabric-of-fabrics for datacenter-scale
//! serving.
//!
//! One [`fabric::FabricService`] serves one switch's `n` inputs; the
//! north-star workload ("heavy traffic from millions of users") needs a
//! *tree*. This crate composes fabrics into tiers: external traffic is
//! source-hashed onto **leaf** fabrics (tier 0), whose deliveries are
//! concentrated onto progressively fewer, higher-capacity fabrics until
//! the **spine** — in the reference geometries a full-Columnsort or
//! full-Revsort hyperconcentrator (the paper's §6 constructions, served
//! through the same shared elaboration cache as everything else).
//!
//! The pieces:
//!
//! * [`TierTopology`] — the tree's shape: per-tier fabric counts,
//!   shared switches, configs, and the fixed inter-tier wire map.
//! * [`TierCore`] / [`TierWorker`] — the single-step data plane:
//!   per-fabric [`fabric::ServiceCore`]s joined by valid/ready links
//!   with frame-granular credit backpressure. Deterministic simulation
//!   (`simtest`) schedules these directly.
//! * [`drive_tree`] — the synchronous deterministic driver (the
//!   conservation matrix and bench determinism assertions).
//! * [`TierService`] — the threaded tree: a thread per shard, blocking
//!   forwarding, cascaded drain.
//!
//! The invariant everything preserves, end to end:
//!
//! ```text
//! offered_external = delivered_spine + Σ rejected + Σ shed
//!                  + Σ retry_dropped + Σ in_flight + Σ held_on_links
//! ```
//!
//! checked live every simulator tick ([`tree_ledger`]) and exactly at
//! drain ([`TreeSnapshot::conserved_end_to_end`]).

pub mod bench;
pub mod core;
pub mod service;
pub mod snapshot;
pub mod sync;
pub mod topology;

pub use crate::core::{
    pick_downstream, tree_ledger, tree_snapshot, TierCore, TierStep, TierSubmit, TierWorker,
};
pub use bench::{
    reference_tree, run_tree_bench, slowest_single_spine, TierBenchOptions, TierThroughput,
    TreeBenchReport,
};
pub use service::{TierReport, TierService};
pub use snapshot::{TreeLedger, TreeSnapshot};
pub use sync::{drive_tree, drive_tree_trace, TreeReport};
pub use topology::{TierSpec, TierTopology};
