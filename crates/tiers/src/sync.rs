//! The deterministic synchronous tree driver: fixed round-robin
//! stepping of external producers and every worker in `(tier, fabric,
//! shard)` order. No threads, no entropy beyond the workload seeds —
//! same topology, same plan ⇒ bit-identical [`TreeReport`]. The
//! conservation matrix test and the bench's determinism assertion run
//! through this; the seeded-interleaving explorer lives in `simtest`.

use fabric::{producer_script, Delivery, LoadPlan, Trace};

use crate::core::{tree_ledger, tree_snapshot, TierCore, TierStep, TierSubmit};
use crate::snapshot::TreeSnapshot;
use crate::topology::TierTopology;

/// Rounds the driver may run before declaring the tree wedged.
const ROUND_LIMIT: u64 = 1 << 22;

/// What a synchronous tree drive did.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeReport {
    /// Fresh messages the producers generated.
    pub generated: u64,
    /// Spine deliveries (the tree's completions), in completion order.
    pub completions: Vec<Delivery>,
    /// Drain-time snapshot; link holds and in-flight are zero.
    pub snapshot: TreeSnapshot,
    /// Scheduler rounds the drive took.
    pub rounds: u64,
}

/// One parked external producer's state.
struct Producer {
    script: std::vec::IntoIter<fabric::Message>,
    parked: Option<(fabric::Message, usize, usize)>,
}

/// Drive a tree closed-loop: `producers` scripted external sources
/// (each playing `plan` over `ingress_sources` distinct source ids
/// through its own seeded generator) against the full topology, then a
/// cascaded drain tier by tier. Producers blocked at leaf admission
/// hold their message and re-offer it, oldest first — the closed loop.
///
/// Every per-fabric identity and the end-to-end ledger are checked once
/// per round; the returned snapshot is drain-time exact.
///
/// # Panics
/// If conservation is violated at any round, or the tree stops making
/// progress before draining.
pub fn drive_tree(
    topology: &TierTopology,
    plan: &LoadPlan,
    producers: usize,
    ingress_sources: usize,
) -> TreeReport {
    let scripts = (0..producers)
        .map(|p| producer_script(plan, ingress_sources, p))
        .collect();
    drive_tree_scripts(topology, scripts)
}

/// Drive a tree closed-loop from a replayable [`Trace`]: the trace is
/// lowered to leaf-admission frames by [`fabric::trace::frames`] (the
/// exact lowering `cli fabric-bench --trace` and the simtest trace
/// scenarios use) over `ingress_sources` leaf wires, flattened in frame
/// order, and played by a single scripted external source. Same trace,
/// same topology ⇒ bit-identical [`TreeReport`].
///
/// # Panics
/// As [`drive_tree`]: on any conservation violation or a wedged tree.
pub fn drive_tree_trace(
    topology: &TierTopology,
    trace: &Trace,
    ingress_sources: usize,
) -> TreeReport {
    let script = fabric::trace::frames(trace, ingress_sources)
        .into_iter()
        .flat_map(|(_, frame)| frame)
        .collect();
    drive_tree_scripts(topology, vec![script])
}

/// The shared closed-loop engine behind [`drive_tree`] and
/// [`drive_tree_trace`]: each script is one external producer, stepped
/// round-robin against the full topology, then a cascaded drain.
fn drive_tree_scripts(topology: &TierTopology, scripts: Vec<Vec<fabric::Message>>) -> TreeReport {
    let core = TierCore::new(topology.clone());
    let mut workers = core.workers();
    let mut done = vec![false; workers.len()];
    let depth = topology.depth();
    let mut closed = vec![false; depth];

    let mut generated = 0u64;
    let mut sources: Vec<Producer> = scripts
        .into_iter()
        .map(|script| {
            generated += script.len() as u64;
            Producer {
                script: script.into_iter(),
                parked: None,
            }
        })
        .collect();

    let mut completions = Vec::new();
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        assert!(rounds < ROUND_LIMIT, "tree drive failed to drain");
        let mut progressed = false;

        for producer in &mut sources {
            let offer = match producer.parked.take() {
                Some((message, leaf, shard)) => {
                    if !core.leaf_would_accept(leaf, shard) {
                        producer.parked = Some((message, leaf, shard));
                        continue;
                    }
                    core.retry_submit(message, leaf, shard)
                }
                None => match producer.script.next() {
                    Some(message) => core.try_submit(message),
                    None => continue,
                },
            };
            progressed = true;
            if let TierSubmit::Blocked {
                message,
                leaf,
                shard,
            } = offer
            {
                producer.parked = Some((message, leaf, shard));
            }
        }

        // Close cascade: tier 0 once the producers are finished, tier
        // t+1 once tier t's workers have all drained.
        let producers_done = sources
            .iter()
            .all(|p| p.script.len() == 0 && p.parked.is_none());
        if producers_done && !closed[0] {
            core.close_tier(0);
            closed[0] = true;
        }
        for tier in 1..depth {
            let upstream_done = workers
                .iter()
                .zip(&done)
                .filter(|(w, _)| w.tier() == tier - 1)
                .all(|(_, &d)| d);
            if closed[tier - 1] && upstream_done && !closed[tier] {
                core.close_tier(tier);
                closed[tier] = true;
            }
        }

        for (i, worker) in workers.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            // Step to quiescence: a worker drains its ring, runs frames,
            // and forwards until it stalls on the link or runs dry.
            loop {
                match worker.step() {
                    TierStep::Frame(run) => {
                        progressed = true;
                        if worker.is_spine() {
                            completions.extend(run.delivered);
                        }
                    }
                    TierStep::Forwarded => progressed = true,
                    TierStep::ForwardStalled | TierStep::Idle => break,
                    TierStep::Done => {
                        done[i] = true;
                        progressed = true;
                        break;
                    }
                }
            }
        }

        let ledger = tree_ledger(&core, &workers);
        assert!(
            ledger.holds(),
            "round {rounds}: tree conservation violated: {ledger:?}"
        );

        if done.iter().all(|&d| d) {
            break;
        }
        assert!(
            progressed,
            "round {rounds}: tree wedged (producers {} parked, ledger {ledger:?})",
            sources.iter().filter(|p| p.parked.is_some()).count()
        );
    }

    let snapshot = tree_snapshot(&core, &workers);
    debug_assert!(
        snapshot.conserved_end_to_end(),
        "drain snapshot violates end-to-end conservation: {:?}",
        snapshot.ledger()
    );
    TreeReport {
        generated,
        completions,
        snapshot,
        rounds,
    }
}
