//! Describing a concentrator tree: tiers of identical fabrics and the
//! wiring between them.
//!
//! A [`TierTopology`] is a list of [`TierSpec`]s, tier 0 being the leaf
//! tier external traffic enters through and the last tier the spine
//! whose deliveries leave the tree. Every fabric within one tier runs
//! the same switch (one shared [`StagedSwitch`], so the whole tier pays
//! a single datapath elaboration through the switch's cache) under the
//! same [`FabricConfig`].
//!
//! **Inter-tier wiring.** Tier `t+1`'s switch has `n` input wires,
//! partitioned evenly among tier `t`'s fabrics: fabric `f` owns the
//! contiguous block of [`TierTopology::link_ports`]`(t)` wires starting
//! at `f × link_ports(t)`. A message delivered by fabric `f` on output
//! `o` re-enters the next tier on wire `f × ports + (o mod ports)` —
//! the same wire on whichever downstream fabric the load-aware link
//! picks, so the wiring is a property of the topology, not of a routing
//! decision.
//!
//! **External ingress.** An external source id (a user, of which there
//! may be millions) is hashed once: the high bits pick the leaf fabric,
//! the low bits the input wire on that leaf's switch.

use std::sync::Arc;

use concentrator::staged::StagedSwitch;
use fabric::FabricConfig;

/// One tier: `fabrics` identical fabrics over one shared switch.
#[derive(Clone)]
pub struct TierSpec {
    /// Fabrics in this tier.
    pub fabrics: usize,
    /// The switch every fabric in the tier serves (shared: one
    /// elaboration for the whole tier).
    pub switch: Arc<StagedSwitch>,
    /// Per-fabric serving configuration (shards, queues, backpressure).
    pub config: FabricConfig,
}

impl std::fmt::Debug for TierSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierSpec")
            .field("fabrics", &self.fabrics)
            .field("switch", &self.switch.name)
            .field("n", &self.switch.n)
            .field("m", &self.switch.m)
            .field("config", &self.config)
            .finish()
    }
}

/// A complete concentrator tree: tier 0 (leaves) through the spine.
#[derive(Debug, Clone)]
pub struct TierTopology {
    /// The tiers, leaf first.
    pub tiers: Vec<TierSpec>,
}

/// SplitMix64 finalizer used for ingress placement (same mixer as the
/// traffic generator's user→wire hash, with a different input stream).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TierTopology {
    /// Build and validate a topology.
    ///
    /// # Panics
    /// If there are no tiers, a tier has no fabrics, a config is
    /// invalid, or a tier has more fabrics than its downstream switch
    /// has input wires (every fabric needs at least one uplink port).
    pub fn new(tiers: Vec<TierSpec>) -> TierTopology {
        let topology = TierTopology { tiers };
        topology.validate();
        topology
    }

    /// Validate the tree (see [`TierTopology::new`] for the rules).
    pub fn validate(&self) {
        assert!(!self.tiers.is_empty(), "a topology needs at least one tier");
        for (t, spec) in self.tiers.iter().enumerate() {
            assert!(spec.fabrics > 0, "tier {t} has no fabrics");
            spec.config.validate();
        }
        for t in 0..self.tiers.len() - 1 {
            let up = self.tiers[t].fabrics;
            let n = self.tiers[t + 1].switch.n;
            assert!(
                up <= n,
                "tier {t} has {up} fabrics but tier {} only {n} input wires",
                t + 1
            );
        }
    }

    /// Number of tiers.
    pub fn depth(&self) -> usize {
        self.tiers.len()
    }

    /// Leaf fabrics (tier 0).
    pub fn leaves(&self) -> usize {
        self.tiers[0].fabrics
    }

    /// Input wires on tier `t+1`'s switch owned by each tier-`t` fabric.
    ///
    /// # Panics
    /// If `t` is the last tier (it has no uplink).
    pub fn link_ports(&self, t: usize) -> usize {
        assert!(t + 1 < self.tiers.len(), "tier {t} is the spine");
        self.tiers[t + 1].switch.n / self.tiers[t].fabrics
    }

    /// Where external source `source` enters the tree: `(leaf fabric,
    /// input wire on that leaf's switch)`. A pure hash of the source id.
    pub fn ingress(&self, source: u64) -> (usize, usize) {
        let h = mix64(source);
        let leaf = ((h >> 32) as usize) % self.tiers[0].fabrics;
        let wire = (h as u32 as usize) % self.tiers[0].switch.n;
        (leaf, wire)
    }

    /// The tier-`t+1` input wire a message delivered by tier-`t` fabric
    /// `fabric` on output `output` re-enters on.
    pub fn forward_wire(&self, t: usize, fabric: usize, output: usize) -> usize {
        let ports = self.link_ports(t);
        fabric * ports + (output % ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};

    fn leaf_switch() -> Arc<StagedSwitch> {
        Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        )
    }

    fn two_tier() -> TierTopology {
        TierTopology::new(vec![
            TierSpec {
                fabrics: 2,
                switch: leaf_switch(),
                config: FabricConfig::new(1),
            },
            TierSpec {
                fabrics: 1,
                switch: leaf_switch(),
                config: FabricConfig::new(1),
            },
        ])
    }

    #[test]
    fn link_ports_partition_the_downstream_switch() {
        let topology = two_tier();
        assert_eq!(topology.depth(), 2);
        assert_eq!(topology.link_ports(0), 8);
        // Fabric 0 owns wires 0..8, fabric 1 owns 8..16; outputs fold
        // into the owner's block.
        assert_eq!(topology.forward_wire(0, 0, 0), 0);
        assert_eq!(topology.forward_wire(0, 0, 7), 7);
        assert_eq!(topology.forward_wire(0, 1, 0), 8);
        assert_eq!(topology.forward_wire(0, 1, 7), 15);
        // Wires never collide across fabrics and never exceed n.
        for fabric in 0..2 {
            for output in 0..8 {
                let wire = topology.forward_wire(0, fabric, output);
                assert!(wire < 16);
                assert_eq!(wire / 8, fabric);
            }
        }
    }

    #[test]
    fn ingress_is_a_stable_full_range_hash() {
        let topology = two_tier();
        let mut leaves_hit = [false; 2];
        for source in 0..1000u64 {
            let (leaf, wire) = topology.ingress(source);
            assert_eq!((leaf, wire), topology.ingress(source));
            assert!(leaf < 2 && wire < 16);
            leaves_hit[leaf] = true;
        }
        assert!(leaves_hit.iter().all(|&h| h), "hash never spread leaves");
    }

    #[test]
    #[should_panic(expected = "input wires")]
    fn too_many_uplinks_are_rejected() {
        TierTopology::new(vec![
            TierSpec {
                fabrics: 32,
                switch: leaf_switch(),
                config: FabricConfig::new(1),
            },
            TierSpec {
                fabrics: 1,
                switch: leaf_switch(),
                config: FabricConfig::new(1),
            },
        ]);
    }
}
