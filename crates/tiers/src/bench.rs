//! The reference tier benchmark: a three-tier concentrator tree under
//! zipf-population traffic, measured through the threaded
//! [`TierService`], plus the single-spine baseline the tree is judged
//! against.
//!
//! The geometry scales with the leaf count `L` (a power of two,
//! 2..=64):
//!
//! * **tier 0** — `L` leaf fabrics on a 16→8 Revsort partial
//!   concentrator (one shared elaboration for the whole tier);
//! * **tier 1** — `max(L/8, 1)` aggregation fabrics on a 64→32
//!   Revsort, each leaf owning a contiguous block of its input wires
//!   (frame cost is network-size-fixed regardless of occupancy, so the
//!   aggregation switch is deliberately the *smallest* Revsort that
//!   gives every leaf a port — see `probe_switch_frame_costs`);
//! * **tier 2** — `max(L/16, 2)` spine fabrics on a §6 full-Columnsort
//!   hyperconcentrator (32×4 valid-bit matrix, 128 wires).
//!
//! The workload models a large user population funneling into the tree:
//! each producer plays [`TrafficModel::Zipf`] frames over
//! `ingress_sources` external ids, hashed onto leaves by
//! [`TierTopology::ingress`](crate::TierTopology::ingress).
//!
//! The baseline ([`slowest_single_spine`]) serves the *whole* external
//! workload through one spine fabric standing alone — no leaves, no
//! links, a modulo front end folding the id space onto its wires — and
//! reports the slowest rate observed across the spines. The tree's
//! advantage over that lone spine is *parallelism*: its tiers pipeline
//! and its spines split the load, which needs cores to run on. The
//! report records the host's [`TreeBenchReport::cores`] so the
//! [`TreeBenchReport::tree_beats_slowest_single_spine`] gate is
//! comparable across machines; the CI release smoke asserts it where
//! the host can actually pipeline the tiers (multicore runners). On a
//! single core the tree serializes every tier's sweeps behind one
//! another and the gate is expected to fail — that is the measurement,
//! not a bug.

use std::sync::Arc;
use std::time::Instant;

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::staged::StagedSwitch;
use concentrator::FullColumnsortHyperconcentrator;
use fabric::{producer_script_frames, FabricConfig, FabricService, LoadPlan};
use serde_json::{object, ToJson, Value};
use switchsim::TrafficModel;

use crate::service::TierService;
use crate::snapshot::TreeSnapshot;
use crate::topology::{TierSpec, TierTopology};

/// Everything that parameterizes one tier-bench run.
#[derive(Debug, Clone, Copy)]
pub struct TierBenchOptions {
    /// Leaf fabrics (power of two, 2..=64).
    pub leaves: usize,
    /// External producer threads.
    pub producers: usize,
    /// Generation frames per producer.
    pub frames: usize,
    /// Distinct external source ids each producer draws from.
    pub ingress_sources: usize,
    /// Target offered load per source per frame (zipf upper bound).
    pub load: f64,
    /// User population behind the zipf model.
    pub population: u64,
    /// Zipf exponent.
    pub exponent: f64,
    /// Payload bytes per message.
    pub payload_bytes: usize,
    /// Workload seed.
    pub seed: u64,
    /// Ring capacity at every tier.
    pub queue_capacity: usize,
}

impl TierBenchOptions {
    /// Defaults sized for an interactive run: a 4-leaf tree under a
    /// million-user zipf population.
    pub fn small() -> TierBenchOptions {
        TierBenchOptions {
            leaves: 4,
            producers: 2,
            frames: 12,
            ingress_sources: 256,
            load: 0.6,
            population: 1_000_000,
            exponent: 1.1,
            payload_bytes: 8,
            seed: 0x71E5,
            queue_capacity: 64,
        }
    }

    /// The workload plan this run plays.
    pub fn plan(&self) -> LoadPlan {
        LoadPlan {
            model: TrafficModel::Zipf {
                p: self.load,
                population: self.population,
                exponent: self.exponent,
            },
            payload_bytes: self.payload_bytes,
            seed: self.seed,
            frames: self.frames,
        }
    }
}

/// The shared leaf switch: 16→8 Revsort.
pub fn bench_leaf_switch() -> Arc<StagedSwitch> {
    Arc::new(
        RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
            .staged()
            .clone(),
    )
}

/// The shared aggregation switch: 64→32 Revsort — the smallest square
/// Revsort giving all 64 leaves a port, because frame cost scales with
/// the network, not its occupancy.
pub fn bench_mid_switch() -> Arc<StagedSwitch> {
    Arc::new(
        RevsortSwitch::new(64, 32, RevsortLayout::TwoDee)
            .staged()
            .clone(),
    )
}

/// The shared spine switch: §6 full-Columnsort hyperconcentrator over a
/// 32×4 valid-bit matrix (128 wires).
pub fn bench_spine_switch() -> Arc<StagedSwitch> {
    Arc::new(FullColumnsortHyperconcentrator::new(32, 4).staged().clone())
}

/// The reference three-tier tree for `leaves` leaf fabrics (see the
/// module docs for the geometry).
///
/// # Panics
/// If `leaves` is not a power of two in `2..=64`.
pub fn reference_tree(leaves: usize, queue_capacity: usize) -> TierTopology {
    assert!(
        leaves.is_power_of_two() && (2..=64).contains(&leaves),
        "leaves must be a power of two in 2..=64, got {leaves}"
    );
    let config = |shards: usize| {
        let mut config = FabricConfig::new(shards);
        config.queue_capacity = queue_capacity;
        config
    };
    TierTopology::new(vec![
        TierSpec {
            fabrics: leaves,
            switch: bench_leaf_switch(),
            config: config(1),
        },
        TierSpec {
            fabrics: (leaves / 8).max(1),
            switch: bench_mid_switch(),
            config: config(1),
        },
        TierSpec {
            fabrics: (leaves / 16).max(2),
            switch: bench_spine_switch(),
            config: config(1),
        },
    ])
}

/// One tier's share of a bench run.
#[derive(Debug, Clone)]
pub struct TierThroughput {
    /// Tier index (0 = leaves).
    pub tier: usize,
    /// Fabrics in the tier.
    pub fabrics: usize,
    /// Messages the tier delivered (onto the next tier's wires, or out
    /// of the tree at the spine).
    pub delivered: u64,
    /// Delivery rate over the run's wall time.
    pub msgs_per_sec: f64,
}

/// The outcome of one threaded tier-bench run.
#[derive(Debug, Clone)]
pub struct TreeBenchReport {
    /// The options the run used.
    pub options: TierBenchOptions,
    /// Host parallelism (`std::thread::available_parallelism`) the run
    /// had. The tree's edge over a lone spine is pipelining tiers and
    /// splitting spines across cores — on one core it serializes and
    /// the gate below is expected to fail, so cross-machine comparisons
    /// must read this first.
    pub cores: usize,
    /// Messages the producers generated.
    pub generated: u64,
    /// Wall-clock seconds for the drive plus cascaded drain.
    pub secs: f64,
    /// End-to-end delivery rate (spine deliveries / secs).
    pub msgs_per_sec: f64,
    /// Fraction of external offers that never reached the spine
    /// (rejected + shed + retry-dropped, over offered).
    pub shed_fraction: f64,
    /// Spine p99 queue wait in frames (bucket floor).
    pub p99_wait_frames: u64,
    /// Whether the p99 landed in the histogram's absorbing bucket.
    pub p99_wait_is_lower_bound: bool,
    /// Per-tier throughput, leaf tier first.
    pub per_tier: Vec<TierThroughput>,
    /// The slowest standalone spine's rate on the same workload shape.
    pub slowest_single_spine_msgs_per_sec: f64,
    /// Drain-time tree snapshot (conserved end to end).
    pub snapshot: TreeSnapshot,
}

impl TreeBenchReport {
    /// The CI release gate: the tree (several spines splitting the load
    /// behind the concentrating tiers) must out-deliver the slowest
    /// single spine serving the workload alone.
    ///
    /// The gate is a *parallel-speedup* claim — the tree does strictly
    /// more total switch work than one spine and wins by pipelining
    /// tiers and splitting spines across cores — so consumers should
    /// only enforce it when [`TreeBenchReport::cores`] is high enough
    /// for that parallelism to exist (the bench binary and CI require
    /// `cores >= 4`). On a single core the serialized tree losing to a
    /// lone spine is the expected, correct measurement.
    pub fn tree_beats_slowest_single_spine(&self) -> bool {
        self.msgs_per_sec >= self.slowest_single_spine_msgs_per_sec
    }
}

impl ToJson for TreeBenchReport {
    fn to_json(&self) -> Value {
        let o = &self.options;
        object([
            ("leaves", (o.leaves as u64).to_json()),
            ("producers", (o.producers as u64).to_json()),
            ("frames", (o.frames as u64).to_json()),
            ("ingress_sources", (o.ingress_sources as u64).to_json()),
            ("offered_load", o.load.to_json()),
            ("population", o.population.to_json()),
            ("exponent", o.exponent.to_json()),
            ("seed", o.seed.to_json()),
            ("cores", (self.cores as u64).to_json()),
            ("generated", self.generated.to_json()),
            ("secs", self.secs.to_json()),
            ("msgs_per_sec", self.msgs_per_sec.to_json()),
            ("shed_fraction", self.shed_fraction.to_json()),
            ("p99_wait_frames", self.p99_wait_frames.to_json()),
            (
                "p99_wait_is_lower_bound",
                Value::Bool(self.p99_wait_is_lower_bound),
            ),
            (
                "per_tier",
                Value::Array(
                    self.per_tier
                        .iter()
                        .map(|t| {
                            object([
                                ("tier", (t.tier as u64).to_json()),
                                ("fabrics", (t.fabrics as u64).to_json()),
                                ("delivered", t.delivered.to_json()),
                                ("msgs_per_sec", t.msgs_per_sec.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "slowest_single_spine_msgs_per_sec",
                self.slowest_single_spine_msgs_per_sec.to_json(),
            ),
            (
                "tree_beats_slowest_single_spine",
                Value::Bool(self.tree_beats_slowest_single_spine()),
            ),
            ("snapshot", self.snapshot.to_json()),
        ])
    }
}

/// Serve the bench workload through each spine fabric standing alone (a
/// plain [`FabricService`] on the spine switch, no tree) and return the
/// slowest delivery rate observed.
///
/// Each spine run carries the *whole* external workload by itself: the
/// same zipf plan over the same `ingress_sources` id space, folded onto
/// the spine's `n` input wires by a modulo front end (the only way a
/// lone switch can accept an id space wider than its wires). That fold
/// is exactly what the tree avoids — hot external sources serialize on
/// single wires of the big spine switch, one message per wire per
/// frame, while the tree absorbs the same skew at its cheap leaf
/// switches and hands the spine renamed, concentrated frames.
pub fn slowest_single_spine(options: &TierBenchOptions, spines: usize) -> f64 {
    let switch = bench_spine_switch();
    let mut config = FabricConfig::new(1);
    config.queue_capacity = options.queue_capacity;
    let n = switch.n;
    let plan = options.plan();
    (0..spines.max(1))
        .map(|_| {
            let service = FabricService::start(Arc::clone(&switch), config);
            let started = Instant::now();
            std::thread::scope(|scope| {
                for p in 0..options.producers {
                    let service = &service;
                    let plan = &plan;
                    let sources = options.ingress_sources;
                    scope.spawn(move || {
                        for mut frame in producer_script_frames(plan, sources, p) {
                            for message in &mut frame {
                                message.source %= n;
                            }
                            service.submit_batch(frame);
                        }
                    });
                }
            });
            let report = service.drain();
            let secs = started.elapsed().as_secs_f64();
            if secs > 0.0 {
                report.snapshot.totals().delivered as f64 / secs
            } else {
                0.0
            }
        })
        .fold(f64::INFINITY, f64::min)
}

/// Run the threaded tier bench: start the reference tree, drive it with
/// `options.producers` real producer threads playing the zipf plan, and
/// drain cascaded. The returned snapshot is asserted conserved.
///
/// # Panics
/// If the drain-time snapshot violates end-to-end conservation.
pub fn run_tree_bench(options: &TierBenchOptions) -> TreeBenchReport {
    let topology = reference_tree(options.leaves, options.queue_capacity);
    let plan = options.plan();
    let service = TierService::start(topology);
    let started = Instant::now();
    let generated: u64 = std::thread::scope(|scope| {
        (0..options.producers)
            .map(|p| {
                let service = &service;
                let plan = &plan;
                let sources = options.ingress_sources;
                scope.spawn(move || {
                    let mut count = 0u64;
                    for frame in producer_script_frames(plan, sources, p) {
                        count += frame.len() as u64;
                        service.submit_batch(frame);
                    }
                    count
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("producer panicked"))
            .sum()
    });
    let report = service.drain();
    let secs = started.elapsed().as_secs_f64();
    let snapshot = report.snapshot;
    let ledger = snapshot.ledger();
    assert!(
        ledger.holds(),
        "tier bench violated conservation: {ledger:?}"
    );

    let per_tier = (0..snapshot.tiers.len())
        .map(|tier| {
            let totals = snapshot.tier_totals(tier);
            TierThroughput {
                tier,
                fabrics: snapshot.tiers[tier].len(),
                delivered: totals.delivered,
                msgs_per_sec: if secs > 0.0 {
                    totals.delivered as f64 / secs
                } else {
                    0.0
                },
            }
        })
        .collect();
    let spine = snapshot.tiers.len() - 1;
    let (p99, p99_lb) = snapshot.tier_totals(spine).wait_frames.percentile(99.0);
    let dropped = ledger.rejected + ledger.shed + ledger.retry_dropped;
    let spines = snapshot.tiers[spine].len();
    TreeBenchReport {
        options: *options,
        cores: std::thread::available_parallelism().map_or(1, |c| c.get()),
        generated,
        secs,
        msgs_per_sec: if secs > 0.0 {
            ledger.delivered as f64 / secs
        } else {
            0.0
        },
        shed_fraction: if ledger.offered_external > 0 {
            dropped as f64 / ledger.offered_external as f64
        } else {
            0.0
        },
        p99_wait_frames: p99,
        p99_wait_is_lower_bound: p99_lb,
        per_tier,
        slowest_single_spine_msgs_per_sec: slowest_single_spine(options, spines),
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The small reference run conserves, reports coherent per-tier
    /// rates, and carries a positive baseline.
    #[test]
    fn small_tree_bench_is_coherent() {
        let mut options = TierBenchOptions::small();
        options.frames = 4;
        options.ingress_sources = 64;
        let report = run_tree_bench(&options);
        assert!(report.generated > 0);
        assert_eq!(report.per_tier.len(), 3);
        assert_eq!(report.per_tier[0].fabrics, 4);
        assert_eq!(report.per_tier[2].fabrics, 2);
        let ledger = report.snapshot.ledger();
        assert!(ledger.holds(), "{ledger:?}");
        // Blocking everywhere + unlimited retries: the tree is lossless,
        // so the shed fraction is exactly zero.
        assert_eq!(ledger.delivered, report.generated);
        assert!(report.shed_fraction == 0.0, "{}", report.shed_fraction);
        assert!(report.slowest_single_spine_msgs_per_sec > 0.0);
        assert!((0.0..=1.0).contains(&report.shed_fraction));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn reference_tree_rejects_bad_leaf_counts() {
        reference_tree(3, 8);
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use crate::sync::drive_tree;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn probe_switch_frame_costs() {
        use fabric::{drive_sync, Fabric};
        let candidates: Vec<(&str, Arc<StagedSwitch>)> = vec![
            ("revsort 16->8", bench_leaf_switch()),
            ("revsort 64->32", bench_mid_switch()),
            (
                "fullcolumnsort 8x2 (16)",
                Arc::new(FullColumnsortHyperconcentrator::new(8, 2).staged().clone()),
            ),
            (
                "fullcolumnsort 16x4 (64)",
                Arc::new(FullColumnsortHyperconcentrator::new(32, 2).staged().clone()),
            ),
            (
                "fullcolumnsort 64x4 (256)",
                Arc::new(FullColumnsortHyperconcentrator::new(64, 4).staged().clone()),
            ),
            ("fullcolumnsort 32x4 (128)", bench_spine_switch()),
        ];
        for (name, switch) in candidates {
            let n = switch.n;
            let plan = LoadPlan {
                model: TrafficModel::Bernoulli { p: 1.0 },
                payload_bytes: 64,
                seed: 7,
                frames: 100,
            };
            let mut fabric = Fabric::new(switch, FabricConfig::new(1));
            let t = Instant::now();
            let report = drive_sync(&mut fabric, n, &plan);
            let secs = t.elapsed().as_secs_f64();
            let totals = report.snapshot.totals();
            eprintln!(
                "{name}: n={n} {} msgs {} frames in {:.3}s = {:.0}us/frame",
                report.generated,
                totals.frames,
                secs,
                1e6 * secs / totals.frames as f64
            );
        }
    }

    #[test]
    #[ignore]
    fn probe_sync_vs_threaded() {
        let options = TierBenchOptions {
            leaves: 64,
            producers: 4,
            frames: 8,
            ingress_sources: 2048,
            load: 0.6,
            population: 2_000_000,
            exponent: 1.4,
            payload_bytes: 64,
            seed: 0x71E5,
            queue_capacity: 64,
        };
        let topology = reference_tree(64, 64);
        let plan = options.plan();
        let t = Instant::now();
        let report = drive_tree(&topology, &plan, 4, 2048);
        let secs = t.elapsed().as_secs_f64();
        eprintln!(
            "sync: {} msgs in {:.3}s = {:.0} msgs/s, {} rounds",
            report.generated,
            secs,
            report.generated as f64 / secs,
            report.rounds
        );
        for tier in 0..3 {
            let tt = report.snapshot.tier_totals(tier);
            eprintln!("  tier {tier}: frames {} sweeps {}", tt.frames, tt.sweeps);
        }
    }
}
