//! The tree's data plane: per-fabric [`ServiceCore`]s joined by
//! valid/ready inter-tier links, and the single-step worker state
//! machine the deterministic simulator and the threaded service share.
//!
//! **Links and credit backpressure.** A [`TierWorker`] wraps one leaf or
//! intermediate shard's [`WorkerCore`] and an *egress hold*: the frame's
//! deliveries, remapped onto downstream input wires, waiting for
//! downstream admission. The hold is the link's valid side; downstream
//! ring space is the ready side. While the hold is non-empty the worker
//! runs **no new frames**, so its own ingress ring fills, its upstream
//! producers block or shed, and the credit exhaustion propagates tier by
//! tier down to leaf admission — exactly the wormhole-style
//! valid/ready handshake, at frame granularity.
//!
//! **Load-aware spine placement.** When a held message is first
//! forwarded, the link picks the downstream fabric with the fewest
//! messages in flight among fabrics that still have a healthy
//! (non-quarantined) shard — quarantine steering across fabrics, on top
//! of the per-fabric shard steering the cores already do. A message
//! handed back by a full downstream ring under blocking backpressure
//! stays *placed* (same fabric, same shard) until space opens, mirroring
//! a blocked producer thread.

use std::collections::VecDeque;
use std::sync::Arc;

use fabric::{
    Backpressure, Delivery, FrameRun, Message, ServiceCore, Shard, SubmitOutcome, SubmitStep,
    WorkerCore, WorkerStep,
};

use crate::snapshot::{TreeLedger, TreeSnapshot};
use crate::topology::TierTopology;

/// The tree's passive state: one [`ServiceCore`] per (tier, fabric).
pub struct TierCore {
    topology: TierTopology,
    /// `cores[tier][fabric]`.
    cores: Vec<Vec<Arc<ServiceCore>>>,
}

/// What one external (leaf-tier) submission step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierSubmit {
    /// The submission resolved at leaf admission.
    Done(SubmitOutcome),
    /// The chosen leaf ring is full under blocking backpressure: the
    /// message is handed back with its placement; park until
    /// [`TierCore::leaf_would_accept`] and then
    /// [`TierCore::retry_submit`].
    Blocked {
        /// The handed-back message (source already rewritten to the leaf
        /// input wire).
        message: Message,
        /// The leaf fabric placement chose.
        leaf: usize,
        /// The shard within that leaf.
        shard: usize,
    },
}

/// Pick the downstream fabric for a fresh forwarded message: fewest
/// in-flight among fabrics with at least one healthy shard (ties to the
/// lowest index); if every fabric is fully quarantined, least-loaded
/// overall — degraded service beats dropping on the floor.
pub fn pick_downstream(cores: &[Arc<ServiceCore>]) -> usize {
    let healthy =
        |core: &ServiceCore| (0..core.config().shards).any(|shard| !core.shard_quarantined(shard));
    let least = |indices: &mut dyn Iterator<Item = usize>| {
        indices
            .map(|i| (cores[i].in_flight(), i))
            .min()
            .map(|(_, i)| i)
    };
    least(&mut (0..cores.len()).filter(|&i| healthy(&cores[i])))
        .or_else(|| least(&mut (0..cores.len())))
        .expect("topology guarantees at least one fabric per tier")
}

impl TierCore {
    /// Build the tree's cores (no workers yet — see
    /// [`TierCore::workers`]).
    pub fn new(topology: TierTopology) -> TierCore {
        topology.validate();
        let cores = topology
            .tiers
            .iter()
            .map(|spec| {
                (0..spec.fabrics)
                    .map(|_| Arc::new(ServiceCore::new(spec.config)))
                    .collect()
            })
            .collect();
        TierCore { topology, cores }
    }

    /// The topology this tree serves.
    pub fn topology(&self) -> &TierTopology {
        &self.topology
    }

    /// The core of fabric `fabric` in tier `tier`.
    pub fn core(&self, tier: usize, fabric: usize) -> &Arc<ServiceCore> {
        &self.cores[tier][fabric]
    }

    /// All of tier `tier`'s cores, in fabric order.
    pub fn tier_cores(&self, tier: usize) -> &[Arc<ServiceCore>] {
        &self.cores[tier]
    }

    /// Every worker in the tree, in `(tier, fabric, shard)` order — the
    /// canonical order the sync driver and the simulator step in. Each
    /// tier's workers share that tier's switch, so the whole tier pays
    /// one datapath compile.
    pub fn workers(&self) -> Vec<TierWorker> {
        let mut workers = Vec::new();
        for (tier, spec) in self.topology.tiers.iter().enumerate() {
            let downstream = if tier + 1 < self.topology.depth() {
                Some(self.cores[tier + 1].clone())
            } else {
                None
            };
            for fabric in 0..spec.fabrics {
                for shard in 0..spec.config.shards {
                    workers.push(TierWorker {
                        tier,
                        fabric,
                        shard_id: shard,
                        inner: self.cores[tier][fabric].worker(shard, Arc::clone(&spec.switch)),
                        downstream: downstream.clone(),
                        forward_base: if downstream.is_some() {
                            fabric * self.topology.link_ports(tier)
                        } else {
                            0
                        },
                        link_ports: if downstream.is_some() {
                            self.topology.link_ports(tier)
                        } else {
                            0
                        },
                        backpressure_down: if tier + 1 < self.topology.depth() {
                            self.topology.tiers[tier + 1].config.backpressure
                        } else {
                            Backpressure::Block
                        },
                        egress: VecDeque::new(),
                        inner_done: false,
                        forwarded: 0,
                        forward_stalls: 0,
                    });
                }
            }
        }
        workers
    }

    /// Submit one external message: hash its source onto a leaf fabric
    /// and input wire (the message's `source` is rewritten to the wire),
    /// then run leaf admission. Non-blocking — the simulation seam.
    pub fn try_submit(&self, mut message: Message) -> TierSubmit {
        let (leaf, wire) = self.topology.ingress(message.source as u64);
        message.source = wire;
        match self.cores[0][leaf].try_submit(message) {
            SubmitStep::Done(outcome) => TierSubmit::Done(outcome),
            SubmitStep::Blocked { message, shard } => TierSubmit::Blocked {
                message,
                leaf,
                shard,
            },
        }
    }

    /// Re-offer a message handed back by [`TierCore::try_submit`] to its
    /// already-chosen leaf placement.
    pub fn retry_submit(&self, message: Message, leaf: usize, shard: usize) -> TierSubmit {
        match self.cores[0][leaf].retry_submit(message, shard) {
            SubmitStep::Done(outcome) => TierSubmit::Done(outcome),
            SubmitStep::Blocked { message, shard } => TierSubmit::Blocked {
                message,
                leaf,
                shard,
            },
        }
    }

    /// Submit one external message, blocking while its leaf ring is full
    /// under blocking backpressure — the threaded service's seam.
    pub fn submit_blocking(&self, mut message: Message) -> SubmitOutcome {
        let (leaf, wire) = self.topology.ingress(message.source as u64);
        message.source = wire;
        self.cores[0][leaf].submit_blocking(message)
    }

    /// Submit a whole external frame, blocking under leaf blocking
    /// backpressure: hash every message onto its leaf, then offer each
    /// leaf its share in one batch. One ring reservation and one worker
    /// wake per leaf per frame instead of one per message — the
    /// difference between an idle tree sweeping near-empty frames and
    /// full ones. [`fabric::BatchSubmit::blocked`] is empty on return.
    pub fn submit_batch_blocking(&self, messages: Vec<Message>) -> fabric::BatchSubmit {
        let mut by_leaf: Vec<Vec<Message>> = (0..self.topology.tiers[0].fabrics)
            .map(|_| Vec::new())
            .collect();
        for mut message in messages {
            let (leaf, wire) = self.topology.ingress(message.source as u64);
            message.source = wire;
            by_leaf[leaf].push(message);
        }
        let mut result = fabric::BatchSubmit::default();
        for (leaf, group) in by_leaf.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let push = self.cores[0][leaf].submit_batch_blocking(group);
            debug_assert!(push.blocked.is_empty());
            result.accepted += push.accepted;
            result.shed += push.shed;
            result.rejected += push.rejected;
        }
        result
    }

    /// Whether a parked external producer's placement would accept a
    /// retry right now — the simulator's readiness predicate.
    pub fn leaf_would_accept(&self, leaf: usize, shard: usize) -> bool {
        self.cores[0][leaf]
            .queue(shard)
            .would_accept(self.topology.tiers[0].config.backpressure)
    }

    /// Close every fabric in tier `tier` (drain begins there).
    pub fn close_tier(&self, tier: usize) {
        for core in &self.cores[tier] {
            core.close();
        }
    }

    /// Messages in flight inside any fabric of the tree (link holds not
    /// included — see [`tree_ledger`]).
    pub fn in_flight(&self) -> u64 {
        self.cores
            .iter()
            .flatten()
            .map(|core| core.in_flight())
            .sum()
    }
}

/// A held egress message on an inter-tier link.
#[derive(Debug)]
enum Egress {
    /// Not yet offered downstream: placement still to be chosen.
    Fresh(Message),
    /// Offered and handed back by a full ring under blocking
    /// backpressure: pinned to its placement, waiting for credit.
    Placed {
        message: Message,
        fabric: usize,
        shard: usize,
    },
}

/// What one [`TierWorker::step`] did.
#[derive(Debug)]
pub enum TierStep {
    /// Moved the head held message onto a downstream ring.
    Forwarded,
    /// The head held message found no downstream credit (ring full
    /// under blocking backpressure): the link is stalled.
    ForwardStalled,
    /// Executed one batched routing frame. At a non-spine tier the
    /// deliveries were also queued onto the egress hold; at the spine
    /// they are the tree's completions.
    Frame(FrameRun),
    /// Nothing to do right now.
    Idle,
    /// Queue closed and drained, egress hold empty: finished.
    Done,
}

/// One shard's serving loop in the tree: the fabric [`WorkerCore`] plus
/// the uplink's egress hold (see the module docs for the handshake).
pub struct TierWorker {
    tier: usize,
    fabric: usize,
    shard_id: usize,
    inner: WorkerCore,
    /// Next tier's cores; `None` at the spine.
    downstream: Option<Vec<Arc<ServiceCore>>>,
    forward_base: usize,
    link_ports: usize,
    backpressure_down: Backpressure,
    egress: VecDeque<Egress>,
    inner_done: bool,
    /// Messages this worker moved onto a downstream ring.
    pub forwarded: u64,
    /// Steps that found the link without credit.
    pub forward_stalls: u64,
}

impl TierWorker {
    /// Tier this worker serves.
    pub fn tier(&self) -> usize {
        self.tier
    }

    /// Fabric within the tier.
    pub fn fabric(&self) -> usize {
        self.fabric
    }

    /// Shard within the fabric.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// Whether this worker serves the spine (its deliveries leave the
    /// tree).
    pub fn is_spine(&self) -> bool {
        self.downstream.is_none()
    }

    /// The underlying shard (metrics, health, capacity bound).
    pub fn shard(&self) -> &Shard {
        self.inner.shard()
    }

    /// Messages held on the uplink, remapped but not yet admitted
    /// downstream.
    pub fn held(&self) -> u64 {
        self.egress.len() as u64
    }

    /// Whether a step right now would make progress — the simulation
    /// scheduler's readiness predicate. A worker holding egress is ready
    /// iff the link has credit (or the head is fresh, in which case the
    /// step resolves its placement); otherwise it defers to the inner
    /// core's readiness.
    pub fn ready(&self) -> bool {
        if let Some(head) = self.egress.front() {
            return match head {
                Egress::Fresh(_) => true,
                Egress::Placed { fabric, shard, .. } => self.downstream.as_ref().expect("held")
                    [*fabric]
                    .queue(*shard)
                    .would_accept(self.backpressure_down),
            };
        }
        !self.inner_done && self.inner.ready()
    }

    /// One non-blocking step: forward held egress first (frames wait for
    /// the link — the credit handshake), else run the inner core.
    pub fn step(&mut self) -> TierStep {
        if !self.egress.is_empty() {
            return self.forward_head();
        }
        if self.inner_done {
            return TierStep::Done;
        }
        match self.inner.step() {
            WorkerStep::Frame(run) => {
                self.hold_deliveries(&run.delivered);
                TierStep::Frame(run)
            }
            WorkerStep::Idle => TierStep::Idle,
            WorkerStep::Done => {
                self.inner_done = true;
                TierStep::Done
            }
        }
    }

    /// Queue a frame's deliveries onto the egress hold, remapped onto
    /// downstream input wires (spine deliveries leave the tree instead).
    fn hold_deliveries(&mut self, delivered: &[Delivery]) {
        if self.downstream.is_none() {
            return;
        }
        for delivery in delivered {
            let wire = self.forward_base + delivery.output % self.link_ports;
            self.egress.push_back(Egress::Fresh(Message::new(
                delivery.message.id,
                wire,
                delivery.message.payload.clone(),
            )));
        }
    }

    /// Try to move the head held message downstream.
    fn forward_head(&mut self) -> TierStep {
        let down = self.downstream.as_ref().expect("egress implies a link");
        let (step, fabric) = match self.egress.pop_front().expect("checked non-empty") {
            Egress::Fresh(message) => {
                let fabric = pick_downstream(down);
                (down[fabric].try_submit(message), fabric)
            }
            Egress::Placed {
                message,
                fabric,
                shard,
            } => (down[fabric].retry_submit(message, shard), fabric),
        };
        match step {
            SubmitStep::Done(_) => {
                self.forwarded += 1;
                TierStep::Forwarded
            }
            SubmitStep::Blocked { message, shard } => {
                self.egress.push_front(Egress::Placed {
                    message,
                    fabric,
                    shard,
                });
                self.forward_stalls += 1;
                TierStep::ForwardStalled
            }
        }
    }
}

/// The end-to-end conservation ledger, read live against the tree's
/// cores and workers: every externally offered message is final-tier
/// delivered, dropped at some tier (rejected / shed / retry-dropped),
/// in flight inside some fabric, or held on a link. The per-tier
/// identities telescope (tier `t`'s deliveries minus its link holds are
/// tier `t+1`'s offers), so the tree-wide identity follows from the
/// per-fabric one the fabric crate already maintains.
pub fn tree_ledger(core: &TierCore, workers: &[TierWorker]) -> TreeLedger {
    let depth = core.topology().depth();
    let mut ledger = TreeLedger::default();
    for (tier, cores) in (0..depth).map(|t| (t, core.tier_cores(t))) {
        for fabric_core in cores {
            for shard in 0..fabric_core.config().shards {
                let mut queue = fabric::ShardMetrics::default();
                fabric_core.fold_queue_counters(shard, &mut queue);
                if tier == 0 {
                    ledger.offered_external += queue.offered;
                }
                ledger.rejected += queue.rejected;
                ledger.shed += queue.shed;
            }
            ledger.in_flight += fabric_core.in_flight();
        }
    }
    for worker in workers {
        let metrics = &worker.shard().metrics;
        if worker.is_spine() {
            ledger.delivered += metrics.delivered;
        }
        ledger.shed += metrics.shed;
        ledger.retry_dropped += metrics.retry_dropped;
        ledger.held += worker.held();
    }
    ledger
}

/// Assemble the tree's drain-time snapshot from its cores and workers:
/// per-shard worker metrics with queue counters folded in exactly once
/// (the fabric crate's single-fold rule), grouped by tier and fabric.
pub fn tree_snapshot(core: &TierCore, workers: &[TierWorker]) -> TreeSnapshot {
    let depth = core.topology().depth();
    let mut tiers: Vec<Vec<fabric::FabricSnapshot>> = (0..depth)
        .map(|tier| {
            core.tier_cores(tier)
                .iter()
                .map(|fabric_core| fabric::FabricSnapshot {
                    shards: Vec::new(),
                    in_flight: fabric_core.in_flight(),
                })
                .collect()
        })
        .collect();
    let mut held = 0u64;
    for worker in workers {
        let mut metrics = worker.shard().metrics.clone();
        core.core(worker.tier(), worker.fabric())
            .fold_queue_counters(worker.shard_id(), &mut metrics);
        tiers[worker.tier()][worker.fabric()].shards.push(metrics);
        held += worker.held();
    }
    TreeSnapshot { tiers, held }
}
