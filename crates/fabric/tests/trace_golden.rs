//! Golden-trace format pin: a committed 1000-record trace in both
//! flavors, checksummed, so the on-disk encoding can never drift
//! silently. If an intentional format change lands, regenerate with
//!
//! ```text
//! cargo test -p fabric --test trace_golden regenerate_golden_fixtures -- --ignored
//! ```
//!
//! and update the checksum constants below to the values the failing
//! test prints.

use std::path::PathBuf;

use fabric::trace::{decode, encode, fnv1a, generate, Trace, TraceFlavor, TraceModel};

/// The fixture workload: a zipf population over 2^40 users (ids far
/// beyond 2^32, so the JSONL flavor's digit-exact integer parsing is
/// pinned too), truncated to exactly 1000 records.
fn golden_trace() -> Trace {
    generate(
        TraceModel::ZipfPopulation {
            p: 0.5,
            population: 1 << 40,
            exponent: 1.05,
        },
        64,
        40,
        1,
        0xC0FFEE,
    )
    .truncated(1000)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data")).join(name)
}

/// FNV-1a of the committed binary fixture.
const GOLDEN_BINARY_FNV: u64 = 0x2aae_f613_d623_46c3;
/// FNV-1a of the committed JSONL fixture.
const GOLDEN_JSONL_FNV: u64 = 0x0e8b_fec3_bb98_504d;

#[test]
fn golden_binary_checksum_and_decode_are_pinned() {
    let bytes = std::fs::read(fixture_path("golden_1k.ctrc")).expect("committed binary fixture");
    assert_eq!(
        fnv1a(&bytes),
        GOLDEN_BINARY_FNV,
        "binary trace format drifted: fixture checksum is now {:#018x}",
        fnv1a(&bytes)
    );
    let trace = decode(&bytes).expect("golden binary decodes");
    assert_eq!(trace.len(), 1000);
    // Decode → re-encode is byte-identical (no lossy fields).
    assert_eq!(encode(&trace, TraceFlavor::Binary), bytes);
    // And the generator still reproduces the committed workload.
    assert_eq!(trace, golden_trace());
}

#[test]
fn golden_jsonl_checksum_and_decode_are_pinned() {
    let bytes = std::fs::read(fixture_path("golden_1k.jsonl")).expect("committed jsonl fixture");
    assert_eq!(
        fnv1a(&bytes),
        GOLDEN_JSONL_FNV,
        "jsonl trace format drifted: fixture checksum is now {:#018x}",
        fnv1a(&bytes)
    );
    let trace = decode(&bytes).expect("golden jsonl decodes");
    assert_eq!(trace.len(), 1000);
    assert_eq!(encode(&trace, TraceFlavor::Jsonl), bytes);
    assert_eq!(trace, golden_trace());
}

#[test]
fn golden_flavors_agree() {
    let binary = decode(&std::fs::read(fixture_path("golden_1k.ctrc")).unwrap()).unwrap();
    let jsonl = decode(&std::fs::read(fixture_path("golden_1k.jsonl")).unwrap()).unwrap();
    assert_eq!(binary, jsonl);
}

/// Writes the fixture files. Ignored: run explicitly only when the
/// format version changes, then update the checksum constants.
#[test]
#[ignore]
fn regenerate_golden_fixtures() {
    let trace = golden_trace();
    std::fs::create_dir_all(fixture_path("")).unwrap();
    let binary = encode(&trace, TraceFlavor::Binary);
    let jsonl = encode(&trace, TraceFlavor::Jsonl);
    std::fs::write(fixture_path("golden_1k.ctrc"), &binary).unwrap();
    std::fs::write(fixture_path("golden_1k.jsonl"), &jsonl).unwrap();
    println!("binary fnv1a: {:#018x}", fnv1a(&binary));
    println!("jsonl  fnv1a: {:#018x}", fnv1a(&jsonl));
}
