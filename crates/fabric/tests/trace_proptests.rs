//! Property-based tests for the trace workload engine: every generator
//! is a pure function of `(model, sources, ticks, seed)`, codecs
//! round-trip arbitrary well-formed traces, and the statistical claims
//! (MMPP long-run load, zipf head skew) hold across the parameter
//! space. Mirrors the `TrafficGenerator` determinism proptests in
//! `switchsim`.

use proptest::prelude::*;

use fabric::trace::{
    decode, encode, frames, generate, SourceSpace, Trace, TraceFlavor, TraceModel, TraceRecord,
};

/// Build the model under test from a proptest-drawn index + parameters.
fn model_for(idx: usize, p: f64, burst: f64, population: u64, exponent: f64) -> TraceModel {
    [
        TraceModel::Bernoulli { p },
        TraceModel::Diurnal {
            base: p,
            amplitude: (1.0 - p).min(p) / 2.0,
            period: 16 + (burst * 8.0) as u64,
        },
        TraceModel::mmpp_from_bursty(p, burst),
        TraceModel::ZipfPopulation {
            p,
            population,
            exponent,
        },
    ][idx]
}

proptest! {
    /// Same `(model, seed, horizon)` ⇒ the identical trace, byte for
    /// byte, for every generator family. Replay determinism rests here.
    #[test]
    fn generators_are_deterministic(
        seed in any::<u64>(),
        p in 0.0f64..1.0,
        burst in 1.0f64..16.0,
        population in 1u64..5_000_000,
        exponent in 0.0f64..2.5,
        sources in 1usize..48,
        ticks in 1u64..40,
        model_idx in 0usize..4,
    ) {
        let model = model_for(model_idx, p, burst, population, exponent);
        let a = generate(model, sources, ticks, 1, seed);
        let b = generate(model, sources, ticks, 1, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            encode(&a, TraceFlavor::Binary),
            encode(&b, TraceFlavor::Binary)
        );
        // Lowering to frames is deterministic too (ids, wires, payloads).
        prop_assert_eq!(frames(&a, sources), frames(&b, sources));
    }

    /// Both codec flavors round-trip any well-formed trace exactly.
    #[test]
    fn codecs_round_trip_arbitrary_traces(
        ticks in proptest::collection::vec(0u64..1000, 0..64),
        user_space in any::<bool>(),
        source_bits in 1u32..64,
        class in 0u8..=12,
        seed in any::<u64>(),
    ) {
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        let records: Vec<TraceRecord> = sorted
            .iter()
            .enumerate()
            .map(|(i, &tick)| TraceRecord {
                tick,
                // Spread sources over a parameterized width so both
                // small wire ids and huge user ids get exercised.
                source: (seed.wrapping_mul(i as u64 + 1)) >> (64 - source_bits),
                size_class: class,
            })
            .collect();
        let space = if user_space { SourceSpace::User } else { SourceSpace::Wire };
        let trace = Trace::new(space, records).unwrap();
        for flavor in [TraceFlavor::Binary, TraceFlavor::Jsonl] {
            let bytes = encode(&trace, flavor);
            let back = decode(&bytes).unwrap();
            prop_assert_eq!(&back, &trace);
            prop_assert_eq!(encode(&back, flavor), bytes);
        }
    }

    /// MMPP long-run offered load lands within tolerance of the
    /// stationary rate `π_on·rate_on + π_off·rate_off` for any
    /// well-mixed chain.
    #[test]
    fn mmpp_long_run_load_within_tolerance(
        seed in any::<u64>(),
        rate_on in 0.2f64..1.0,
        rate_off in 0.0f64..0.2,
        on_to_off in 0.1f64..0.9,
        off_to_on in 0.1f64..0.9,
    ) {
        let model = TraceModel::Mmpp { rate_on, rate_off, on_to_off, off_to_on };
        let ticks = 2000u64;
        let sources = 64usize;
        let trace = generate(model, sources, ticks, 0, seed);
        let load = trace.len() as f64 / (ticks as f64 * sources as f64);
        let want = model.offered_load();
        // Transition probabilities ≥ 0.1 keep the mixing time under ~10
        // ticks, so 2000 ticks × 64 chains concentrate well inside ±0.05
        // (the PR 2 bursty pinning band).
        prop_assert!(
            (load - want).abs() < 0.05,
            "mmpp load {} vs stationary {}", load, want
        );
    }

    /// Zipf-population head frequency is monotone in rank: averaged over
    /// the head, low ranks (hot users) appear at least as often as high
    /// ranks, for any skewed exponent.
    #[test]
    fn zipf_population_head_frequency_monotone(
        seed in any::<u64>(),
        population in 10_000u64..5_000_000,
        exponent in 1.0f64..2.0,
    ) {
        let model = TraceModel::ZipfPopulation { p: 0.8, population, exponent };
        let trace = generate(model, 64, 400, 0, seed);
        // Bucket the head ranks in octaves; octave means must not
        // increase with rank (per-rank counts are too noisy to compare
        // individually, octave aggregates are not).
        let octaves = [0u64..8, 8..64, 64..512, 512..4096];
        let mut mean_per_rank = Vec::new();
        for range in octaves {
            let hits = trace
                .records
                .iter()
                .filter(|r| range.contains(&r.source))
                .count() as f64;
            mean_per_rank.push(hits / (range.end - range.start) as f64);
        }
        for pair in mean_per_rank.windows(2) {
            prop_assert!(
                pair[0] >= pair[1],
                "head frequency not monotone: {:?}", mean_per_rank
            );
        }
    }

    /// Replaying any generated trace through `frames` yields well-formed
    /// batches: ids strictly increasing record indices, wires in range,
    /// payload sizes per the record class, and (in user space) at most
    /// one offer per wire per tick.
    #[test]
    fn lowered_frames_are_well_formed(
        seed in any::<u64>(),
        p in 0.1f64..1.0,
        wires in 1usize..32,
        model_idx in 0usize..4,
    ) {
        let model = model_for(model_idx, p, 4.0, 100_000, 1.2);
        let trace = generate(model, wires, 20, 2, seed);
        let mut last_tick = None;
        for (tick, batch) in frames(&trace, wires) {
            prop_assert!(last_tick.is_none_or(|t| t < tick), "ticks ascend");
            last_tick = Some(tick);
            let mut taken = vec![false; wires];
            for message in &batch {
                prop_assert!(message.source < wires);
                prop_assert_eq!(message.payload.len(), 4, "class 2 = 4 bytes");
                if trace.space == SourceSpace::User {
                    prop_assert!(!taken[message.source], "one offer per wire");
                }
                taken[message.source] = true;
            }
        }
    }
}
