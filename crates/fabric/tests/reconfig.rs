//! Integration tests for the elastic control plane: epoch-based shard
//! add/remove, live switch swap, runtime admission retargeting — and the
//! conservation ledger across every epoch boundary.
//!
//! The deterministic tests drive [`ServiceCore`] and [`WorkerCore`]
//! cooperatively on one thread (no sleeps, no timing assumptions): every
//! producer park is a [`SubmitStep::Blocked`] hand-back and every worker
//! step completes before the next assertion, so interleavings are exact.
//! The threaded tests then run the same protocol under real contention
//! and assert the properties that survive nondeterminism (conservation,
//! payload integrity, lane lifecycle).

use std::sync::Arc;

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::StagedSwitch;
use fabric::{
    drive_service, Backpressure, FabricConfig, FabricService, LaneState, LoadPlan, Message,
    ServiceCore, SubmitOutcome, SubmitStep, WorkerCore, WorkerStep,
};
use switchsim::TrafficModel;

fn staged(n: usize, m: usize) -> Arc<StagedSwitch> {
    Arc::new(
        RevsortSwitch::new(n, m, RevsortLayout::TwoDee)
            .staged()
            .clone(),
    )
}

fn msg(id: u64, source: usize) -> Message {
    Message::new(id, source, vec![0xA0 ^ id as u8])
}

/// Step a worker until it reports [`WorkerStep::Idle`], collecting
/// deliveries. Panics if the worker finishes instead.
fn run_until_idle(worker: &mut WorkerCore) -> Vec<u64> {
    let mut delivered = Vec::new();
    loop {
        match worker.step() {
            WorkerStep::Frame(run) => delivered.extend(run.delivered.iter().map(|d| d.message.id)),
            WorkerStep::Idle => return delivered,
            WorkerStep::Done => panic!("worker finished while the fabric is still serving"),
        }
    }
}

/// Step a worker until it reports [`WorkerStep::Done`], collecting
/// deliveries. Panics if the worker idles with its queue still open.
fn run_until_done(worker: &mut WorkerCore) -> Vec<u64> {
    let mut delivered = Vec::new();
    loop {
        match worker.step() {
            WorkerStep::Frame(run) => delivered.extend(run.delivered.iter().map(|d| d.message.id)),
            WorkerStep::Idle => panic!("worker idled while draining a closed queue"),
            WorkerStep::Done => return delivered,
        }
    }
}

/// Removing a shard whose ingress ring is *full* loses nothing: the
/// closed ring's backlog drains through the worker, the lane retires,
/// and traffic placed after the epoch bump never lands on it.
#[test]
fn remove_while_full_drains_the_backlog_and_retires() {
    let mut config = FabricConfig::new(2);
    config.queue_capacity = 2;
    config.backpressure = Backpressure::Reject;
    let core = ServiceCore::new(config);
    let mut w0 = core.worker(0, staged(16, 8));
    let mut w1 = core.worker(1, staged(16, 8));

    // Fill both rings to the brim (round-robin alternates 0,1,0,1).
    for id in 0..4u64 {
        assert_eq!(
            core.try_submit(msg(id, id as usize)),
            SubmitStep::Done(SubmitOutcome::Accepted)
        );
    }
    assert_eq!(core.queue(1).len(), 2, "shard 1's ring must be full");

    assert!(core.remove_shard(1), "an active non-last shard removes");
    assert_eq!(core.shard_state(1), LaneState::Draining);
    assert_eq!(core.epoch(), 1);
    assert_eq!(core.active_shards(), 1);

    // Post-removal traffic routes around the draining lane onto shard 0 —
    // whose ring is also full, so the Reject policy refuses it. Either
    // way, nothing new lands on the closed ring.
    for id in 4..6u64 {
        assert_eq!(
            core.try_submit(msg(id, id as usize)),
            SubmitStep::Done(SubmitOutcome::Rejected)
        );
    }
    assert_eq!(core.queue(1).len(), 2, "the draining ring admits nothing");

    // The removed shard's worker drains its full backlog and retires.
    let drained = run_until_done(&mut w1);
    assert_eq!(drained, vec![1, 3], "the full backlog must drain in order");
    assert_eq!(core.shard_state(1), LaneState::Retired);

    let alive = run_until_idle(&mut w0);
    assert_eq!(alive, vec![0, 2]);

    // The ledger balances across the boundary: 6 offered = 4 delivered +
    // 2 rejected, nothing in flight — and the retired lane's history is
    // still in the snapshot.
    let snapshot = core.snapshot();
    let totals = snapshot.totals();
    assert!(snapshot.conserved(), "ledger broke: {totals:?}");
    assert_eq!(
        (totals.offered, totals.delivered, totals.rejected),
        (6, 4, 2)
    );
    assert_eq!(snapshot.in_flight, 0);
    assert_eq!(snapshot.shards.len(), 2, "retired lanes stay in snapshots");
}

/// A producer parked on a full ring whose shard is then removed re-enters
/// placement under the new epoch instead of losing its message. The
/// cooperative mirror of a thread blocked in `submit`: the
/// [`SubmitStep::Blocked`] hand-back is the park, `retry_submit` is the
/// wake.
#[test]
fn remove_while_producer_blocked_replaces_under_the_new_epoch() {
    let mut config = FabricConfig::new(2);
    config.queue_capacity = 1;
    config.backpressure = Backpressure::Block;
    let core = ServiceCore::new(config);
    let mut w0 = core.worker(0, staged(16, 8));
    let mut w1 = core.worker(1, staged(16, 8));

    assert_eq!(
        core.try_submit(msg(0, 0)),
        SubmitStep::Done(SubmitOutcome::Accepted)
    );
    assert_eq!(
        core.try_submit(msg(1, 1)),
        SubmitStep::Done(SubmitOutcome::Accepted)
    );
    // Both rings full: the next submission parks on shard 0's ring…
    let parked = core.try_submit(msg(2, 2));
    let SubmitStep::Blocked { message, shard } = parked else {
        panic!("expected a blocked hand-back, got {parked:?}");
    };
    assert_eq!(shard, 0);
    // …and a fourth parks on shard 1, the one about to be removed.
    let parked = core.try_submit(msg(3, 3));
    let SubmitStep::Blocked {
        message: removed_msg,
        shard: removed_shard,
    } = parked
    else {
        panic!("expected a blocked hand-back, got {parked:?}");
    };
    assert_eq!(removed_shard, 1);

    assert!(core.remove_shard(1));
    // The removed ring now reports writable (closed queues wake parked
    // producers), so the simulated producer retries — and the retry
    // re-enters placement rather than offering to the closed ring. The
    // only active lane's ring is still full, so it parks there.
    assert!(core.queue(1).would_accept(Backpressure::Block));
    let retried = core.retry_submit(removed_msg, removed_shard);
    let SubmitStep::Blocked { message: m3, shard } = retried else {
        panic!("the re-placed message should park on the full active ring");
    };
    assert_eq!(shard, 0, "re-placement must target the surviving shard");

    // Workers make room; both parked producers land on shard 0.
    let first = run_until_idle(&mut w0);
    assert_eq!(first, vec![0]);
    assert_eq!(
        core.retry_submit(message, 0),
        SubmitStep::Done(SubmitOutcome::Accepted)
    );
    run_until_idle(&mut w0);
    assert_eq!(
        core.retry_submit(m3, 0),
        SubmitStep::Done(SubmitOutcome::Accepted)
    );
    run_until_idle(&mut w0);
    let drained = run_until_done(&mut w1);
    assert_eq!(drained, vec![1]);
    assert_eq!(core.shard_state(1), LaneState::Retired);

    let snapshot = core.snapshot();
    let totals = snapshot.totals();
    assert!(snapshot.conserved(), "ledger broke: {totals:?}");
    assert_eq!(totals.delivered, 4, "every message must deliver");
    assert_eq!(snapshot.in_flight, 0);
}

/// The two-phase switch swap with a nonempty ring and a nonempty pending
/// queue: frames admitted under the old epoch complete on the old switch
/// (the worker refuses to install mid-backlog and stops popping fresh
/// messages), the replacement installs the moment the backlog completes,
/// and messages still in the ring route on the *new* switch — including
/// sources the old switch could not even address.
#[test]
fn swap_with_nonempty_ring_installs_after_the_backlog() {
    let config = FabricConfig::new(1);
    let core = ServiceCore::new(config);
    let old = staged(16, 8);
    let mut worker = core.worker(0, Arc::clone(&old));

    // Three messages on one source wire: the frame packer takes one per
    // input wire per frame, so two stay pending after the first frame.
    for id in 0..3u64 {
        assert_eq!(
            core.try_submit(msg(id, 5)),
            SubmitStep::Done(SubmitOutcome::Accepted)
        );
    }
    let WorkerStep::Frame(first) = worker.step() else {
        panic!("expected a frame");
    };
    assert_eq!(first.delivered.len(), 1);
    assert_eq!(worker.shard().pending_len(), 2, "backlog must be nonempty");

    let new = staged(64, 16);
    assert_eq!(core.swap_switch(Arc::clone(&new)), 1);
    assert_eq!(core.epoch(), 1);
    // A message only the new switch can address waits in the ring behind
    // the old-epoch backlog.
    assert_eq!(
        core.try_submit(msg(40, 40)),
        SubmitStep::Done(SubmitOutcome::Accepted)
    );

    // Old-epoch frames complete on the old switch: no install while the
    // pending queue is nonempty.
    let WorkerStep::Frame(_) = worker.step() else {
        panic!("expected a frame");
    };
    assert!(
        Arc::ptr_eq(worker.shard().switch(), &old),
        "the swap must wait for the old-epoch backlog"
    );
    let WorkerStep::Frame(_) = worker.step() else {
        panic!("expected a frame");
    };

    // Backlog done: the next step installs, then serves the ring message
    // through the freshly compiled wider datapath.
    let delivered = run_until_idle(&mut worker);
    assert!(
        Arc::ptr_eq(worker.shard().switch(), &new),
        "the replacement must install once the backlog completes"
    );
    assert_eq!(delivered, vec![40], "ring contents route on the new switch");

    let snapshot = core.snapshot();
    assert!(snapshot.conserved());
    assert_eq!(snapshot.totals().delivered, 4);
    assert_eq!(snapshot.in_flight, 0);
}

/// Runtime admission retargeting: a lowered limit rejects at the new
/// bound immediately, lifting it re-opens the gate, and both transitions
/// bump the epoch while the rejections stay on the ledger.
#[test]
fn admission_retarget_applies_immediately_and_stays_on_the_ledger() {
    let config = FabricConfig::new(1);
    let core = ServiceCore::new(config);
    let mut worker = core.worker(0, staged(16, 8));

    core.set_admission_limit(Some(2));
    assert_eq!(core.admission_limit(), Some(2));
    assert_eq!(core.epoch(), 1);
    // Same limit again: no epoch churn.
    core.set_admission_limit(Some(2));
    assert_eq!(core.epoch(), 1);

    for id in 0..2u64 {
        assert_eq!(
            core.try_submit(msg(id, id as usize)),
            SubmitStep::Done(SubmitOutcome::Accepted)
        );
    }
    assert_eq!(
        core.try_submit(msg(2, 2)),
        SubmitStep::Done(SubmitOutcome::Rejected),
        "the third message must hit the admission gate"
    );
    assert_eq!(core.admission_rejected(0), 1);

    core.set_admission_limit(None);
    assert_eq!(core.admission_limit(), None);
    assert_eq!(core.epoch(), 2);
    assert_eq!(
        core.try_submit(msg(3, 3)),
        SubmitStep::Done(SubmitOutcome::Accepted)
    );

    run_until_idle(&mut worker);
    let snapshot = core.snapshot();
    let totals = snapshot.totals();
    assert!(snapshot.conserved(), "ledger broke: {totals:?}");
    assert_eq!((totals.delivered, totals.rejected), (3, 1));
}

/// Control-plane refusals: the lane pool is the hard ceiling, the last
/// active shard is irremovable, a draining shard cannot be removed twice,
/// and a closed (shutting-down) fabric refuses every mutation.
#[test]
fn control_plane_refusals() {
    let mut config = FabricConfig::new(1);
    config.max_shards = 3;
    let core = ServiceCore::new(config);

    assert_eq!(core.add_shard(), Some(1));
    assert_eq!(core.add_shard(), Some(2));
    assert_eq!(core.add_shard(), None, "the lane pool is exhausted");
    assert_eq!(core.allocated_shards(), 3);

    assert!(core.remove_shard(1));
    assert!(!core.remove_shard(1), "a draining shard is not active");
    assert!(core.remove_shard(2));
    assert!(
        !core.remove_shard(0),
        "the last active shard must keep serving"
    );
    assert_eq!(core.active_shards(), 1);

    core.close();
    assert_eq!(core.add_shard(), None, "no growth during shutdown");
    assert!(!core.remove_shard(0), "no removal during shutdown");
}

/// The snapshot-during-epoch-transition regression: snapshot after
/// *every* producer submission, worker step, and control-plane operation
/// of a scripted resize (1 → 3 → 2 shards with a switch swap in the
/// middle) and assert the conservation identity each time. Cooperative
/// stepping makes each intermediate state quiescent, so the identity must
/// hold *exactly* at every boundary — a draining lane's in-flight
/// counted once, a retired lane's history never dropped.
#[test]
fn snapshot_every_step_of_a_resize_stays_conserved() {
    let mut config = FabricConfig::new(1);
    config.max_shards = 3;
    config.queue_capacity = 4;
    config.backpressure = Backpressure::Reject;
    let core = ServiceCore::new(config);
    let switch = staged(16, 8);
    let mut workers: Vec<WorkerCore> = vec![core.worker(0, Arc::clone(&switch))];

    let mut next_id = 0u64;
    let assert_conserved = |core: &ServiceCore, when: &str| {
        let snapshot = core.snapshot();
        assert!(
            snapshot.conserved(),
            "ledger broke {when}: {:?} in_flight {}",
            snapshot.totals(),
            snapshot.in_flight
        );
    };

    let mut pulse = |core: &ServiceCore, workers: &mut Vec<WorkerCore>, burst: usize| {
        for _ in 0..burst {
            let id = next_id;
            next_id += 1;
            core.try_submit(msg(id, (id % 16) as usize));
            assert_conserved(core, "after a submission");
        }
        for worker in workers.iter_mut() {
            while let WorkerStep::Frame(_) = worker.step() {
                assert_conserved(core, "after a worker frame");
            }
        }
    };

    pulse(&core, &mut workers, 6);

    let id = core.add_shard().expect("lane available");
    workers.push(core.worker(id, Arc::clone(&switch)));
    assert_conserved(&core, "after add_shard");
    pulse(&core, &mut workers, 6);

    let id = core.add_shard().expect("lane available");
    workers.push(core.worker(id, Arc::clone(&switch)));
    assert_conserved(&core, "after the second add_shard");
    pulse(&core, &mut workers, 6);

    core.swap_switch(staged(64, 16));
    assert_conserved(&core, "after swap_switch");
    pulse(&core, &mut workers, 6);

    assert!(core.remove_shard(1));
    // The critical window: shard 1 is Draining with messages possibly in
    // flight; a live snapshot here must count them exactly once.
    assert_conserved(&core, "immediately after remove_shard");
    pulse(&core, &mut workers, 6);
    assert_eq!(core.shard_state(1), LaneState::Retired);
    assert_conserved(&core, "after the removed lane retired");

    pulse(&core, &mut workers, 6);
    let snapshot = core.snapshot();
    assert_eq!(snapshot.in_flight, 0);
    assert!(snapshot.totals().delivered > 0);
    assert_eq!(core.active_shards(), 2);
    assert_eq!(core.epoch(), 4);
}

/// A real thread parked in a blocking submit on the removed shard's full
/// ring wakes, re-places under the new epoch, and delivers — the threaded
/// twin of the cooperative re-placement test.
#[test]
fn threaded_producer_parked_on_removed_shard_replaces() {
    let mut config = FabricConfig::new(2);
    config.queue_capacity = 1;
    config.backpressure = Backpressure::Block;
    let core = Arc::new(ServiceCore::new(config));
    let mut w0 = core.worker(0, staged(16, 8));
    let mut w1 = core.worker(1, staged(16, 8));

    // Fill both rings so the producer thread must park.
    assert_eq!(
        core.try_submit(msg(0, 0)),
        SubmitStep::Done(SubmitOutcome::Accepted)
    );
    assert_eq!(
        core.try_submit(msg(1, 1)),
        SubmitStep::Done(SubmitOutcome::Accepted)
    );

    // The producer's round-robin slot places it on shard 0, whose full
    // ring parks it. Removing shard 0 closes that ring, which wakes the
    // parked thread; it re-places under the new epoch onto shard 1 —
    // also full — and parks again until the worker makes room. (If the
    // removal wins the race instead, placement routes it straight to
    // shard 1; both orders end at the same park.)
    let producer = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || core.submit_blocking(msg(2, 2)))
    };
    assert!(core.remove_shard(0));
    let drained = run_until_done(&mut w0);
    assert_eq!(drained, vec![0]);
    // Step the surviving shard until the producer lands: each frame frees
    // a ring slot, and the wake is the queue's own condvar — no sleeps.
    while !producer.is_finished() {
        match w1.step() {
            WorkerStep::Frame(_) | WorkerStep::Idle => std::thread::yield_now(),
            WorkerStep::Done => panic!("the surviving shard must not finish"),
        }
    }
    assert_eq!(
        producer.join().expect("producer panicked"),
        SubmitOutcome::Accepted
    );
    run_until_idle(&mut w1);

    let snapshot = core.snapshot();
    assert!(snapshot.conserved());
    assert_eq!(snapshot.totals().delivered, 3, "no message may be lost");
    assert_eq!(snapshot.in_flight, 0);
}

/// The acceptance-gate scenario at integration scale: a threaded service
/// resizes 1 → 4 → 2 shards under continuous load, swaps the switch
/// mid-run, and drains with the ledger exactly conserved — zero lost
/// messages, every delivery payload-intact.
#[test]
fn service_resize_and_swap_under_load_is_zero_loss() {
    let mut config = FabricConfig::new(1);
    config.max_shards = 4;
    config.queue_capacity = 32;
    let service = FabricService::start(staged(16, 8), config);
    let plan = |seed: u64| LoadPlan {
        model: TrafficModel::Bernoulli { p: 0.7 },
        payload_bytes: 3,
        seed,
        frames: 10,
    };

    let mut generated = drive_service(&service, 2, &plan(1), 16);
    assert_eq!(service.add_shard(), Some(1));
    assert_eq!(service.add_shard(), Some(2));
    assert_eq!(service.add_shard(), Some(3));
    assert_eq!(service.add_shard(), None);
    assert_eq!(service.active_shards(), 4);
    generated += drive_service(&service, 2, &plan(2), 16);

    // Swap every live lane onto a wider recompiled switch mid-load.
    assert_eq!(service.swap_switch(staged(64, 16)), 4);
    generated += drive_service(&service, 2, &plan(3), 16);

    assert!(service.remove_shard(1));
    assert!(service.remove_shard(2));
    assert_eq!(service.active_shards(), 2);
    generated += drive_service(&service, 2, &plan(4), 16);

    let report = service.drain();
    let totals = report.snapshot.totals();
    assert!(
        report.snapshot.conserved(),
        "resize under load broke the ledger: {totals:?}"
    );
    assert_eq!(
        totals.offered, generated,
        "every generated message must be accounted as offered"
    );
    assert_eq!(
        totals.delivered, generated,
        "blocking backpressure with no faults must deliver everything"
    );
    assert_eq!(totals.delivered as usize, report.completions.len());
    assert_eq!(report.snapshot.shards.len(), 4, "retired lanes stay");
}
