//! Integration tests for the fabric serving engine.
//!
//! The load-bearing claims from the subsystem's acceptance criteria:
//!
//! * **Equivalence** — every frame the batching executor runs produces
//!   exactly the deliveries (outputs, payloads) of the single-frame
//!   reference simulator `switchsim::simulate_frame` on the same offered
//!   set.
//! * **Conservation** — `offered = delivered + rejected + shed +
//!   retry_dropped + in_flight` at drain, for all three backpressure
//!   policies, in both the synchronous and the threaded mode.
//! * **Determinism** — two identical synchronous drives produce
//!   bit-identical snapshots and completion streams.
//! * **Batching** — the coalescing executor spends an order of magnitude
//!   fewer compiled sweeps than the one-request-per-sweep baseline.

use std::collections::HashMap;
use std::sync::Arc;

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::StagedSwitch;
use fabric::{
    drive_service, drive_sync, drive_sync_unbatched, Backpressure, Fabric, FabricConfig,
    FabricService, LoadPlan, Placement, RetryBudget,
};
use switchsim::traffic::TrafficGenerator;
use switchsim::{simulate_frame, TrafficModel};

fn staged(n: usize, m: usize) -> Arc<StagedSwitch> {
    Arc::new(
        RevsortSwitch::new(n, m, RevsortLayout::TwoDee)
            .staged()
            .clone(),
    )
}

fn plan(model: TrafficModel, seed: u64, frames: usize) -> LoadPlan {
    LoadPlan {
        model,
        payload_bytes: 3,
        seed,
        frames,
    }
}

/// Every recorded frame of the batching/sharded path must match the
/// single-frame reference simulator delivery-for-delivery: same output
/// wires, same message ids, same reassembled payloads, and the frame's
/// non-winners are exactly the reference's unrouted set.
#[test]
fn batched_frames_match_single_frame_reference() {
    let switch = staged(16, 8);
    let mut config = FabricConfig::new(2);
    config.retry = RetryBudget::limited(2);
    let mut fabric = Fabric::new(Arc::clone(&switch), config);
    fabric.set_frame_recording(true);
    let workload = plan(TrafficModel::Bernoulli { p: 0.9 }, 11, 40);
    drive_sync(&mut fabric, 16, &workload);

    let records = fabric.take_frame_records();
    assert!(!records.is_empty(), "the drive must have executed frames");
    for run in &records {
        let reference = simulate_frame(&*switch, &run.offered);
        let mut expected: HashMap<u64, (usize, Vec<u8>)> = reference
            .delivered
            .iter()
            .map(|(out, msg)| (msg.id, (*out, msg.payload.to_vec())))
            .collect();
        assert_eq!(
            run.delivered.len(),
            expected.len(),
            "batched frame delivered a different count than the reference"
        );
        for delivery in &run.delivered {
            let (out, payload) = expected
                .remove(&delivery.message.id)
                .expect("batched path delivered a message the reference did not");
            assert_eq!(delivery.output, out, "output wire mismatch");
            assert_eq!(
                delivery.message.payload.to_vec(),
                payload,
                "payload corrupted through the compiled datapath"
            );
        }
        // Offered minus delivered must be exactly the reference's
        // congestion losers, whether the fabric retried or dropped them.
        let mut losers: Vec<u64> = run
            .offered
            .iter()
            .map(|m| m.id)
            .filter(|id| !run.delivered.iter().any(|d| d.message.id == *id))
            .collect();
        let mut unrouted: Vec<u64> = reference.unrouted.iter().map(|m| m.id).collect();
        losers.sort_unstable();
        unrouted.sort_unstable();
        assert_eq!(losers, unrouted);
    }
}

/// Conservation at drain for every backpressure policy, synchronous mode.
#[test]
fn sync_conservation_for_all_backpressure_policies() {
    for policy in [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ] {
        let mut config = FabricConfig::new(3);
        config.queue_capacity = 8;
        config.backpressure = policy;
        config.retry = RetryBudget::limited(4);
        let mut fabric = Fabric::new(staged(16, 4), config);
        // Full offered load against m = 4 outputs per frame: queues fill,
        // so every policy's bound actually gets exercised.
        let workload = plan(TrafficModel::Adversarial, 5, 80);
        let report = drive_sync(&mut fabric, 16, &workload);
        let totals = report.snapshot.totals();
        assert!(
            report.snapshot.conserved(),
            "{policy:?}: offered {} != delivered {} + dropped {} + in_flight {}",
            totals.offered,
            totals.delivered,
            totals.dropped(),
            report.snapshot.in_flight
        );
        assert_eq!(report.snapshot.in_flight, 0, "{policy:?}: drain left work");
        assert!(totals.delivered > 0, "{policy:?}: nothing delivered");
        // The overload (m = 4 ≪ offered load) must exercise the policy.
        match policy {
            Backpressure::ShedOldest => assert!(totals.shed > 0, "shed never triggered"),
            Backpressure::Reject => assert!(totals.rejected > 0, "reject never triggered"),
            Backpressure::Block => assert_eq!(totals.rejected + totals.shed, 0),
        }
    }
}

/// Conservation and payload integrity for the threaded service under all
/// three policies, with concurrent producers.
#[test]
fn service_conservation_for_all_backpressure_policies() {
    for policy in [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ] {
        let mut config = FabricConfig::new(2);
        config.queue_capacity = 16;
        config.backpressure = policy;
        let service = FabricService::start(staged(16, 8), config);
        let workload = plan(TrafficModel::Bernoulli { p: 0.7 }, 99, 30);
        let producers = 3;
        let generated = drive_service(&service, producers, &workload, 16);
        let report = service.drain();
        let totals = report.snapshot.totals();
        assert!(
            report.snapshot.conserved(),
            "{policy:?}: conservation violated: {totals:?}"
        );
        assert_eq!(
            totals.offered, generated,
            "{policy:?}: every generated message must be accounted as offered"
        );
        assert_eq!(
            totals.delivered as usize,
            report.completions.len(),
            "{policy:?}: completion stream disagrees with the counters"
        );

        // Payload integrity end to end: regenerate each producer's traffic
        // and check every delivery against the original payload.
        let mut originals: HashMap<u64, Vec<u8>> = HashMap::new();
        for p in 0..producers as u64 {
            let mut generator = TrafficGenerator::new(
                workload.model,
                16,
                workload.payload_bytes,
                workload.seed.wrapping_add(p),
            );
            for _ in 0..workload.frames {
                for msg in generator.next_frame() {
                    originals.insert(msg.id | (p << 48), msg.payload.to_vec());
                }
            }
        }
        for delivery in &report.completions {
            let original = originals
                .get(&delivery.message.id)
                .expect("delivered a message nobody generated");
            assert_eq!(
                &delivery.message.payload.to_vec(),
                original,
                "{policy:?}: payload corrupted in flight"
            );
        }
    }
}

/// Two identical synchronous drives are bit-identical: same snapshot
/// (counters *and* histograms) and same completion stream.
#[test]
fn sync_drives_are_deterministic() {
    let make_report = || {
        let mut config = FabricConfig::new(4);
        config.queue_capacity = 12;
        config.backpressure = Backpressure::ShedOldest;
        config.placement = Placement::SourceHash;
        config.retry = RetryBudget::limited(3);
        let mut fabric = Fabric::new(staged(16, 8), config);
        let workload = plan(TrafficModel::Adversarial, 1234, 25);
        let report = drive_sync(&mut fabric, 16, &workload);
        (report, fabric.take_completions())
    };
    let (a, completions_a) = make_report();
    let (b, completions_b) = make_report();
    assert_eq!(a.snapshot, b.snapshot, "snapshots diverged across runs");
    assert_eq!(a.generated, b.generated);
    assert_eq!(completions_a, completions_b);
}

/// The batching claim at integration scale: coalescing n-wide frames must
/// beat the one-request-per-sweep baseline by ≥ 10× in sweeps spent on
/// the same workload (the bench repeats this at n = 1024).
#[test]
fn batched_sweeps_are_an_order_of_magnitude_fewer() {
    let switch = staged(64, 32);
    let workload = LoadPlan {
        model: TrafficModel::Bernoulli { p: 0.45 },
        payload_bytes: 8, // 64 payload cycles: exactly one sweep per frame
        seed: 3,
        frames: 30,
    };
    let mut batched = Fabric::new(Arc::clone(&switch), FabricConfig::new(1));
    let batched_report = drive_sync(&mut batched, 64, &workload);
    let mut unbatched = Fabric::new(switch, FabricConfig::new(1));
    let unbatched_report = drive_sync_unbatched(&mut unbatched, 64, &workload);

    assert_eq!(batched_report.delivered, batched_report.generated);
    assert_eq!(unbatched_report.delivered, unbatched_report.generated);
    let batched_sweeps = batched_report.snapshot.totals().sweeps;
    let unbatched_sweeps = unbatched_report.snapshot.totals().sweeps;
    assert!(
        unbatched_sweeps >= 10 * batched_sweeps,
        "batching won only {unbatched_sweeps}/{batched_sweeps} sweeps"
    );
}

/// Hotspot traffic under source-hash placement skews load to the shards
/// owning the hot inputs; round-robin spreads the same workload evenly.
#[test]
fn hotspot_traffic_skews_source_hash_placement() {
    let run = |placement: Placement| {
        let mut config = FabricConfig::new(4);
        config.placement = placement;
        let mut fabric = Fabric::new(staged(16, 8), config);
        let workload = plan(
            TrafficModel::Hotspot {
                p_hot: 0.95,
                p_cold: 0.02,
                hot_inputs: 2,
            },
            77,
            200,
        );
        let report = drive_sync(&mut fabric, 16, &workload);
        let offered: Vec<u64> = report.snapshot.shards.iter().map(|s| s.offered).collect();
        (
            offered.iter().copied().max().unwrap(),
            offered.iter().copied().min().unwrap(),
        )
    };
    let (hash_max, _) = run(Placement::SourceHash);
    let (rr_max, rr_min) = run(Placement::RoundRobin);
    // Round-robin is balanced regardless of traffic skew…
    assert!(rr_max - rr_min <= 1, "round robin must stay balanced");
    // …while source hash concentrates the two hot inputs' traffic.
    assert!(
        hash_max > rr_max * 3 / 2,
        "source hash should pile hot traffic onto few shards (max {hash_max} vs rr {rr_max})"
    );
}
