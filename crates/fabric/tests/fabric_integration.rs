//! Integration tests for the fabric serving engine.
//!
//! The load-bearing claims from the subsystem's acceptance criteria:
//!
//! * **Equivalence** — every frame the batching executor runs produces
//!   exactly the deliveries (outputs, payloads) of the single-frame
//!   reference simulator `switchsim::simulate_frame` on the same offered
//!   set.
//! * **Conservation** — `offered = delivered + rejected + shed +
//!   retry_dropped + in_flight` at drain, for all three backpressure
//!   policies, in both the synchronous and the threaded mode.
//! * **Determinism** — two identical synchronous drives produce
//!   bit-identical snapshots and completion streams.
//! * **Batching** — the coalescing executor spends an order of magnitude
//!   fewer compiled sweeps than the one-request-per-sweep baseline.

use std::collections::HashMap;
use std::sync::Arc;

use concentrator::faults::{ChipFault, FaultMode};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::StagedSwitch;
use fabric::{
    drive_service, drive_service_batched, drive_sync, drive_sync_faulted, drive_sync_unbatched,
    producer_script, producer_script_frames, Backpressure, Fabric, FabricConfig, FabricService,
    FaultEvent, LoadPlan, Placement, RetryBudget,
};
use switchsim::traffic::TrafficGenerator;
use switchsim::{simulate_frame, TrafficModel};

fn staged(n: usize, m: usize) -> Arc<StagedSwitch> {
    Arc::new(
        RevsortSwitch::new(n, m, RevsortLayout::TwoDee)
            .staged()
            .clone(),
    )
}

fn plan(model: TrafficModel, seed: u64, frames: usize) -> LoadPlan {
    LoadPlan {
        model,
        payload_bytes: 3,
        seed,
        frames,
    }
}

/// Every recorded frame of the batching/sharded path must match the
/// single-frame reference simulator delivery-for-delivery: same output
/// wires, same message ids, same reassembled payloads, and the frame's
/// non-winners are exactly the reference's unrouted set.
#[test]
fn batched_frames_match_single_frame_reference() {
    let switch = staged(16, 8);
    let mut config = FabricConfig::new(2);
    config.retry = RetryBudget::limited(2);
    let mut fabric = Fabric::new(Arc::clone(&switch), config);
    fabric.set_frame_recording(true);
    let workload = plan(TrafficModel::Bernoulli { p: 0.9 }, 11, 40);
    drive_sync(&mut fabric, 16, &workload);

    let records = fabric.take_frame_records();
    assert!(!records.is_empty(), "the drive must have executed frames");
    for run in &records {
        let reference = simulate_frame(&*switch, &run.offered);
        let mut expected: HashMap<u64, (usize, Vec<u8>)> = reference
            .delivered
            .iter()
            .map(|(out, msg)| (msg.id, (*out, msg.payload.to_vec())))
            .collect();
        assert_eq!(
            run.delivered.len(),
            expected.len(),
            "batched frame delivered a different count than the reference"
        );
        for delivery in &run.delivered {
            let (out, payload) = expected
                .remove(&delivery.message.id)
                .expect("batched path delivered a message the reference did not");
            assert_eq!(delivery.output, out, "output wire mismatch");
            assert_eq!(
                delivery.message.payload.to_vec(),
                payload,
                "payload corrupted through the compiled datapath"
            );
        }
        // Offered minus delivered must be exactly the reference's
        // congestion losers, whether the fabric retried or dropped them.
        let mut losers: Vec<u64> = run
            .offered
            .iter()
            .map(|m| m.id)
            .filter(|id| !run.delivered.iter().any(|d| d.message.id == *id))
            .collect();
        let mut unrouted: Vec<u64> = reference.unrouted.iter().map(|m| m.id).collect();
        losers.sort_unstable();
        unrouted.sort_unstable();
        assert_eq!(losers, unrouted);
    }
}

/// Conservation at drain for every backpressure policy, synchronous mode.
#[test]
fn sync_conservation_for_all_backpressure_policies() {
    for policy in [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ] {
        let mut config = FabricConfig::new(3);
        config.queue_capacity = 8;
        config.backpressure = policy;
        config.retry = RetryBudget::limited(4);
        let mut fabric = Fabric::new(staged(16, 4), config);
        // Full offered load against m = 4 outputs per frame: queues fill,
        // so every policy's bound actually gets exercised.
        let workload = plan(TrafficModel::Adversarial, 5, 80);
        let report = drive_sync(&mut fabric, 16, &workload);
        let totals = report.snapshot.totals();
        assert!(
            report.snapshot.conserved(),
            "{policy:?}: offered {} != delivered {} + dropped {} + in_flight {}",
            totals.offered,
            totals.delivered,
            totals.dropped(),
            report.snapshot.in_flight
        );
        assert_eq!(report.snapshot.in_flight, 0, "{policy:?}: drain left work");
        assert!(totals.delivered > 0, "{policy:?}: nothing delivered");
        // The overload (m = 4 ≪ offered load) must exercise the policy.
        match policy {
            Backpressure::ShedOldest => assert!(totals.shed > 0, "shed never triggered"),
            Backpressure::Reject => assert!(totals.rejected > 0, "reject never triggered"),
            Backpressure::Block => assert_eq!(totals.rejected + totals.shed, 0),
        }
    }
}

/// Conservation and payload integrity for the threaded service under all
/// three policies, with concurrent producers.
#[test]
fn service_conservation_for_all_backpressure_policies() {
    for policy in [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ] {
        let mut config = FabricConfig::new(2);
        config.queue_capacity = 16;
        config.backpressure = policy;
        let service = FabricService::start(staged(16, 8), config);
        let workload = plan(TrafficModel::Bernoulli { p: 0.7 }, 99, 30);
        let producers = 3;
        let generated = drive_service(&service, producers, &workload, 16);
        let report = service.drain();
        let totals = report.snapshot.totals();
        assert!(
            report.snapshot.conserved(),
            "{policy:?}: conservation violated: {totals:?}"
        );
        assert_eq!(
            totals.offered, generated,
            "{policy:?}: every generated message must be accounted as offered"
        );
        assert_eq!(
            totals.delivered as usize,
            report.completions.len(),
            "{policy:?}: completion stream disagrees with the counters"
        );

        // Payload integrity end to end: regenerate each producer's traffic
        // and check every delivery against the original payload.
        let mut originals: HashMap<u64, Vec<u8>> = HashMap::new();
        for p in 0..producers as u64 {
            let mut generator = TrafficGenerator::new(
                workload.model,
                16,
                workload.payload_bytes,
                workload.seed.wrapping_add(p),
            );
            for _ in 0..workload.frames {
                for msg in generator.next_frame() {
                    originals.insert(msg.id | (p << 48), msg.payload.to_vec());
                }
            }
        }
        for delivery in &report.completions {
            let original = originals
                .get(&delivery.message.id)
                .expect("delivered a message nobody generated");
            assert_eq!(
                &delivery.message.payload.to_vec(),
                original,
                "{policy:?}: payload corrupted in flight"
            );
        }
    }
}

/// Two identical synchronous drives are bit-identical: same snapshot
/// (counters *and* histograms) and same completion stream.
#[test]
fn sync_drives_are_deterministic() {
    let make_report = || {
        let mut config = FabricConfig::new(4);
        config.queue_capacity = 12;
        config.backpressure = Backpressure::ShedOldest;
        config.placement = Placement::SourceHash;
        config.retry = RetryBudget::limited(3);
        let mut fabric = Fabric::new(staged(16, 8), config);
        let workload = plan(TrafficModel::Adversarial, 1234, 25);
        let report = drive_sync(&mut fabric, 16, &workload);
        (report, fabric.take_completions())
    };
    let (a, completions_a) = make_report();
    let (b, completions_b) = make_report();
    assert_eq!(a.snapshot, b.snapshot, "snapshots diverged across runs");
    assert_eq!(a.generated, b.generated);
    assert_eq!(completions_a, completions_b);
}

/// The batching claim at integration scale: coalescing n-wide frames must
/// beat the one-request-per-sweep baseline by ≥ 10× in sweeps spent on
/// the same workload (the bench repeats this at n = 1024).
#[test]
fn batched_sweeps_are_an_order_of_magnitude_fewer() {
    let switch = staged(64, 32);
    let workload = LoadPlan {
        model: TrafficModel::Bernoulli { p: 0.45 },
        payload_bytes: 8, // 64 payload cycles: exactly one sweep per frame
        seed: 3,
        frames: 30,
    };
    let mut batched = Fabric::new(Arc::clone(&switch), FabricConfig::new(1));
    let batched_report = drive_sync(&mut batched, 64, &workload);
    let mut unbatched = Fabric::new(switch, FabricConfig::new(1));
    let unbatched_report = drive_sync_unbatched(&mut unbatched, 64, &workload);

    assert_eq!(batched_report.delivered, batched_report.generated);
    assert_eq!(unbatched_report.delivered, unbatched_report.generated);
    let batched_sweeps = batched_report.snapshot.totals().sweeps;
    let unbatched_sweeps = unbatched_report.snapshot.totals().sweeps;
    assert!(
        unbatched_sweeps >= 10 * batched_sweeps,
        "batching won only {unbatched_sweeps}/{batched_sweeps} sweeps"
    );
}

/// A mid-run campaign: a whole first-stage chip row dies on shard 0 at
/// frame 12, is repaired at frame 30, and a second shard takes a
/// transient single-chip hit in between.
fn campaign_schedule(switch: &StagedSwitch) -> Vec<FaultEvent> {
    let dead_row: Vec<ChipFault> = (0..switch.stages[0].chip_count)
        .map(|chip| ChipFault {
            stage: 0,
            chip,
            mode: FaultMode::StuckInvalid,
        })
        .collect();
    vec![
        FaultEvent {
            frame: 12,
            shard: 0,
            faults: dead_row,
        },
        FaultEvent {
            frame: 18,
            shard: 1,
            faults: vec![ChipFault {
                stage: 0,
                chip: 1,
                mode: FaultMode::StuckValid,
            }],
        },
        FaultEvent {
            frame: 24,
            shard: 1,
            faults: Vec::new(), // repair
        },
        FaultEvent {
            frame: 30,
            shard: 0,
            faults: Vec::new(), // repair
        },
    ]
}

/// Conservation at drain under a mid-run fault campaign, synchronous
/// mode, for every backpressure policy. Retries must be bounded: a dead
/// column never delivers, so unlimited retry would spin forever.
#[test]
fn sync_conservation_under_faults_for_all_policies() {
    for policy in [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ] {
        let switch = staged(16, 8);
        let mut config = FabricConfig::new(2);
        config.queue_capacity = 8;
        config.backpressure = policy;
        config.retry = RetryBudget::limited(2);
        let mut fabric = Fabric::new(Arc::clone(&switch), config);
        let workload = plan(TrafficModel::Bernoulli { p: 0.8 }, 21, 40);
        let schedule = campaign_schedule(&switch);
        let report = drive_sync_faulted(&mut fabric, 16, &workload, &schedule);
        let totals = report.snapshot.totals();
        assert!(
            report.snapshot.conserved(),
            "{policy:?}: conservation violated under faults: {totals:?}"
        );
        assert_eq!(report.snapshot.in_flight, 0, "{policy:?}: drain left work");
        assert!(totals.delivered > 0, "{policy:?}: nothing delivered");
        assert!(
            totals.retry_dropped > 0,
            "{policy:?}: the dead chip row must cost some messages"
        );
    }
}

/// The same faulted campaign is bit-reproducible: schedules key off fixed
/// frames and the synchronous engine is deterministic.
#[test]
fn faulted_sync_drives_are_deterministic() {
    let run = || {
        let switch = staged(16, 8);
        let mut config = FabricConfig::new(2);
        config.retry = RetryBudget::limited(1);
        let mut fabric = Fabric::new(Arc::clone(&switch), config);
        let workload = plan(TrafficModel::Bernoulli { p: 0.7 }, 4242, 48);
        let schedule = campaign_schedule(&switch);
        let report = drive_sync_faulted(&mut fabric, 16, &workload, &schedule);
        (report, fabric.take_completions())
    };
    let (a, completions_a) = run();
    let (b, completions_b) = run();
    assert_eq!(a.snapshot, b.snapshot, "faulted drives diverged");
    assert_eq!(completions_a, completions_b);
    assert!(a.snapshot.totals().quarantines >= 1, "no quarantine fired");
}

/// A permanent mid-run fault quarantines its shard: health collapses,
/// placement steers new traffic to the healthy shard, and the backlog
/// still drains with exact conservation.
#[test]
fn mid_run_permanent_fault_quarantines_the_shard() {
    let switch = staged(16, 8);
    let mut config = FabricConfig::new(2);
    config.retry = RetryBudget::limited(1);
    let mut fabric = Fabric::new(Arc::clone(&switch), config);
    let workload = plan(TrafficModel::Bernoulli { p: 0.8 }, 7, 60);
    let schedule = vec![FaultEvent {
        frame: 10,
        shard: 0,
        faults: (0..switch.stages[0].chip_count)
            .map(|chip| ChipFault {
                stage: 0,
                chip,
                mode: FaultMode::StuckInvalid,
            })
            .collect(),
    }];
    let report = drive_sync_faulted(&mut fabric, 16, &workload, &schedule);
    assert!(report.snapshot.conserved());
    assert!(fabric.shard_quarantined(0), "shard 0 must end quarantined");
    assert!(!fabric.shard_quarantined(1), "shard 1 must stay healthy");
    let sick = &report.snapshot.shards[0];
    let healthy = &report.snapshot.shards[1];
    assert_eq!(sick.quarantines, 1);
    assert!(sick.quarantined_frames > 0);
    assert!(sick.health_milli < 700, "health must reflect the dead row");
    assert!(
        healthy.offered > sick.offered,
        "steering must shift load to the healthy shard ({} vs {})",
        healthy.offered,
        sick.offered
    );
    // Bounded loss: the healthy shard picks up the steered traffic, so
    // losing one shard of two costs far less than half the messages.
    let totals = report.snapshot.totals();
    assert!(
        totals.dropped() * 2 < totals.offered,
        "loss must stay bounded: dropped {} of {}",
        totals.dropped(),
        totals.offered
    );
}

/// Conservation and quarantine through the threaded service: inject a
/// permanent fault mid-run from the control thread, keep producing, then
/// drain gracefully mid-campaign.
#[test]
fn service_conservation_under_mid_run_faults() {
    for policy in [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ] {
        let switch = staged(16, 8);
        let mut config = FabricConfig::new(2);
        config.queue_capacity = 16;
        config.retry = RetryBudget::limited(2);
        config.backpressure = policy;
        let service = FabricService::start(Arc::clone(&switch), config);
        let workload = plan(TrafficModel::Bernoulli { p: 0.7 }, 33, 20);
        let before = drive_service(&service, 2, &workload, 16);
        // A chip row dies while the service is live…
        service.inject_faults(
            0,
            (0..switch.stages[0].chip_count)
                .map(|chip| ChipFault {
                    stage: 0,
                    chip,
                    mode: FaultMode::StuckInvalid,
                })
                .collect(),
        );
        // …traffic keeps flowing…
        let after = drive_service(&service, 2, &workload, 16);
        // …and the drain is graceful mid-campaign: workers finish their
        // backlogs through the faulted switch and every message is
        // accounted for.
        let report = service.drain();
        let totals = report.snapshot.totals();
        assert!(
            report.snapshot.conserved(),
            "{policy:?}: conservation violated under live faults: {totals:?}"
        );
        assert_eq!(
            totals.offered,
            before + after,
            "{policy:?}: offered must cover both halves of the campaign"
        );
        assert_eq!(
            totals.delivered as usize,
            report.completions.len(),
            "{policy:?}: completion stream disagrees with the counters"
        );
        assert!(totals.delivered > 0, "{policy:?}: nothing delivered");
        assert_eq!(
            totals.faults_active, switch.stages[0].chip_count as u64,
            "{policy:?}: the injected faults must be visible in metrics"
        );
    }
}

/// The frame-grouped producer script is exactly the per-message script
/// with frame boundaries kept: the batched and per-message drive paths
/// submit identical workloads.
#[test]
fn frame_grouped_script_flattens_to_the_per_message_script() {
    let workload = plan(TrafficModel::Bernoulli { p: 0.6 }, 555, 12);
    for producer in 0..3 {
        let flat = producer_script(&workload, 16, producer);
        let framed: Vec<_> = producer_script_frames(&workload, 16, producer)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(flat, framed, "producer {producer} scripts diverged");
    }
}

/// Conservation and payload integrity through the frame-batched admission
/// path (`submit_batch`), for every backpressure policy, with concurrent
/// producers — the batched mirror of
/// `service_conservation_for_all_backpressure_policies`.
#[test]
fn service_batched_conservation_for_all_backpressure_policies() {
    for policy in [
        Backpressure::Block,
        Backpressure::ShedOldest,
        Backpressure::Reject,
    ] {
        let mut config = FabricConfig::new(2);
        config.queue_capacity = 16;
        config.backpressure = policy;
        let service = FabricService::start(staged(16, 8), config);
        let workload = plan(TrafficModel::Bernoulli { p: 0.7 }, 99, 30);
        let producers = 3;
        let generated = drive_service_batched(&service, producers, &workload, 16);
        let report = service.drain();
        let totals = report.snapshot.totals();
        assert!(
            report.snapshot.conserved(),
            "{policy:?}: conservation violated on the batched path: {totals:?}"
        );
        assert_eq!(
            totals.offered, generated,
            "{policy:?}: every generated message must be accounted as offered"
        );
        assert_eq!(
            totals.delivered as usize,
            report.completions.len(),
            "{policy:?}: completion stream disagrees with the counters"
        );
        assert!(totals.delivered > 0, "{policy:?}: nothing delivered");
        let mut originals: HashMap<u64, Vec<u8>> = HashMap::new();
        for p in 0..producers {
            for frame in producer_script_frames(&workload, 16, p) {
                for msg in frame {
                    originals.insert(msg.id, msg.payload.to_vec());
                }
            }
        }
        for delivery in &report.completions {
            let original = originals
                .get(&delivery.message.id)
                .expect("delivered a message nobody generated");
            assert_eq!(
                &delivery.message.payload.to_vec(),
                original,
                "{policy:?}: payload corrupted through the batched path"
            );
        }
    }
}

/// A live snapshot of a quiescent (but running) service satisfies the
/// conservation identity: workers publish metrics before retiring a
/// frame's in-flight count, so a snapshot observing the gauge at zero
/// sees every completed frame.
#[test]
fn live_snapshot_is_conserved_once_quiescent() {
    let mut config = FabricConfig::new(2);
    config.queue_capacity = 16;
    let service = FabricService::start(staged(16, 8), config);
    let workload = plan(TrafficModel::Bernoulli { p: 0.6 }, 77, 10);
    let generated = drive_service_batched(&service, 2, &workload, 16);
    // Producers have joined; spin (no sleeping in tests) until the
    // workers retire the backlog.
    let mut spins = 0u64;
    while service.in_flight() > 0 {
        assert!(spins < 1 << 32, "service failed to quiesce");
        spins += 1;
        std::thread::yield_now();
    }
    let live = service.snapshot();
    assert!(
        live.conserved(),
        "quiescent live snapshot violates conservation: {:?}",
        live.totals()
    );
    assert_eq!(live.totals().offered, generated);
    assert_eq!(live.in_flight, 0);
    // Drain must agree with the quiescent live view on every counter
    // that has settled.
    let report = service.drain();
    assert_eq!(report.snapshot.totals().offered, generated);
    assert_eq!(
        report.snapshot.totals().delivered,
        live.totals().delivered,
        "no new deliveries can appear after quiescence"
    );
}

/// Hotspot traffic under source-hash placement skews load to the shards
/// owning the hot inputs; round-robin spreads the same workload evenly.
#[test]
fn hotspot_traffic_skews_source_hash_placement() {
    let run = |placement: Placement| {
        let mut config = FabricConfig::new(4);
        config.placement = placement;
        let mut fabric = Fabric::new(staged(16, 8), config);
        let workload = plan(
            TrafficModel::Hotspot {
                p_hot: 0.95,
                p_cold: 0.02,
                hot_inputs: 2,
            },
            77,
            200,
        );
        let report = drive_sync(&mut fabric, 16, &workload);
        let offered: Vec<u64> = report.snapshot.shards.iter().map(|s| s.offered).collect();
        (
            offered.iter().copied().max().unwrap(),
            offered.iter().copied().min().unwrap(),
        )
    };
    let (hash_max, _) = run(Placement::SourceHash);
    let (rr_max, rr_min) = run(Placement::RoundRobin);
    // Round-robin is balanced regardless of traffic skew…
    assert!(rr_max - rr_min <= 1, "round robin must stay balanced");
    // …while source hash concentrates the two hot inputs' traffic.
    assert!(
        hash_max > rr_max * 3 / 2,
        "source hash should pile hot traffic onto few shards (max {hash_max} vs rr {rr_max})"
    );
}
