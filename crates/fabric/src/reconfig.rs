//! The elastic control plane: epoch-based live reconfiguration of a
//! running fabric.
//!
//! Production fabrics resize under load. This module defines the three
//! control-plane primitives the service layer implements (see
//! [`ServiceCore`](crate::ServiceCore)) and the deterministic simulation
//! harness proves correct:
//!
//! 1. **Dynamic shard add/remove.** Every
//!    [`ServiceCore`](crate::ServiceCore) pre-sizes its
//!    lane array to [`FabricConfig::max_shards`](crate::FabricConfig)
//!    and tracks each lane through the [`LaneState`] lifecycle:
//!    `Unused → Active → Draining → Retired`. Adding a shard claims the
//!    next unused lane under an epoch bump; removing one marks it
//!    [`LaneState::Draining`] and closes its ingress ring, so producers
//!    stop landing on it while its worker drains the residual backlog
//!    and hands every outcome back to the ledger. A retired lane's
//!    counters stay in every snapshot forever — conservation
//!    (`offered = delivered + rejected + shed + retry_dropped +
//!    in_flight`) holds across every epoch boundary, not just at drain.
//!
//! 2. **Live switch swap.** A recompiled
//!    [`StagedSwitch`](concentrator::StagedSwitch) (larger n/m, or a
//!    fault-pruned netlist after quarantine) is staged into every lane's
//!    swap mailbox under an epoch bump (phase one). Each worker finishes
//!    the frames it already accepted on the *old* switch, then installs
//!    the new one the moment its pending queue is empty (phase two) —
//!    no ring is flushed and no message is dropped, so the handoff is
//!    zero-loss by construction. See `DESIGN.md` §13 for the full
//!    protocol argument.
//!
//! 3. **SLO-driven admission.** [`SloController`] reads the fabric's
//!    log₂ wait histograms ([`LogHistogram`]), extracts the p99 wait of
//!    the *interval* since its last evaluation (histogram deltas — the
//!    counters are monotone), and steps the global admission limit with
//!    an AIMD rule to hold a p99 target: multiplicative shed when the
//!    tail is over target, additive recovery when it is back under.
//!    Decisions are emitted the same way fault mailboxes are — a state
//!    change the data plane observes at its next step — and are pure
//!    functions of the snapshots fed in, so the simulator can drive the
//!    controller on the virtual clock and replay it bit-for-bit.

use crate::metrics::{FabricSnapshot, LogHistogram};

/// The lifecycle of one shard lane under the elastic control plane.
///
/// Lanes move strictly forward: a retired lane is never reused (its
/// counters are history the conservation ledger still sums), so the
/// total number of shard additions over a service's lifetime is bounded
/// by [`FabricConfig::max_shards`](crate::FabricConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LaneState {
    /// Pre-allocated but never activated: invisible to placement,
    /// excluded from snapshots.
    Unused = 0,
    /// Serving: placement targets it, its worker runs.
    Active = 1,
    /// Removed from the placement ring; its ingress ring is closed and
    /// its worker is draining the residual backlog.
    Draining = 2,
    /// Fully drained; the worker has exited. Counters remain part of
    /// every snapshot.
    Retired = 3,
}

impl LaneState {
    /// Decode the atomic representation.
    pub fn from_u8(raw: u8) -> LaneState {
        match raw {
            0 => LaneState::Unused,
            1 => LaneState::Active,
            2 => LaneState::Draining,
            3 => LaneState::Retired,
            _ => unreachable!("invalid lane state {raw}"),
        }
    }
}

/// The AIMD policy an [`SloController`] steps the admission limit with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// The p99 wait target, in frames: the controller sheds load until
    /// the interval p99 (bucket floor — see
    /// [`LogHistogram::percentile`]) is at or under this.
    pub target_p99_wait: u64,
    /// The admission limit never drops below this (starvation guard).
    pub min_limit: usize,
    /// The admission limit never rises above this; also the initial
    /// limit.
    pub max_limit: usize,
    /// Multiplicative decrease factor applied when the tail is over
    /// target, in `(0, 1)`.
    pub decrease: f64,
    /// Additive increase per evaluation when the tail is at or under
    /// target.
    pub increase: usize,
    /// Deliveries an interval must contain before its p99 is trusted —
    /// a near-empty interval says nothing about the tail.
    pub min_samples: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            target_p99_wait: 2,
            min_limit: 4,
            max_limit: 1024,
            decrease: 0.5,
            increase: 8,
            min_samples: 8,
        }
    }
}

impl SloPolicy {
    /// Validate invariants.
    ///
    /// # Panics
    /// If the limit band is empty or the decrease factor is out of range.
    pub fn validate(&self) {
        assert!(self.min_limit > 0, "SLO minimum limit must be positive");
        assert!(
            self.max_limit >= self.min_limit,
            "SLO limit band is empty: max < min"
        );
        assert!(
            self.decrease > 0.0 && self.decrease < 1.0,
            "SLO decrease factor must be in (0, 1)"
        );
    }
}

/// One evaluation's outcome: what the controller saw and what it set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloDecision {
    /// The p99 wait (bucket floor) of deliveries completed since the
    /// previous evaluation.
    pub interval_p99: u64,
    /// Deliveries in the interval.
    pub samples: u64,
    /// The admission limit after this evaluation.
    pub limit: usize,
    /// Whether the limit changed (only changed decisions need applying).
    pub changed: bool,
}

/// The SLO-driven admission controller: feed it fabric snapshots at a
/// fixed cadence, apply the limits it hands back (e.g. through
/// [`ServiceCore::set_admission_limit`](crate::ServiceCore)).
///
/// Deterministic by construction: the controller keeps only the last
/// wait histogram it saw, so its decisions are a pure function of the
/// snapshot sequence. The simulation harness drives it on the virtual
/// clock; the threaded service can drive it from any metronome.
#[derive(Debug, Clone)]
pub struct SloController {
    policy: SloPolicy,
    limit: usize,
    last_waits: LogHistogram,
}

impl SloController {
    /// A controller starting wide open at `policy.max_limit`.
    ///
    /// # Panics
    /// If the policy is invalid (see [`SloPolicy::validate`]).
    pub fn new(policy: SloPolicy) -> SloController {
        policy.validate();
        SloController {
            policy,
            limit: policy.max_limit,
            last_waits: LogHistogram::default(),
        }
    }

    /// The current admission limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The policy this controller steps under.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Evaluate one snapshot: diff the merged wait histogram against the
    /// previous evaluation, take the interval's p99, and step the limit.
    /// Intervals with fewer than `min_samples` deliveries leave the
    /// limit alone (no signal is not good news).
    pub fn evaluate(&mut self, snapshot: &FabricSnapshot) -> SloDecision {
        let waits = snapshot.totals().wait_frames;
        let interval = waits.delta(&self.last_waits);
        self.last_waits = waits;
        let samples = interval.count();
        let (interval_p99, _) = interval.percentile(99.0);
        let previous = self.limit;
        if samples >= self.policy.min_samples {
            if interval_p99 > self.policy.target_p99_wait {
                // Multiplicative decrease: shed hard while the tail is
                // over target.
                self.limit = ((self.limit as f64 * self.policy.decrease) as usize)
                    .max(self.policy.min_limit);
            } else {
                // Additive recovery once the tail is back under target.
                self.limit = self
                    .limit
                    .saturating_add(self.policy.increase)
                    .min(self.policy.max_limit);
            }
        }
        SloDecision {
            interval_p99,
            samples,
            limit: self.limit,
            changed: self.limit != previous,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ShardMetrics;

    fn snapshot_with_waits(waits: &[(u64, u64)]) -> FabricSnapshot {
        let mut shard = ShardMetrics::default();
        for &(value, count) in waits {
            for _ in 0..count {
                shard.wait_frames.record(value);
            }
        }
        FabricSnapshot {
            shards: vec![shard],
            in_flight: 0,
        }
    }

    #[test]
    fn lane_state_round_trips() {
        for state in [
            LaneState::Unused,
            LaneState::Active,
            LaneState::Draining,
            LaneState::Retired,
        ] {
            assert_eq!(LaneState::from_u8(state as u8), state);
        }
    }

    #[test]
    fn over_target_tail_sheds_multiplicatively() {
        let mut slo = SloController::new(SloPolicy {
            target_p99_wait: 2,
            min_limit: 4,
            max_limit: 64,
            decrease: 0.5,
            increase: 8,
            min_samples: 4,
        });
        assert_eq!(slo.limit(), 64);
        let decision = slo.evaluate(&snapshot_with_waits(&[(8, 10)]));
        assert!(decision.changed);
        assert_eq!(decision.samples, 10);
        assert!(decision.interval_p99 > 2);
        assert_eq!(slo.limit(), 32);
        // Still over target on each later interval (the cumulative
        // histogram keeps growing, so every delta has fresh samples):
        // halves again, and the floor stops the collapse.
        for round in 2..=9 {
            slo.evaluate(&snapshot_with_waits(&[(8, 10 * round)]));
        }
        assert_eq!(slo.limit(), 4, "limit is floored at min_limit");
    }

    #[test]
    fn under_target_tail_recovers_additively_to_the_cap() {
        let mut slo = SloController::new(SloPolicy {
            target_p99_wait: 4,
            min_limit: 4,
            max_limit: 20,
            decrease: 0.5,
            increase: 8,
            min_samples: 4,
        });
        slo.evaluate(&snapshot_with_waits(&[(32, 10)]));
        assert_eq!(slo.limit(), 10);
        let healthy = snapshot_with_waits(&[(32, 10), (0, 10)]);
        let decision = slo.evaluate(&healthy);
        assert_eq!(decision.samples, 10, "delta sees only the new interval");
        assert_eq!(decision.interval_p99, 0);
        assert_eq!(slo.limit(), 18);
        slo.evaluate(&snapshot_with_waits(&[(32, 10), (0, 20)]));
        assert_eq!(slo.limit(), 20, "limit is capped at max_limit");
    }

    #[test]
    fn thin_intervals_leave_the_limit_alone() {
        let mut slo = SloController::new(SloPolicy {
            min_samples: 8,
            ..SloPolicy::default()
        });
        let before = slo.limit();
        let decision = slo.evaluate(&snapshot_with_waits(&[(100, 3)]));
        assert!(!decision.changed);
        assert_eq!(slo.limit(), before);
    }

    #[test]
    #[should_panic(expected = "limit band is empty")]
    fn inverted_limit_band_rejected() {
        SloController::new(SloPolicy {
            min_limit: 10,
            max_limit: 4,
            ..SloPolicy::default()
        });
    }
}
